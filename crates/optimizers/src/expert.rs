//! Simulated manual tuners — the stand-in for the paper's §2.2 human study (Figure 3),
//! where 50+ volunteers tuned 5 queries over 7 knobs on a prediction-backed platform.
//!
//! A human study cannot be rerun offline, so this models the *policies* the study
//! describes: domain experts adjust one knob at a time, are guided by priors ("nearly
//! all customers reported tuning memory and core size" — they start with the knobs
//! they believe matter), explore with occasional larger jumps, keep the best setting
//! found, and satisfice (stop after 0–40 iterations, often before the optimum).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

/// Behavioural parameters of one simulated expert.
#[derive(Debug, Clone, Copy)]
pub struct ExpertProfile {
    /// Typical relative adjustment per move (normalized units).
    pub step: f64,
    /// Probability of an exploratory big jump instead of a local tweak.
    pub jump_prob: f64,
    /// Probability of revisiting the best-known point before continuing.
    pub revisit_prob: f64,
    /// After this many non-improving moves the expert stops changing things.
    pub patience: u32,
}

impl Default for ExpertProfile {
    fn default() -> Self {
        ExpertProfile {
            step: 0.15,
            jump_prob: 0.1,
            revisit_prob: 0.15,
            patience: 8,
        }
    }
}

/// A simulated expert tuner.
#[derive(Debug)]
pub struct SimulatedExpert {
    space: ConfigSpace,
    profile: ExpertProfile,
    rng: StdRng,
    current: Vec<f64>, // normalized
    best: Vec<f64>,    // normalized
    best_cost: f64,
    last_suggest: Vec<f64>,
    non_improving: u32,
    satisficed: bool,
    /// Knob priority order (experts try "important" knobs first); a permutation of
    /// dimension indices, sampled per expert.
    priority: Vec<usize>,
    move_count: u32,
    /// Recorded observations.
    pub history: History,
}

impl SimulatedExpert {
    /// Create an expert with the default behavioural profile.
    pub fn new(space: ConfigSpace, seed: u64) -> SimulatedExpert {
        SimulatedExpert::with_profile(space, ExpertProfile::default(), seed)
    }

    /// Create with a specific profile.
    pub(crate) fn with_profile(
        space: ConfigSpace,
        profile: ExpertProfile,
        seed: u64,
    ) -> SimulatedExpert {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priority: Vec<usize> = (0..space.len()).collect();
        for i in (1..priority.len()).rev() {
            let j = rng.random_range(0..=i);
            priority.swap(i, j);
        }
        let start = space.normalize(&space.default_point());
        SimulatedExpert {
            space,
            profile,
            rng,
            current: start.clone(),
            best: start.clone(),
            best_cost: f64::INFINITY,
            last_suggest: start,
            non_improving: 0,
            satisficed: false,
            priority,
            move_count: 0,
            history: History::new(),
        }
    }

    /// Whether the expert has stopped exploring.
    // rhlint:allow(dead-pub): satisficing stop-rule API for future guardrail harnesses
    pub fn satisficed(&self) -> bool {
        self.satisficed
    }

    /// Best point found so far (raw units).
    pub fn best_point(&self) -> Vec<f64> {
        self.space.denormalize(&self.best)
    }
}

impl Tuner for SimulatedExpert {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        if self.satisficed {
            // Stick with the best-known configuration.
            self.last_suggest = self.best.clone();
            return self.space.denormalize(&self.best);
        }
        let roll: f64 = self.rng.random_range(0.0..1.0);
        let x = if self.move_count == 0 {
            // First run: the default, to get a baseline reading.
            self.current.clone()
        } else if roll < self.profile.revisit_prob {
            self.best.clone()
        } else if roll < self.profile.revisit_prob + self.profile.jump_prob {
            // Exploratory jump on a priority knob.
            let dim = self.priority[self.move_count as usize % self.priority.len()];
            let mut x = self.best.clone();
            x[dim] = self.rng.random_range(0.0..1.0);
            x
        } else {
            // Local one-knob tweak around the best-known point.
            let dim = self.priority[self.move_count as usize % self.priority.len()];
            let mut x = self.best.clone();
            let delta = self
                .rng
                .random_range(-self.profile.step..=self.profile.step);
            x[dim] = (x[dim] + delta).clamp(0.0, 1.0);
            x
        };
        self.move_count += 1;
        self.last_suggest = x.clone();
        self.space.denormalize(&x)
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
        if outcome.elapsed_ms < self.best_cost {
            self.best_cost = outcome.elapsed_ms;
            self.best = self.last_suggest.clone();
            self.non_improving = 0;
        } else {
            self.non_improving += 1;
            if self.non_improving >= self.profile.patience {
                self.satisficed = true;
            }
        }
        self.current = self.last_suggest.clone();
    }

    fn name(&self) -> &'static str {
        "expert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    #[test]
    fn expert_improves_over_default_without_noise() {
        let mut env = SyntheticEnv::new(NoiseSpec::none(), DataSchedule::Constant { size: 1.0 }, 2);
        let mut ex = SimulatedExpert::new(env.space().clone(), 2);
        let default_perf = env.normed_performance(&env.space().default_point());
        for _ in 0..40 {
            let p = ex.suggest(&env.context());
            let o = env.run(&p);
            ex.observe(&p, &o);
        }
        let final_perf = env.normed_performance(&ex.best_point());
        assert!(
            final_perf < default_perf,
            "expert {final_perf} vs default {default_perf}"
        );
    }

    #[test]
    fn expert_eventually_satisfices() {
        let space = ConfigSpace::query_level();
        let mut ex = SimulatedExpert::new(space, 1);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        // Nothing ever improves on the first observation.
        for i in 0..30 {
            let p = ex.suggest(&ctx);
            let cost = if i == 0 { 1.0 } else { 100.0 };
            ex.observe(
                &p,
                &Outcome {
                    elapsed_ms: cost,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(ex.satisficed());
        // Once satisficed, the expert repeats its best point.
        let p = ex.suggest(&ctx);
        let b = ex.best_point();
        for (a, bb) in p.iter().zip(&b) {
            assert!((a - bb).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn experts_with_different_seeds_behave_differently() {
        let space = ConfigSpace::query_level();
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let mut a = SimulatedExpert::new(space.clone(), 1);
        let mut b = SimulatedExpert::new(space, 2);
        let mut diverged = false;
        for i in 0..10 {
            let pa = a.suggest(&ctx);
            let pb = b.suggest(&ctx);
            if pa != pb {
                diverged = true;
            }
            let o = Outcome {
                elapsed_ms: 100.0 - i as f64,
                data_size: 1.0,
                kind: crate::tuner::ObservationKind::Measured,
            };
            a.observe(&pa, &o);
            b.observe(&pb, &o);
        }
        assert!(diverged);
    }

    #[test]
    fn first_suggestion_is_the_default() {
        let space = ConfigSpace::query_level();
        let mut ex = SimulatedExpert::new(space.clone(), 3);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let p = ex.suggest(&ctx);
        let d = space.default_point();
        for (a, b) in p.iter().zip(&d) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
}
