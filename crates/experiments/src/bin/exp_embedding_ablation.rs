//! Regenerates the paper's `exp_embedding_ablation` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_embedding_ablation::run(scale).print();
}
