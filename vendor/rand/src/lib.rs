//! Offline shim of the `rand` crate.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors the exact API surface it uses: a seedable `StdRng`
//! (xoshiro256++ seeded via SplitMix64), `random_range` over integer and
//! float ranges, and in-place slice shuffling. Everything is deterministic
//! given a seed, which is a hard requirement of the Rockhopper Centroid
//! Learning experiments (paper Eq (8)): reruns must be bit-reproducible.
//!
//! This is NOT a cryptographic RNG and makes no statistical-quality claims
//! beyond what the simulator and tuners need (uniform-ish 64-bit streams).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait mirroring `rand::Rng`; kept for bounds compatibility.
/// The inherent sampling methods live on [`RngExt`] so that importing either
/// trait name (as different workspace crates do) keeps code compiling.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods used throughout the workspace.
pub trait RngExt: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform draw from a type's full "standard" domain.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Fisher–Yates shuffle, in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = sample_index(self, i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn "plainly" via [`RngExt::random`].
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniformly sampleable scalar types.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive unless `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                if span <= 0 {
                    return lo;
                }
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        if !(hi > lo) {
            return lo;
        }
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        if !(hi > lo) {
            return lo;
        }
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

/// Map a 64-bit word to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform index in `[0, n)` — used by shuffle.
fn sample_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// SplitMix64: seeds the main generator from a single `u64`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Export the raw xoshiro256++ state words for checkpointing, so a
        /// restored generator continues the *same* stream instead of
        /// restarting from its seed (required by the durable-state layer's
        /// bit-exact recovery contract).
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state exported by [`StdRng::to_state`].
        /// Preserves the non-zero invariant of `from_seed`: an all-zero state
        /// (a fixed point of xoshiro256++) is nudged to the same constants.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0x6A09_E667_F3BC_C909,
                        0xBB67_AE85_84CA_A73B,
                        0x3C6E_F372_FE94_F82B,
                    ],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// `rand::rng()` exists upstream but returns OS-entropy state; the workspace
/// bans it (rhlint `determinism` rule) in favour of seeded construction, so
/// the shim deliberately does not provide it.
#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(0.25..4.0);
            assert!((0.25..4.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let i = rng.random_range(0..8usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.random_range(3..=3u32), 3);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.to_state());
        for _ in 0..64 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
        // The all-zero fixed point is nudged, never reproduced verbatim.
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.random_range(0..u64::MAX), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
