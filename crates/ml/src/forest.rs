//! Bagged regression trees (a random-forest-lite). This is the offline **baseline
//! model** of §4.2: trained on benchmark sweeps, fine-tuned per query signature, and
//! queried by the Centroid Learning surrogate at iteration 0.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::RegressionTree;
use crate::{validate_xy, MlError, Regressor};

/// Ensemble of regression trees fit on bootstrap resamples with per-tree random
/// feature subsets.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BaggedTrees {
    n_trees: usize,
    max_depth: usize,
    min_leaf: usize,
    /// Fraction of features each tree may split on, in `(0, 1]`.
    feature_fraction: f64,
    seed: u64,
    trees: Vec<RegressionTree>,
}

impl BaggedTrees {
    /// Create an unfitted ensemble with the given shape parameters.
    pub fn new(n_trees: usize, max_depth: usize, min_leaf: usize, seed: u64) -> Self {
        BaggedTrees {
            n_trees: n_trees.max(1),
            max_depth,
            min_leaf,
            feature_fraction: 0.8,
            seed,
            trees: Vec::new(),
        }
    }

    /// The configuration used for baseline-model training in the experiments.
    pub fn baseline_default(seed: u64) -> Self {
        BaggedTrees::new(40, 8, 2, seed)
    }

    /// Override the per-tree feature fraction.
    // rhlint:allow(dead-pub): forest tuning API kept for ablation experiments
    pub fn with_feature_fraction(mut self, frac: f64) -> Self {
        self.feature_fraction = frac.clamp(0.05, 1.0);
        self
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of fitted trees.
    // rhlint:allow(dead-pub): forest introspection API kept for ablation experiments
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for BaggedTrees {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_features = ((dim as f64 * self.feature_fraction).ceil() as usize).clamp(1, dim);

        self.trees.clear();
        for _ in 0..self.n_trees {
            // Bootstrap resample.
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            // Random feature subset (without replacement).
            let mut features: Vec<usize> = (0..dim).collect();
            for i in (1..features.len()).rev() {
                let j = rng.random_range(0..=i);
                features.swap(i, j);
            }
            features.truncate(n_features);

            let mut tree = RegressionTree::new(self.max_depth, self.min_leaf);
            tree.fit_indices(x, y, &idx, Some(&features))?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_nonlinear_surface_better_than_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)])
            .collect();
        let truth = |r: &[f64]| r[0] * r[0] + 0.5 * r[1];
        let y: Vec<f64> = x.iter().map(|r| truth(r)).collect();
        let mut f = BaggedTrees::new(30, 6, 2, 42);
        f.fit(&x, &y).unwrap();

        let mean_y = crate::stats::mean(&y);
        let mut sse_model = 0.0;
        let mut sse_mean = 0.0;
        for _ in 0..100 {
            let r = vec![rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)];
            let t = truth(&r);
            sse_model += (f.predict(&r) - t).powi(2);
            sse_mean += (mean_y - t).powi(2);
        }
        assert!(
            sse_model < sse_mean * 0.3,
            "model {sse_model} vs mean {sse_mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + r[1]).collect();
        let mut a = BaggedTrees::new(10, 5, 1, 9);
        let mut b = BaggedTrees::new(10, 5, 1, 9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for i in 0..20 {
            let p = vec![i as f64 * 1.3, 2.0];
            assert_eq!(a.predict(&p), b.predict(&p));
        }
    }

    #[test]
    fn unfitted_predicts_zero() {
        assert_eq!(BaggedTrees::new(5, 3, 1, 0).predict(&[1.0]), 0.0);
    }

    #[test]
    fn single_row_dataset_fits() {
        let mut f = BaggedTrees::new(3, 3, 1, 1);
        f.fit(&[vec![1.0]], &[7.0]).unwrap();
        assert_eq!(f.predict(&[1.0]), 7.0);
    }

    #[test]
    fn builder_clamps_feature_fraction() {
        let f = BaggedTrees::new(3, 3, 1, 1).with_feature_fraction(5.0);
        assert!(f.feature_fraction <= 1.0);
        let f = BaggedTrees::new(3, 3, 1, 1).with_feature_fraction(0.0);
        assert!(f.feature_fraction > 0.0);
    }
}
