//! The serving edge: a TCP listener feeding a fixed-width worker pool, with
//! per-workload-signature request coalescing, admission control, and a
//! drain-then-shutdown lifecycle wired to the pipeline's `Drop`-join contract.
//!
//! ## Sharding
//!
//! The backend is split into `ServeConfig::shards` signature-hash shards
//! (`pipeline::shard_of`), each a full `AutotuneBackend` on its own worker
//! thread with its own coalescer, admission gate, memory-bounded tuner LRU,
//! and — when durable — its own WAL/snapshot lineage under
//! [`shard_state_dir`]. Because routing is a pure function of the signature
//! and tuner seeds derive from `(root_seed, signature)` alone, the served
//! points are bit-identical at any shard count (DESIGN.md §11).
//!
//! ## Determinism under concurrency
//!
//! The backend's tuner state advances on every evaluation, so a naive server
//! would make the served point depend on request arrival order. rockserve
//! instead memoizes each suggestion under its full request content
//! (`(user, signature, context bytes)`): the first request for a key runs one
//! backend evaluation, concurrent duplicates join it in flight, and later
//! duplicates hit the cached entry. A `Report` for a signature invalidates
//! that tenant's cached suggestions (new observations should move the tuner),
//! so the served point is a pure function of the request history content —
//! never of socket timing or worker interleaving. The worker-pool width
//! follows `rockpool::configured_threads()` (`RH_THREADS`), and by the above
//! the served answers are bit-identical at any width.
//!
//! ## Backpressure
//!
//! Two bounded admission gates, both answering `Response::Overloaded` instead
//! of buffering without bound: `max_pending_conns` caps connections accepted
//! but not yet picked up by a worker (the acceptor sheds above it), and
//! `max_inflight_suggests` caps concurrent backend evaluations (the suggest
//! path sheds above it; coalesced joins and cache hits are exempt since they
//! cost no evaluation).
//!
//! ## Shutdown ordering
//!
//! A `Shutdown` frame (or [`Server::shutdown`] / dropping the handle) flips
//! the drain flag and wakes the blocking acceptor with a throwaway connect.
//! The acceptor exits, dropping the connection queue's sender; workers finish
//! their current connections, drain every queued connection, then exit on the
//! closed channel. Only after every serving thread has joined is the inner
//! `AutotuneService` shut down — which itself drains its request queue and
//! joins the backend thread before handing the [`AutotuneBackend`] back.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use optimizers::space::ConfigSpace;
use optimizers::tuner::TuningContext;
use pipeline::{
    shard_of, AutotuneBackend, AutotuneClient, Corpus, KnnIndex, Provenance, ReplayedOp,
    ShardedAutotuneClient, ShardedAutotuneService, TransferPolicy,
};

use crate::metrics::{render_text, ServeMetrics};
use crate::proto::{self, codes, Request, Response, WireError, PROTOCOL_VERSION};

/// How long an idle connection read blocks before re-checking the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serving-layer tunables. `Default` is sized for the load-generation bench;
/// the e2e tests pin the admission caps to force deterministic shedding.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool width; `0` means `rockpool::configured_threads()`
    /// (the `RH_THREADS` discipline shared with the evaluation pool).
    pub workers: usize,
    /// Connections accepted but not yet picked up by a worker before the
    /// acceptor sheds with `Overloaded`.
    pub max_pending_conns: usize,
    /// Concurrent backend evaluations before new suggest keys are shed with
    /// `Overloaded` (coalesced joins and cache hits are exempt).
    pub max_inflight_suggests: usize,
    /// How long a suggest waits on the backend before degrading to the
    /// default configuration.
    pub suggest_timeout: Duration,
    /// Durable-state directory. When set, each shard recovers from its own
    /// subdirectory (see [`shard_state_dir`]) *before* the listener accepts
    /// anything (replay-before-accept) and WAL-logs every mutation there from
    /// then on; each shard's coalescing cache is prepopulated from its
    /// replayed request stream so a restarted server answers repeated
    /// requests exactly as the crashed one would have.
    pub state_dir: Option<std::path::PathBuf>,
    /// WAL records between compacted snapshots (ignored without `state_dir`).
    pub snapshot_every: u64,
    /// Signature-hash shards, each a full backend on its own worker thread
    /// with its own coalescer, admission gate, and (when durable) WAL
    /// lineage. `0` and `1` both mean a single shard.
    pub shards: usize,
    /// Per-shard bound on resident per-signature tuner state: the LRU above
    /// it spills to durable sidecars. `0` keeps the pipeline default.
    pub shard_capacity: usize,
    /// Retrieval corpus directory (a `rockindex::Corpus` lineage). When set,
    /// the corpus is opened and indexed at boot and every shard consults it
    /// on cold suggests (DESIGN.md §12): a signature with no tuner state is
    /// served its nearest warm neighbor's best config, tagged `transferred`
    /// on the wire, before the normal tuning loop takes over.
    pub retrieval_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            max_pending_conns: 1024,
            max_inflight_suggests: 256,
            suggest_timeout: Duration::from_secs(30),
            state_dir: None,
            snapshot_every: pipeline::durability::DEFAULT_SNAPSHOT_EVERY,
            shards: 1,
            shard_capacity: 0,
            retrieval_dir: None,
        }
    }
}

/// Where shard `shard` of `shards` keeps its durable state under `root`:
/// the root itself for a single-shard deployment (bit-compatible with the
/// pre-sharding layout), `root/shard-NNNN` otherwise. The load generator and
/// the kill-recover smoke script tear specific shards through this layout.
pub fn shard_state_dir(root: &std::path::Path, shard: usize, shards: usize) -> std::path::PathBuf {
    if shards <= 1 {
        root.to_path_buf()
    } else {
        root.join(format!("shard-{shard:04}"))
    }
}

/// A suggestion as published to coalesced waiters.
#[derive(Clone)]
struct Served {
    point: Vec<f64>,
    fallback: Option<String>,
    provenance: Provenance,
}

/// One coalescing slot per distinct request content.
enum Slot {
    /// A leader is evaluating; duplicates park a sender here.
    InFlight { waiters: Vec<Sender<Served>> },
    /// The evaluation finished; `batch` counts every request it served.
    Done {
        point: Vec<f64>,
        fallback: Option<String>,
        provenance: Provenance,
        batch: u64,
    },
}

/// Full request content: tenant, signature, canonical context bytes.
type CoalesceKey = (String, u64, Vec<u8>);

/// One shard's serving-side state: its backend client, its coalescer, and
/// its own admission gate. Routing a signature to its lane is a pure
/// function of the signature ([`shard_of`]), so per-signature ordering holds
/// through the lane's queue no matter how many lanes exist.
struct ShardLane {
    client: AutotuneClient,
    /// Backend evaluations in flight on this shard.
    inflight: AtomicU64,
    coalescer: Mutex<HashMap<CoalesceKey, Slot>>,
}

struct Shared {
    /// Fan-out client for work that spans shards (reports, merged counters).
    client: ShardedAutotuneClient,
    /// Per-shard serving lanes, index = shard id.
    lanes: Vec<ShardLane>,
    space: ConfigSpace,
    cfg: ServeConfig,
    local_addr: SocketAddr,
    draining: AtomicBool,
    /// Connections accepted, not yet picked up by a worker.
    queued: AtomicU64,
    metrics: ServeMetrics,
}

fn lock_coalescer(lane: &ShardLane) -> MutexGuard<'_, HashMap<CoalesceKey, Slot>> {
    lane.coalescer
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A live serving instance. Dropping the handle drains and joins everything —
/// the same contract `AutotuneService` honors one layer down.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    service: Option<ShardedAutotuneService>,
    /// What boot-time recovery found, merged over every shard; `None`
    /// without a state dir.
    recovery: Option<pipeline::RecoveryReport>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `backend` — split into `cfg.shards` signature-hash shards — on a
    /// fixed-width worker pool.
    pub fn spawn(
        backend: AutotuneBackend,
        addr: &str,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let shards = cfg.shards.clamp(1, 64);
        // Open and index the retrieval corpus before the split, so every
        // shard shares the identical index (transfer answers must be
        // bit-identical at any shard count) and before recovery, so replayed
        // suggests consult the same index the crashed process did.
        let mut backend = backend;
        if let Some(dir) = &cfg.retrieval_dir {
            let (corpus, _recovery) = Corpus::open(dir)?;
            let index = Arc::new(KnnIndex::build(&corpus));
            backend = backend.with_retrieval(index, TransferPolicy::default());
        }
        let mut backends = backend.split_into_shards(shards, cfg.shard_capacity);
        // Replay-before-accept: recover each shard's durable state (and
        // rebuild its coalescing cache from its replayed request stream)
        // before the listener exists, so no request can race the replay.
        let mut recovered_caches: Vec<HashMap<CoalesceKey, Slot>> =
            (0..shards).map(|_| HashMap::new()).collect();
        let mut recovery: Option<pipeline::RecoveryReport> = None;
        if let Some(dir) = &cfg.state_dir {
            let mut merged = pipeline::RecoveryReport::default();
            for (i, b) in backends.iter_mut().enumerate() {
                let report = b.recover_from_with(
                    &shard_state_dir(dir, i, shards),
                    cfg.snapshot_every.max(1),
                )?;
                prepopulate_coalescer(&mut recovered_caches[i], &report.ops);
                merged.replayed += report.replayed;
                merged.quarantined += report.quarantined;
                merged.quarantined_bytes += report.quarantined_bytes;
                merged.restored_snapshot |= report.restored_snapshot;
                merged.ops.extend(report.ops);
            }
            recovery = Some(merged);
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (service, client) = ShardedAutotuneService::spawn(backends);
        let lanes = recovered_caches
            .into_iter()
            .zip(client.clients())
            .map(|(cache, shard_client)| ShardLane {
                client: shard_client.clone(),
                inflight: AtomicU64::new(0),
                coalescer: Mutex::new(cache),
            })
            .collect();
        let width = if cfg.workers == 0 {
            rockpool::configured_threads()
        } else {
            cfg.workers
        }
        .clamp(1, 64);
        let shared = Arc::new(Shared {
            client,
            lanes,
            space: ConfigSpace::query_level(),
            cfg,
            local_addr,
            draining: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            metrics: ServeMetrics::with_shards(shards),
        });
        let (conn_tx, conn_rx) = unbounded::<TcpStream>();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conn_tx))
        };
        let workers = (0..width)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = conn_rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
            service: Some(service),
            recovery,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// What boot-time recovery replayed and quarantined; `None` when the
    /// server was spawned without a state directory.
    pub fn recovery_report(&self) -> Option<&pipeline::RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Block until something drains the server (a `Shutdown` frame from a
    /// client, typically), then join every thread and recover the per-shard
    /// backends, index = shard id. A `None` entry marks a shard whose
    /// backend thread panicked (its state is lost with it).
    pub fn join(mut self) -> Vec<Option<AutotuneBackend>> {
        self.finish()
    }

    /// Drain now: stop accepting, serve everything queued, join every
    /// thread, and recover the per-shard backends, index = shard id. A
    /// `None` entry marks a shard whose backend thread panicked.
    pub fn shutdown(mut self) -> Vec<Option<AutotuneBackend>> {
        begin_drain(&self.shared);
        self.finish()
    }

    fn finish(&mut self) -> Vec<Option<AutotuneBackend>> {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let mut backends = self
            .service
            .take()
            .map(ShardedAutotuneService::shutdown)
            .unwrap_or_default();
        // Flush-on-drain: force-sync every shard's WAL so a clean shutdown
        // loses nothing. Deliberately a sync, not a final snapshot — the
        // next boot exercises real log replay.
        for b in backends.iter_mut().flatten() {
            let _ = b.flush_durability();
        }
        backends
    }
}

impl Drop for Server {
    /// A dropped server must not leave acceptor or workers detached: drain
    /// and join, exactly as [`Server::shutdown`] would.
    fn drop(&mut self) {
        begin_drain(&self.shared);
        let _ = self.finish();
    }
}

/// Flip the drain flag once and wake the blocking acceptor with a throwaway
/// connect so it observes the flag.
fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(shared.local_addr);
    }
}

/// Rebuild the coalescing cache from the recovery's replayed request stream,
/// in WAL order: each replayed suggestion publishes its (bit-identical)
/// point; each replayed report invalidates the tenant's entries for the
/// signatures it mentioned — exactly what the live paths would have done.
fn prepopulate_coalescer(map: &mut HashMap<CoalesceKey, Slot>, ops: &[ReplayedOp]) {
    for op in ops {
        match op {
            ReplayedOp::Suggest {
                user,
                signature,
                ctx,
                point,
                provenance,
            } => {
                let Ok(ctx_bytes) = serde_json::to_vec(ctx) else {
                    continue;
                };
                map.insert(
                    (user.clone(), *signature, ctx_bytes),
                    Slot::Done {
                        point: point.clone(),
                        fallback: None,
                        provenance: *provenance,
                        batch: 1,
                    },
                );
            }
            ReplayedOp::Invalidate { user, signatures } => {
                map.retain(|k, _| !(&k.0 == user && signatures.binary_search(&k.1).is_ok()));
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conn_tx: &Sender<TcpStream>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let queued = shared.queued.load(Ordering::Acquire);
        let cap = u64::try_from(shared.cfg.max_pending_conns).unwrap_or(u64::MAX);
        if queued >= cap {
            shared.metrics.count_overloaded();
            shed_connection(stream, queued, cap);
            continue;
        }
        shared.queued.fetch_add(1, Ordering::AcqRel);
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
    // conn_tx drops here; workers drain the queue, then exit on the closed
    // channel.
}

/// Best-effort `Overloaded` reply to a connection shed at the accept gate.
fn shed_connection(mut stream: TcpStream, inflight: u64, capacity: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = send_response(&mut stream, &Response::Overloaded { inflight, capacity });
}

fn worker_loop(shared: &Arc<Shared>, conn_rx: &Receiver<TcpStream>) {
    while let Ok(stream) = conn_rx.recv() {
        shared.queued.fetch_sub(1, Ordering::AcqRel);
        handle_connection(shared, stream);
    }
}

fn send_response(stream: &mut TcpStream, resp: &Response) -> bool {
    match proto::encode_response(resp) {
        Ok(payload) => proto::write_frame(stream, &payload).is_ok(),
        Err(_) => false,
    }
}

fn error_response(e: &WireError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

/// Serve one connection until it closes, errors, or the server drains. The
/// short read timeout is an idle poll: a connection sitting between frames
/// re-checks the drain flag every [`IDLE_POLL`]; a frame already arriving is
/// always read to completion (see `proto::read_full`).
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    loop {
        match proto::read_frame(&mut stream) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let started = Instant::now();
                let (resp, is_shutdown) = match proto::decode_request(&payload) {
                    Ok(req) => dispatch(shared, req),
                    Err(e) => {
                        shared.metrics.count_protocol_error();
                        (error_response(&e), false)
                    }
                };
                let sent = send_response(&mut stream, &resp);
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared.metrics.record_latency_us(us);
                if is_shutdown {
                    begin_drain(shared);
                    break;
                }
                if !sent || matches!(resp, Response::Error { .. }) {
                    break;
                }
            }
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) => {
                shared.metrics.count_protocol_error();
                let _ = send_response(&mut stream, &error_response(&e));
                break;
            }
        }
    }
}

/// Route one decoded request; the bool asks the connection loop to start the
/// server-wide drain after replying.
fn dispatch(shared: &Arc<Shared>, req: Request) -> (Response, bool) {
    match req {
        Request::Suggest {
            user,
            signature,
            embedding,
            expected_data_size,
            iteration,
        } => {
            let ctx = TuningContext {
                embedding,
                expected_data_size,
                iteration,
            };
            (serve_suggest(shared, &user, signature, &ctx), false)
        }
        Request::Report {
            user,
            app_id,
            jsonl,
        } => (serve_report(shared, &user, &app_id, jsonl), false),
        Request::Health => {
            shared.metrics.count_health();
            (
                Response::Healthy {
                    draining: shared.draining.load(Ordering::Acquire),
                    protocol_version: PROTOCOL_VERSION,
                },
                false,
            )
        }
        Request::Metrics => (serve_metrics(shared), false),
        Request::Shutdown => {
            shared.metrics.count_shutdown();
            (Response::ShuttingDown, true)
        }
    }
}

/// What a suggest request should do, decided under the coalescer lock.
enum SuggestPlan {
    /// Cache hit: the answer is already published.
    Hit(Served),
    /// A leader is in flight; wait for its publication.
    Wait(Receiver<Served>),
    /// This request leads a fresh backend evaluation.
    Lead,
}

fn serve_suggest(
    shared: &Arc<Shared>,
    user: &str,
    signature: u64,
    ctx: &TuningContext,
) -> Response {
    let started = Instant::now();
    let shard = shard_of(signature, shared.lanes.len());
    shared.metrics.count_suggest(shard);
    let resp = serve_suggest_on(shared, shard, user, signature, ctx);
    let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_shard_latency_us(shard, us);
    resp
}

/// The suggest path after routing: coalesce, gate, and evaluate on one
/// shard's lane.
fn serve_suggest_on(
    shared: &Arc<Shared>,
    shard: usize,
    user: &str,
    signature: u64,
    ctx: &TuningContext,
) -> Response {
    let Some(lane) = shared.lanes.get(shard) else {
        return Response::Error {
            code: codes::MALFORMED_FRAME.to_string(),
            message: format!("signature routed to missing shard {shard}"),
        };
    };
    let Ok(ctx_bytes) = serde_json::to_vec(ctx) else {
        return Response::Error {
            code: codes::MALFORMED_FRAME.to_string(),
            message: "unencodable tuning context".to_string(),
        };
    };
    let key: CoalesceKey = (user.to_string(), signature, ctx_bytes);
    let plan = {
        let mut map = lock_coalescer(lane);
        match map.get_mut(&key) {
            Some(Slot::Done {
                point,
                fallback,
                provenance,
                batch,
            }) => {
                *batch = batch.saturating_add(1);
                let served = Served {
                    point: point.clone(),
                    fallback: fallback.clone(),
                    provenance: *provenance,
                };
                let batch = *batch;
                drop(map);
                shared.metrics.count_coalesced_hit(shard);
                shared.metrics.observe_batch(batch);
                SuggestPlan::Hit(served)
            }
            Some(Slot::InFlight { waiters }) => {
                let (tx, rx) = unbounded();
                waiters.push(tx);
                drop(map);
                shared.metrics.count_coalesced_hit(shard);
                SuggestPlan::Wait(rx)
            }
            None => {
                let inflight = lane.inflight.load(Ordering::Acquire);
                let cap = u64::try_from(shared.cfg.max_inflight_suggests).unwrap_or(u64::MAX);
                if inflight >= cap {
                    drop(map);
                    shared.metrics.count_shard_overloaded(shard);
                    return Response::Overloaded {
                        inflight,
                        capacity: cap,
                    };
                }
                lane.inflight.fetch_add(1, Ordering::AcqRel);
                map.insert(
                    key.clone(),
                    Slot::InFlight {
                        waiters: Vec::new(),
                    },
                );
                SuggestPlan::Lead
            }
        }
    };
    match plan {
        SuggestPlan::Hit(s) => suggestion_response(shared, s),
        SuggestPlan::Wait(rx) => {
            // Grace beyond the leader's own timeout: the leader always
            // publishes (a default on fallback), so this only fires if the
            // leader's thread died.
            let wait = shared
                .cfg
                .suggest_timeout
                .saturating_add(Duration::from_secs(1));
            match rx.recv_timeout(wait) {
                Ok(s) => suggestion_response(shared, s),
                Err(_) => Response::Suggestion {
                    point: shared.space.default_point(),
                    fallback: Some("coalesced leader unavailable".to_string()),
                    provenance: Some(Provenance::Explored.to_string()),
                },
            }
        }
        SuggestPlan::Lead => {
            let (point, provenance, fallback) = lane.client.suggest_or_default_tagged(
                user,
                signature,
                ctx,
                shared.cfg.suggest_timeout,
                &shared.space,
            );
            lane.inflight.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.count_backend_eval(shard);
            let fallback = fallback.map(|f| f.to_string());
            let served = Served {
                point: point.clone(),
                fallback: fallback.clone(),
                provenance,
            };
            let (waiters, batch) = {
                let mut map = lock_coalescer(lane);
                let waiters = match map.remove(&key) {
                    Some(Slot::InFlight { waiters }) => waiters,
                    _ => Vec::new(),
                };
                let batch = u64::try_from(waiters.len())
                    .unwrap_or(u64::MAX)
                    .saturating_add(1);
                map.insert(
                    key,
                    Slot::Done {
                        point: point.clone(),
                        fallback: fallback.clone(),
                        provenance,
                        batch,
                    },
                );
                (waiters, batch)
            };
            shared.metrics.observe_batch(batch);
            for w in waiters {
                let _ = w.send(served.clone());
            }
            suggestion_response(shared, served)
        }
    }
}

/// Build the wire response for a served suggestion, counting transfers. Every
/// answer of a transferred point counts — fresh evaluations and coalesced
/// copies alike — because each one is a request a cold tuner did not have to
/// explore for.
fn suggestion_response(shared: &Arc<Shared>, s: Served) -> Response {
    if s.provenance == Provenance::Transferred {
        shared.metrics.count_transfer_served();
    }
    Response::Suggestion {
        point: s.point,
        fallback: s.fallback,
        provenance: Some(s.provenance.to_string()),
    }
}

fn serve_report(shared: &Arc<Shared>, user: &str, app_id: &str, jsonl: String) -> Response {
    shared.metrics.count_report();
    // New observations should move the tuner: invalidate this tenant's cached
    // suggestions for every signature the document mentions, so the *content*
    // of the report history — not timing — decides what later suggests see.
    let (events, _quarantined) = sparksim::event::from_jsonl_lossy(&jsonl);
    // One definition shared with replay-time cache rebuild: see
    // `pipeline::report_signatures`.
    let sigs = pipeline::report_signatures(&events);
    if !sigs.is_empty() {
        // Each signature's cache entries live only on its own lane, so a
        // uniform retain over every lane invalidates exactly the owning
        // shard's entries.
        for lane in &shared.lanes {
            let mut map = lock_coalescer(lane);
            map.retain(|k, _| !(k.0 == user && sigs.binary_search(&k.1).is_ok()));
        }
    }
    shared.client.report_jsonl(user, app_id, jsonl);
    Response::Reported
}

fn serve_metrics(shared: &Arc<Shared>) -> Response {
    shared.metrics.count_metrics();
    let dashboard = shared
        .client
        .dashboard_counters(shared.cfg.suggest_timeout)
        .unwrap_or_default();
    let inflight = shared
        .lanes
        .iter()
        .map(|l| l.inflight.load(Ordering::Acquire))
        .fold(0u64, u64::saturating_add);
    let serving = shared
        .metrics
        .snapshot(shared.queued.load(Ordering::Acquire), inflight);
    let text = render_text(&serving, &dashboard);
    Response::MetricsReport {
        text,
        serving,
        dashboard,
    }
}
