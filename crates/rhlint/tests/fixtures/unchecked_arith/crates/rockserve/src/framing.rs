//! RH029 fixture: raw arithmetic on a wire-decoded integer.
//!
//! One positive — `len + HEADER_BYTES` where `len` is an unchecked wire
//! length (release-mode wrap, debug-mode panic) — and two negatives: the
//! `checked_add` form, and the same sum after a dominating bound check.

const HEADER_BYTES: usize = 6;
const MAX_PAYLOAD_BYTES: usize = 1048576;

fn frame_total(hdr: [u8; 4]) -> usize {
    let len = u32::from_le_bytes(hdr) as usize;
    len + HEADER_BYTES
}

fn frame_total_checked(hdr: [u8; 4]) -> Option<usize> {
    let len = u32::from_le_bytes(hdr) as usize;
    len.checked_add(HEADER_BYTES)
}

fn frame_total_bounded(hdr: [u8; 4]) -> usize {
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return 0;
    }
    len + HEADER_BYTES
}
