//! Deterministic exact-scan k-NN over L2-normalized corpus embeddings.
//!
//! The determinism contract (DESIGN.md §12): ranking is a pure function of
//! `(corpus, query)`. Rows are held in ascending signature order (the
//! corpus `BTreeMap` order), similarities compare with `f64::total_cmp`,
//! and exact ties break to the **smaller signature** — no seed, no hash
//! order, no wall clock anywhere. The same corpus therefore ranks the same
//! neighbors on every shard, at every thread count, before and after a
//! kill-and-recover of the corpus lineage.

use crate::corpus::Corpus;

/// One ranked corpus neighbor, carrying everything the transfer handoff
/// needs (the best point to serve, and the cost summary to discount).
#[derive(Clone, Debug, PartialEq)]
pub struct Neighbor {
    /// The corpus signature this neighbor came from.
    pub signature: u64,
    /// Cosine similarity in `[-1, 1]` against the query embedding.
    pub similarity: f64,
    /// The neighbor's best-observed configuration point.
    pub best_point: Vec<f64>,
    /// Observations backing the neighbor's summary.
    pub observations: u64,
    /// Elapsed milliseconds of the neighbor's best observation.
    pub best_elapsed_ms: f64,
    /// Mean elapsed milliseconds across the neighbor's observations.
    pub mean_elapsed_ms: f64,
    /// Data size (GB) the neighbor's best observation ran at.
    pub data_size: f64,
}

/// One indexed row: the unit-normalized embedding plus the payload.
struct Row {
    signature: u64,
    unit: Vec<f64>,
    best_point: Vec<f64>,
    observations: u64,
    best_elapsed_ms: f64,
    mean_elapsed_ms: f64,
    data_size: f64,
}

/// An immutable exact-scan index built from a corpus snapshot. Rebuild it
/// after corpus mutations; queries never mutate.
pub struct KnnIndex {
    rows: Vec<Row>,
}

impl KnnIndex {
    /// Build the index: one row per corpus entry, in ascending signature
    /// order. Entries whose embedding has no direction (zero norm) cannot
    /// be ranked by cosine similarity and are skipped.
    pub fn build(corpus: &Corpus) -> KnnIndex {
        let mut rows = Vec::new();
        for entry in corpus.entries() {
            if let Some(unit) = normalize(&entry.embedding) {
                rows.push(Row {
                    signature: entry.signature,
                    unit,
                    best_point: entry.best_point.clone(),
                    observations: entry.observations,
                    best_elapsed_ms: entry.best_elapsed_ms,
                    mean_elapsed_ms: entry.mean_elapsed_ms,
                    data_size: entry.data_size,
                });
            }
        }
        KnnIndex { rows }
    }

    /// Indexed row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The top `k` neighbors of `embedding`, ranked by descending cosine
    /// similarity with ties to the smaller signature. Empty when the query
    /// has no direction or the index is empty.
    pub fn query(&self, embedding: &[f64], k: usize) -> Vec<Neighbor> {
        let Some(unit) = normalize(embedding) else {
            return Vec::new();
        };
        let mut ranked: Vec<(f64, usize)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| (dot(&row.unit, &unit), i))
            .collect();
        ranked.sort_by(|(sim_a, ia), (sim_b, ib)| {
            sim_b.total_cmp(sim_a).then_with(|| {
                let sig_a = self.rows.get(*ia).map_or(u64::MAX, |r| r.signature);
                let sig_b = self.rows.get(*ib).map_or(u64::MAX, |r| r.signature);
                sig_a.cmp(&sig_b)
            })
        });
        ranked
            .into_iter()
            .take(k)
            .filter_map(|(similarity, i)| {
                self.rows.get(i).map(|row| Neighbor {
                    signature: row.signature,
                    similarity,
                    best_point: row.best_point.clone(),
                    observations: row.observations,
                    best_elapsed_ms: row.best_elapsed_ms,
                    mean_elapsed_ms: row.mean_elapsed_ms,
                    data_size: row.data_size,
                })
            })
            .collect()
    }
}

/// When (and how) a neighbor is trusted enough to transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPolicy {
    /// Neighbors considered per lookup.
    pub k: usize,
    /// Minimum cosine similarity for a transfer (below ⇒ cold miss).
    pub min_similarity: f64,
    /// Trust discount: transferred observations are seeded into the tuner
    /// history with elapsed time inflated by `1 + trust_margin`, so local
    /// real observations outrank the borrowed prior as soon as they match.
    pub trust_margin: f64,
}

impl Default for TransferPolicy {
    fn default() -> TransferPolicy {
        TransferPolicy {
            k: 3,
            min_similarity: 0.80,
            trust_margin: 0.25,
        }
    }
}

impl TransferPolicy {
    /// The neighbors eligible for transfer: the top `k`, filtered to those
    /// at or above `min_similarity`. The first element (if any) is the one
    /// whose best point gets served.
    pub fn eligible(&self, index: &KnnIndex, embedding: &[f64]) -> Vec<Neighbor> {
        index
            .query(embedding, self.k)
            .into_iter()
            .filter(|n| n.similarity >= self.min_similarity)
            .collect()
    }

    /// The single transfer source for a cold lookup, if any.
    pub fn lookup(&self, index: &KnnIndex, embedding: &[f64]) -> Option<Neighbor> {
        self.eligible(index, embedding).into_iter().next()
    }

    /// The trust-discounted elapsed time to seed for a neighbor.
    pub fn discounted_elapsed_ms(&self, neighbor: &Neighbor) -> f64 {
        neighbor.best_elapsed_ms * (1.0 + self.trust_margin)
    }
}

/// L2-normalize; `None` when the vector has no direction.
fn normalize(v: &[f64]) -> Option<Vec<f64>> {
    let norm = dot(v, v).sqrt();
    if !norm.is_finite() || norm <= 0.0 {
        return None;
    }
    Some(v.iter().map(|x| x / norm).collect())
}

/// Dot product over the shared prefix (shorter vector zero-padded).
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusEntry;

    fn corpus_of(entries: &[(u64, Vec<f64>)]) -> Corpus {
        let mut corpus = Corpus::in_memory();
        for (signature, embedding) in entries {
            corpus
                .upsert(CorpusEntry {
                    signature: *signature,
                    embedding: embedding.clone(),
                    best_point: vec![*signature as f64],
                    observations: 4,
                    best_elapsed_ms: 100.0,
                    mean_elapsed_ms: 120.0,
                    data_size: 1.0,
                })
                .expect("in-memory upsert");
        }
        corpus
    }

    #[test]
    fn ranks_by_cosine_similarity() {
        let corpus = corpus_of(&[
            (1, vec![1.0, 0.0]),
            (2, vec![0.0, 1.0]),
            (3, vec![1.0, 1.0]),
        ]);
        let index = KnnIndex::build(&corpus);
        let got = index.query(&[1.0, 0.1], 3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].signature, 1, "nearest direction wins");
        assert_eq!(got[1].signature, 3);
        assert_eq!(got[2].signature, 2);
        assert!(got[0].similarity > got[1].similarity);
    }

    #[test]
    fn exact_ties_break_to_the_smaller_signature() {
        // Same embedding under three signatures: ranking must be 7, 9, 11
        // regardless of insertion order.
        let corpus = corpus_of(&[
            (11, vec![3.0, 4.0]),
            (7, vec![3.0, 4.0]),
            (9, vec![3.0, 4.0]),
        ]);
        let index = KnnIndex::build(&corpus);
        let sigs: Vec<u64> = index
            .query(&[3.0, 4.0], 3)
            .iter()
            .map(|n| n.signature)
            .collect();
        assert_eq!(sigs, vec![7, 9, 11], "ties must break by signature");
    }

    #[test]
    fn scaling_does_not_change_the_ranking() {
        let corpus = corpus_of(&[(1, vec![2.0, 1.0]), (2, vec![1.0, 2.0])]);
        let index = KnnIndex::build(&corpus);
        let small = index.query(&[2.0, 1.0], 2);
        let big = index.query(&[200.0, 100.0], 2);
        assert_eq!(small, big, "cosine similarity must be scale-invariant");
    }

    #[test]
    fn zero_norm_queries_and_rows_are_unrankable() {
        let corpus = corpus_of(&[(1, vec![0.0, 0.0]), (2, vec![1.0, 0.0])]);
        let index = KnnIndex::build(&corpus);
        assert_eq!(index.len(), 1, "zero-norm rows are skipped");
        assert!(index.query(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn the_policy_gates_on_min_similarity() {
        let corpus = corpus_of(&[(1, vec![1.0, 0.0])]);
        let index = KnnIndex::build(&corpus);
        let policy = TransferPolicy::default();
        assert!(
            policy.lookup(&index, &[1.0, 0.05]).is_some(),
            "a near-parallel query must transfer"
        );
        assert!(
            policy.lookup(&index, &[0.0, 1.0]).is_none(),
            "an orthogonal query must cold-miss"
        );
    }

    #[test]
    fn the_trust_discount_inflates_elapsed_time() {
        let policy = TransferPolicy::default();
        let neighbor = Neighbor {
            signature: 1,
            similarity: 1.0,
            best_point: vec![],
            observations: 4,
            best_elapsed_ms: 100.0,
            mean_elapsed_ms: 120.0,
            data_size: 1.0,
        };
        assert!(policy.discounted_elapsed_ms(&neighbor) > neighbor.best_elapsed_ms);
    }
}
