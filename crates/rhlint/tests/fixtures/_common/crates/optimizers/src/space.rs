//! Search-space dimensions for the fixture workspace.

use sparksim::config::Knob;

/// One tunable dimension.
pub struct Dim {
    pub knob: Knob,
    pub lo: f64,
    pub hi: f64,
}

/// Query-level dimensions.
pub fn query_level() -> Vec<Dim> {
    vec![
        Dim { knob: Knob::ShufflePartitions, lo: 8.0, hi: 1024.0 },
        Dim { knob: Knob::MemoryFraction, lo: 0.2, hi: 0.9 },
        Dim { knob: Knob::BroadcastThreshold, lo: 1.0, hi: 256.0 },
    ]
}

/// App-level dimensions.
pub fn app_level() -> Vec<Dim> {
    vec![
        Dim { knob: Knob::ExecutorMemory, lo: 1024.0, hi: 32768.0 },
        Dim { knob: Knob::ExecutorCores, lo: 1.0, hi: 8.0 },
        Dim { knob: Knob::DriverMemory, lo: 1024.0, hi: 16384.0 },
        Dim { knob: Knob::ExecutorInstances, lo: 1.0, hi: 64.0 },
    ]
}
