//! **Figure 11**: Centroid Learning under dynamic workloads — data sizes increasing
//! linearly over time and changing periodically (`t mod K`) — still converges; the
//! plots are normed performance and the `maxPartitionBytes` optimality gap.

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;
use workloads::dynamic::DataSchedule;

use crate::harness::{band_rows, write_csv, Scale, Summary};

/// The two schedules the paper simulates.
pub fn schedules() -> Vec<(&'static str, DataSchedule)> {
    vec![
        (
            "linear",
            DataSchedule::LinearIncreasing {
                start: 1.0,
                slope: 0.02,
            },
        ),
        (
            "periodic",
            DataSchedule::Periodic {
                base: 1.0,
                amplitude: 2.0,
                k: 12,
            },
        ),
    ]
}

fn trace(schedule: &DataSchedule, seed: u64, iters: usize) -> (Vec<f64>, Vec<f64>) {
    let mut env = SyntheticEnv::new(NoiseSpec::high(), schedule.clone(), seed);
    let mut tuner = RockhopperTuner::builder(env.space().clone())
        .guardrail(None)
        .seed(seed)
        .build();
    let mut perf = Vec::with_capacity(iters);
    let mut gap = Vec::with_capacity(iters);
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        perf.push(env.normed_performance(&p));
        gap.push(env.optimality_gap(0, &p));
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    (perf, gap)
}

/// Run both dynamic schedules.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(100, 6);
    let iters = scale.pick(400, 40);
    let mut summary = Summary::new("fig11_dynamic_workloads");
    for (name, schedule) in schedules() {
        let raw = crate::harness::replicate_raw(runs, |seed| {
            let (perf, gap) = trace(&schedule, seed, iters);
            let mut v = perf;
            v.extend(gap);
            v
        });
        let perf_bands = ml::stats::bands_per_iteration(
            &raw.iter().map(|v| v[..iters].to_vec()).collect::<Vec<_>>(),
        );
        let gap_bands = ml::stats::bands_per_iteration(
            &raw.iter().map(|v| v[iters..].to_vec()).collect::<Vec<_>>(),
        );
        let tail = &perf_bands[perf_bands.len().saturating_sub(10)..];
        let final_p50 = ml::stats::mean(&tail.iter().map(|b| b.p50).collect::<Vec<_>>());
        let gtail = &gap_bands[gap_bands.len().saturating_sub(10)..];
        let final_gap = ml::stats::mean(&gtail.iter().map(|b| b.p50).collect::<Vec<_>>());
        summary.row(
            &format!("{name}: final median normed perf"),
            format!("{final_p50:.3}"),
        );
        summary.row(
            &format!("{name}: final median optimality gap"),
            format!("{final_gap:.3}"),
        );
        summary.files.push(write_csv(
            &format!("fig11_{name}_normed"),
            "iteration,p5,p50,p95",
            &band_rows(&perf_bands),
        ));
        summary.files.push(write_csv(
            &format!("fig11_{name}_gap"),
            "iteration,p5,p50,p95",
            &band_rows(&gap_bands),
        ));
    }
    summary.row(
        "paper expectation",
        "CL converges to the optimal configuration for both dynamic workloads",
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_shrinks_on_linear_schedule() {
        let (_, sched) = &schedules()[0];
        let finals: Vec<f64> = (0..5)
            .map(|s| {
                let (_, gap) = trace(sched, s, 150);
                ml::stats::mean(&gap[gap.len() - 10..])
            })
            .collect();
        let early: Vec<f64> = (0..5)
            .map(|s| {
                let (_, gap) = trace(sched, s, 150);
                ml::stats::mean(&gap[..10])
            })
            .collect();
        assert!(
            ml::stats::median(&finals).expect("runs > 0")
                < ml::stats::median(&early).expect("runs > 0") + 0.05,
            "gap should not grow: early {early:?} final {finals:?}"
        );
    }
}
