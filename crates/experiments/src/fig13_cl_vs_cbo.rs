//! **Figure 13**: Centroid Learning vs Contextual Bayesian Optimization, both
//! starting from an intentionally poor configuration, on the Lightweight-Pipeline
//! (live, noisy) setting. The paper: "Centroid Learning achieves significantly
//! better final convergence than the CBO method, even under suboptimal starting
//! conditions."

use optimizers::cbo::ContextualBO;
use optimizers::env::{Environment, QueryEnv};
use optimizers::tuner::{Outcome, Tuner};
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;

use crate::harness::{write_csv, Scale, Summary};

/// Queries tuned.
pub const QUERIES: [usize; 4] = [1, 5, 13, 21];

/// An intentionally poor starting point: max partition size, broadcasting disabled-ish
/// (tiny threshold), minimal parallelism.
fn poor_start(space: &optimizers::space::ConfigSpace) -> Vec<f64> {
    space.denormalize(&[0.98, 0.02, 0.02])
}

fn noise() -> NoiseSpec {
    // LWP "more accurately reflects the noisy environment of a real production
    // setting": moderate fluctuation with occasional spikes.
    NoiseSpec {
        fluctuation: 0.4,
        spike: 0.5,
    }
}

/// Run the comparison; speedup = default-config time / tuned time (1.0 = default).
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 10.0,
        Scale::Quick => 1.0,
    };
    let iters = scale.pick(60, 10);
    let mut summary = Summary::new("fig13_cl_vs_cbo");
    let mut csv = Vec::new();
    let (mut cl_final_sum, mut cbo_final_sum) = (0.0, 0.0);

    for (qi, &q) in QUERIES.iter().enumerate() {
        let mut env = QueryEnv::tpcds(q, sf, noise(), 500 + qi as u64);
        let space = env.space().clone();
        let start = poor_start(&space);
        let reference = env.true_time(&space.default_point());

        // Centroid Learning from the poor start.
        let mut cl = RockhopperTuner::builder(space.clone())
            .start_at(start.clone())
            .guardrail(None)
            .seed(600 + qi as u64)
            .build();
        let mut cl_trace = Vec::with_capacity(iters);
        for _ in 0..iters {
            let p = cl.suggest(&env.context());
            cl_trace.push(reference / env.true_time(&p));
            let o = env.run(&p);
            cl.observe(&p, &o);
        }

        // CBO, primed with one observation at the same poor start.
        let mut env = QueryEnv::tpcds(q, sf, noise(), 700 + qi as u64);
        let mut cbo = ContextualBO::new(space.clone(), 800 + qi as u64);
        let first = env.run(&start);
        cbo.observe(
            &start,
            &Outcome {
                elapsed_ms: first.elapsed_ms,
                data_size: first.data_size,
                kind: optimizers::tuner::ObservationKind::Measured,
            },
        );
        let mut cbo_trace = Vec::with_capacity(iters);
        for _ in 0..iters {
            let p = cbo.suggest(&env.context());
            cbo_trace.push(reference / env.true_time(&p));
            let o = env.run(&p);
            cbo.observe(&p, &o);
        }

        for t in 0..iters {
            csv.push(vec![qi as f64, t as f64, cl_trace[t], cbo_trace[t]]);
        }
        // Final convergence: mean speedup over the last 5 executed configs (not
        // best-so-far — the paper's plot is the actually-run configuration).
        let last5 = |tr: &[f64]| ml::stats::mean(&tr[tr.len().saturating_sub(5)..]);
        let (clf, cbof) = (last5(&cl_trace), last5(&cbo_trace));
        cl_final_sum += clf;
        cbo_final_sum += cbof;
        summary.row(
            &format!("Q{q} final speedup (CL vs CBO)"),
            format!("{clf:.3}x vs {cbof:.3}x"),
        );
    }
    let n = QUERIES.len() as f64;
    summary.row(
        "mean final speedup",
        format!(
            "CL {:.3}x vs CBO {:.3}x",
            cl_final_sum / n,
            cbo_final_sum / n
        ),
    );
    summary.row(
        "paper expectation",
        "CL reaches significantly better final convergence from the poor start",
    );
    summary.files.push(write_csv(
        "fig13_cl_vs_cbo",
        "query_idx,iteration,cl_speedup,cbo_speedup",
        &csv,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cl_final_beats_or_matches_cbo_quick() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let mean_row = s
            .rows
            .iter()
            .find(|(k, _)| k == "mean final speedup")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert!(mean_row.contains("CL"), "{mean_row}");
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
