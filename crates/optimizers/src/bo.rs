//! Vanilla Bayesian Optimization: GP surrogate + Expected Improvement, candidates
//! sampled uniformly over the whole space — the paper's primary baseline (Figure 2a).
//!
//! This is deliberately the *textbook* algorithm. Its global candidate proposals are
//! exactly what the paper criticizes in production: under heavy noise the GP chases
//! spikes into far-away regions, producing the wide, slow-converging band of Fig 2a.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ml::gp::GaussianProcess;
use ml::Regressor;

use crate::acquisition::expected_improvement;
use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

/// GP-EI Bayesian Optimization over a [`ConfigSpace`].
#[derive(Debug)]
pub struct BayesOpt {
    space: ConfigSpace,
    rng: StdRng,
    /// Pure-random warm-up iterations before the GP takes over.
    pub n_init: usize,
    /// Candidate pool size per suggestion.
    pub n_candidates: usize,
    /// Recorded observations.
    pub history: History,
}

impl BayesOpt {
    /// Create with the conventional defaults (5 random starts, 256 candidates).
    pub fn new(space: ConfigSpace, seed: u64) -> BayesOpt {
        BayesOpt {
            space,
            rng: StdRng::seed_from_u64(seed),
            n_init: 5,
            n_candidates: 256,
            history: History::new(),
        }
    }

    fn fit_gp(&self) -> Option<GaussianProcess> {
        if self.history.len() < self.n_init {
            return None;
        }
        // Cap the GP training set: the exact solve is O(n³), and BO libraries in
        // production do the same (inducing points / history truncation). Keeping the
        // most recent rows preserves the algorithm's behaviour on long runs.
        const MAX_ROWS: usize = 200;
        let window = self.history.window(MAX_ROWS);
        let x: Vec<Vec<f64>> = window
            .iter()
            .map(|o| self.space.normalize(&o.point))
            .collect();
        // Log targets: execution times are positive and spike multiplicatively.
        let y: Vec<f64> = window.iter().map(|o| o.elapsed_ms.ln()).collect();
        let mut gp = GaussianProcess::default_bo();
        gp.fit(&x, &y).ok()?;
        Some(gp)
    }
}

impl Tuner for BayesOpt {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        let Some(gp) = self.fit_gp() else {
            return self.space.random_point(&mut self.rng);
        };
        let best = self
            .history
            .best_raw()
            .map(|o| o.elapsed_ms.ln())
            .unwrap_or(0.0);
        // Candidates are drawn serially (preserving the tuner's RNG stream
        // exactly as the old one-at-a-time loop did), then scored in parallel:
        // EI evaluation is pure, so the fan-out cannot perturb determinism.
        let candidates: Vec<Vec<f64>> = (0..self.n_candidates)
            .map(|_| self.space.random_point(&mut self.rng))
            .collect();
        let scores = crate::batch::score_candidates(&candidates, |cand| {
            let post = gp.posterior(&self.space.normalize(cand));
            expected_improvement(&post, best)
        });
        match crate::batch::argmax_first(&scores).and_then(|i| candidates.get(i)) {
            Some(cand) => cand.clone(),
            None => self.space.random_point(&mut self.rng),
        }
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
    }

    fn name(&self) -> &'static str {
        "bayesopt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Environment, SyntheticEnv};
    use sparksim::noise::NoiseSpec;
    use workloads::dynamic::DataSchedule;

    fn ctx() -> TuningContext {
        TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        }
    }

    #[test]
    fn warms_up_randomly_then_models() {
        let mut bo = BayesOpt::new(ConfigSpace::query_level(), 1);
        assert!(bo.fit_gp().is_none());
        for i in 0..6 {
            let p = bo.suggest(&ctx());
            bo.observe(
                &p,
                &Outcome {
                    elapsed_ms: 100.0 + i as f64,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
        assert!(bo.fit_gp().is_some());
    }

    #[test]
    fn converges_on_noiseless_synthetic_function() {
        // With zero noise, textbook BO must find a near-optimal point quickly.
        let mut env = SyntheticEnv::new(NoiseSpec::none(), DataSchedule::Constant { size: 1.0 }, 7);
        let mut bo = BayesOpt::new(env.space().clone(), 7);
        let mut best = f64::INFINITY;
        for _ in 0..60 {
            let p = bo.suggest(&env.context());
            let o = env.run(&p);
            best = best.min(env.f.normed_performance(&[p[0], p[1], p[2]], 1.0));
            bo.observe(&p, &o);
        }
        assert!(best < 1.25, "best normed perf {best}");
    }

    #[test]
    fn struggles_under_high_noise_relative_to_noiseless() {
        // The Figure 2a phenomenon, in miniature: final *incumbent-belief* quality
        // degrades under heavy noise. We measure the true performance of what BO
        // believes is best (its raw-minimum observation — spike-corrupted).
        let run = |noise: sparksim::noise::NoiseSpec, seed: u64| -> f64 {
            let mut env = SyntheticEnv::new(noise, DataSchedule::Constant { size: 1.0 }, seed);
            let mut bo = BayesOpt::new(env.space().clone(), seed);
            for _ in 0..40 {
                let p = bo.suggest(&env.context());
                let o = env.run(&p);
                bo.observe(&p, &o);
            }
            let inc = bo.history.best_raw().unwrap().point.clone();
            env.f.normed_performance(&[inc[0], inc[1], inc[2]], 1.0)
        };
        let clean: f64 = (0..5).map(|s| run(NoiseSpec::none(), s)).sum::<f64>() / 5.0;
        let noisy: f64 = (0..5).map(|s| run(NoiseSpec::high(), s)).sum::<f64>() / 5.0;
        assert!(
            noisy > clean,
            "noise should hurt BO: clean {clean}, noisy {noisy}"
        );
    }

    #[test]
    fn suggestions_respect_bounds() {
        let space = ConfigSpace::query_level();
        let mut bo = BayesOpt::new(space.clone(), 3);
        for i in 0..15 {
            let p = bo.suggest(&ctx());
            for (v, d) in p.iter().zip(&space.dims) {
                assert!(*v >= d.lo && *v <= d.hi);
            }
            bo.observe(
                &p,
                &Outcome {
                    elapsed_ms: 50.0 + (i % 3) as f64,
                    data_size: 1.0,
                    kind: crate::tuner::ObservationKind::Measured,
                },
            );
        }
    }
}
