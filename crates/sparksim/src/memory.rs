//! Executor memory model: how much execution memory each task gets and how much a
//! stage's tasks spill when their working set exceeds it.
//!
//! This is the mechanism that makes *too few* shuffle partitions expensive (each task's
//! share of the shuffled data outgrows its memory and spills) and gives the
//! `executor.memory` / off-heap knobs their effect.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::config::{SparkConf, MIB};
use crate::cost::CostParams;
use crate::physical::Stage;

/// Per-stage memory outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryOutcome {
    /// Execution memory available to one task, bytes.
    pub task_budget_bytes: f64,
    /// Working set one task must hold, bytes.
    pub task_working_set_bytes: f64,
    /// Bytes spilled per task (0 when the working set fits).
    pub spill_bytes_per_task: f64,
}

impl MemoryOutcome {
    /// Whether this stage spills.
    pub fn spills(&self) -> bool {
        self.spill_bytes_per_task > 0.0
    }

    /// Total spill across the stage.
    pub fn total_spill_bytes(&self, tasks: usize) -> f64 {
        self.spill_bytes_per_task * tasks as f64
    }

    /// Whether the working set blows through the OOM hard ceiling, `ceiling ×`
    /// the per-task budget. The ceiling sits *above* the spill threshold
    /// (`ceiling ≥ 1`): mild overflow spills to disk, runaway overflow kills
    /// the executor (see [`crate::fault`]). A non-finite ceiling never kills.
    pub fn oom_kills(&self, ceiling: f64) -> bool {
        ceiling.is_finite() && self.task_working_set_bytes > ceiling * self.task_budget_bytes
    }
}

/// Execution memory available to a single task, in bytes.
///
/// `executor.memory × exec_memory_fraction` is shared by the executor's cores;
/// off-heap (when enabled) adds directly. The pool caps the granted heap.
pub(crate) fn task_memory_budget(
    conf: &SparkConf,
    cluster: &ClusterSpec,
    cost: &CostParams,
) -> f64 {
    let heap_mb = cluster.granted_memory_mb(conf.executor_memory_mb);
    let exec_mb = heap_mb * cost.exec_memory_fraction + conf.effective_offheap_mb();
    exec_mb * MIB / cluster.cores_per_executor as f64
}

/// Evaluate one stage's memory behaviour.
pub fn evaluate_stage(
    stage: &Stage,
    conf: &SparkConf,
    cluster: &ClusterSpec,
    cost: &CostParams,
) -> MemoryOutcome {
    let budget = task_memory_budget(conf, cluster, cost);
    let tasks = stage.tasks.max(1) as f64;
    // A task holds: its slice of hash tables, its slice of sort buffers (approximated
    // by its input share when sorting), and the full broadcast tables (shared per
    // executor, so amortized over the executor's cores).
    let sort_bytes = if stage.sort_rows > 0.0 {
        stage.input_bytes / tasks
    } else {
        0.0
    };
    let working_set = stage.hash_build_bytes / tasks
        + sort_bytes
        + stage.broadcast_bytes / cluster.cores_per_executor as f64;
    let spill = (working_set - budget).max(0.0);
    MemoryOutcome {
        task_budget_bytes: budget,
        task_working_set_bytes: working_set,
        spill_bytes_per_task: spill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::StageKind;

    fn stage(tasks: usize, hash_build: f64, input: f64, sort_rows: f64) -> Stage {
        Stage {
            id: 0,
            kind: StageKind::Shuffle,
            tasks,
            input_bytes: input,
            cpu_rows: 0.0,
            sort_rows,
            hash_build_bytes: hash_build,
            shuffle_write_bytes: 0.0,
            broadcast_bytes: 0.0,
        }
    }

    #[test]
    fn more_partitions_reduce_spill() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let big = 400.0 * 1024.0 * MIB; // 400 GiB of hash state
        let few = evaluate_stage(&stage(10, big, big, 0.0), &conf, &cluster, &cost);
        let many = evaluate_stage(&stage(2000, big, big, 0.0), &conf, &cluster, &cost);
        assert!(few.spills());
        assert!(many.spill_bytes_per_task < few.spill_bytes_per_task);
    }

    #[test]
    fn more_memory_reduces_spill() {
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let s = stage(50, 100.0 * 1024.0 * MIB, 0.0, 0.0);
        let mut small = SparkConf::default();
        small.executor_memory_mb = 2048.0;
        let mut large = SparkConf::default();
        large.executor_memory_mb = 32_768.0;
        let a = evaluate_stage(&s, &small, &cluster, &cost);
        let b = evaluate_stage(&s, &large, &cluster, &cost);
        assert!(b.spill_bytes_per_task < a.spill_bytes_per_task);
    }

    #[test]
    fn offheap_adds_budget_only_when_enabled() {
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let mut conf = SparkConf::default();
        conf.offheap_size_mb = 8192.0;
        let without = task_memory_budget(&conf, &cluster, &cost);
        conf.offheap_enabled = true;
        let with = task_memory_budget(&conf, &cluster, &cost);
        assert!(with > without);
        assert!((with - without - 8192.0 * MIB / 8.0).abs() < 1.0);
    }

    #[test]
    fn no_spill_when_working_set_fits() {
        let conf = SparkConf::default();
        let out = evaluate_stage(
            &stage(200, MIB, 10.0 * MIB, 0.0),
            &conf,
            &ClusterSpec::medium(),
            &CostParams::default(),
        );
        assert!(!out.spills());
        assert_eq!(out.spill_bytes_per_task, 0.0);
    }

    #[test]
    fn sorting_counts_input_share_in_working_set() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let input = 100.0 * 1024.0 * MIB;
        let no_sort = evaluate_stage(&stage(10, 0.0, input, 0.0), &conf, &cluster, &cost);
        let sorting = evaluate_stage(&stage(10, 0.0, input, 1e6), &conf, &cluster, &cost);
        assert!(sorting.task_working_set_bytes > no_sort.task_working_set_bytes);
    }

    #[test]
    fn pool_caps_memory_grant() {
        let cluster = ClusterSpec::small(); // 16 GiB nodes
        let cost = CostParams::default();
        let mut conf = SparkConf::default();
        conf.executor_memory_mb = 1e9; // absurd request
        let budget = task_memory_budget(&conf, &cluster, &cost);
        let expected = cluster.max_executor_memory_mb * cost.exec_memory_fraction * MIB / 4.0;
        assert!((budget - expected).abs() < 1.0);
    }
}
