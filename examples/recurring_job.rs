//! A recurrent production job whose input data size changes every run (the paper's
//! "constantly changing workloads" challenge): a periodic data-size schedule plus a
//! deliberately noisy cluster, tuned online with the guardrail active.
//!
//! ```sh
//! cargo run --release --example recurring_job
//! ```

use rockhopper_repro::prelude::*;

fn main() {
    // A nightly aggregation job over TPC-DS-style data: input volume cycles weekly
    // (the paper's periodic `t mod K` schedule), and one run in ten spikes to 2x.
    let plan = rockhopper_repro::workloads::tpcds::query(5, 5.0);
    let mut env = QueryEnv::new(
        plan,
        NoiseSpec {
            fluctuation: 0.5,
            spike: 1.0,
        },
        DataSchedule::Periodic {
            base: 0.7,
            amplitude: 1.5,
            k: 7,
        },
        2024,
    );
    let space = env.space().clone();

    let mut tuner = RockhopperTuner::builder(space.clone())
        .guardrail(Some(Guardrail::default()))
        .seed(11)
        .build();

    println!("run  data-size  observed-ms  tuned-vs-default");
    for run in 0..45 {
        let ctx = env.context();
        let candidate = tuner.suggest(&ctx);
        let default_ms = env.true_time(&space.default_point());
        let tuned_ms = env.true_time(&candidate);
        let outcome = env.run(&candidate);
        tuner.observe(&candidate, &outcome);
        println!(
            "{run:>3}  {:>9.2}  {:>11.0}  {:>+14.1}%",
            outcome.data_size / 1e6,
            outcome.elapsed_ms,
            100.0 * (tuned_ms - default_ms) / default_ms,
        );
    }
    if tuner.is_disabled() {
        println!("\nguardrail disabled autotuning for this query; defaults reinstated");
    } else {
        println!("\nguardrail kept autotuning enabled through all 45 runs");
    }
}
