//! Production-noise injection — the paper's Equation (8), verbatim:
//!
//! ```text
//! g = g0 · (1 + |ε|)        with probability 1 − SL/10
//! g = g0 · (1 + |ε|) · 2    with probability SL/10        ε ~ N(0, FL)
//! ```
//!
//! *Fluctuation noise* (`FL`) models the random slowdowns every cloud run experiences;
//! *performance spikes* (`SL`) model the ≥2× stragglers that make naive tuners chase
//! ghosts. High noise is `FL = 1, SL = 1`; low noise is `FL = 0.1, SL = 0.1` (§6.1).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Noise parameters `(FL, SL)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Fluctuation level `FL`: standard deviation of the Gaussian slowdown.
    pub fluctuation: f64,
    /// Spike level `SL`: the 2× spike fires with probability `SL / 10`.
    pub spike: f64,
}

impl NoiseSpec {
    /// No noise: observations equal true performance.
    pub fn none() -> NoiseSpec {
        NoiseSpec {
            fluctuation: 0.0,
            spike: 0.0,
        }
    }

    /// The paper's low-noise setting (`FL = 0.1, SL = 0.1`).
    pub fn low() -> NoiseSpec {
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.1,
        }
    }

    /// The paper's high-noise setting (`FL = 1, SL = 1`): 10% of runs spike to ≥2×.
    pub fn high() -> NoiseSpec {
        NoiseSpec {
            fluctuation: 1.0,
            spike: 1.0,
        }
    }

    /// Apply Eq (8) to a true duration `g0`.
    pub fn apply<R: Rng + ?Sized>(&self, g0: f64, rng: &mut R) -> f64 {
        if self.fluctuation == 0.0 && self.spike == 0.0 {
            return g0;
        }
        let eps = standard_normal(rng) * self.fluctuation;
        let slowed = g0 * (1.0 + eps.abs());
        let p: f64 = rng.random_range(0.0..1.0);
        if p > self.spike / 10.0 {
            slowed
        } else {
            slowed * 2.0
        }
    }
}

/// Standard-normal deviate via Box–Muller (duplicated from the `ml` crate so the
/// simulator substrate stays dependency-free of the ML layer).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoiseSpec::none().apply(123.0, &mut rng), 123.0);
    }

    #[test]
    fn noise_only_slows_down() {
        // Eq (8) uses |ε|, so observations never beat the true time.
        let mut rng = StdRng::seed_from_u64(1);
        let spec = NoiseSpec::high();
        for _ in 0..1000 {
            assert!(spec.apply(100.0, &mut rng) >= 100.0);
        }
    }

    #[test]
    fn spike_rate_matches_sl_over_ten() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = NoiseSpec {
            fluctuation: 0.0,
            spike: 1.0,
        };
        let n = 20_000;
        let spikes = (0..n)
            .filter(|_| spec.apply(100.0, &mut rng) >= 200.0)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "spike rate {rate}");
    }

    #[test]
    fn high_noise_has_larger_variance_than_low() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = |spec: NoiseSpec, rng: &mut StdRng| -> f64 {
            let xs: Vec<f64> = (0..5000).map(|_| spec.apply(100.0, rng)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        let lo = sample(NoiseSpec::low(), &mut rng);
        let hi = sample(NoiseSpec::high(), &mut rng);
        assert!(hi > lo * 5.0, "high {hi} vs low {lo}");
    }

    #[test]
    fn fluctuation_mean_matches_half_normal() {
        // E[|ε|] for ε ~ N(0, FL) is FL·√(2/π).
        let mut rng = StdRng::seed_from_u64(4);
        let spec = NoiseSpec {
            fluctuation: 0.5,
            spike: 0.0,
        };
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| spec.apply(1.0, &mut rng)).sum::<f64>() / n as f64;
        let expected = 1.0 + 0.5 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((mean - expected).abs() < 0.01, "mean {mean} vs {expected}");
    }
}
