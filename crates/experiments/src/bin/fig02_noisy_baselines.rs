//! Regenerates the paper's `fig02_noisy_baselines` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig02_noisy_baselines::run(scale).print();
}
