//! Shared AST → CFG lowering for every dataflow analysis.
//!
//! rhlint v3 grew this walker inside `locks.rs`; v4 promotes it to a module
//! of its own because three analyses now consume the same [`FnModel`]s: the
//! lock-discipline pass ([`crate::locks`]), the interval/value-range pass
//! ([`crate::intervals`]), and the untrusted-input taint pass
//! ([`crate::taint`]). [`lower_all`] lowers every non-test function once;
//! `lib.rs` hands the models to each pass.
//!
//! Besides the v3 event alphabet (acquire/release/blocking/panic/call), the
//! lowerer now emits *value-flow* events:
//!
//! * [`Event::Assign`] — `let x = e` / `x = e` / `x += e`, with the RHS
//!   abstracted to a [`VRhs`]. Compound sub-expressions chain through
//!   synthetic `#vN` temporaries so `env::var(..).ok().and_then(..)` keeps
//!   its provenance hop by hop; `#ret` carries the return value (both
//!   `return e` sites and the function's tail expression) for callee
//!   summaries.
//! * [`Event::Assume`] — comparison guards. `if len > MAX { return }`
//!   places `len > MAX` in the then-arm and `len <= MAX` in the else-arm;
//!   `&&` contributes conjunct facts to the then-arm, `||` negated facts to
//!   the else-arm. The `if` lowering always materializes an else block (even
//!   for `if` without `else`) so the negated assumption has a block to live
//!   in; `while` conditions get a dedicated false-edge block so `break`
//!   paths never see the loop's exit assumption.
//! * [`Event::Sink`] — slice indexing, divisors, raw `+ - * <<` arithmetic,
//!   allocations sized by an expression (`with_capacity`, `resize`,
//!   `reserve`, `vec![x; n]`), `conf.set(Knob::…, v)` writes, and call
//!   arguments headed into workspace functions (for parameter-sink
//!   summaries).
//!
//! The value model keeps the same approximation stance as the lock model:
//! pattern bindings (`let (a, b) = …`, `for x in …`, match arms) drop value
//! information, `&x` call arguments havoc `x`, and closures stay opaque.
//! Every loss rounds toward *fewer* findings — the analyses only report on
//! values they can still see.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::cfg::{Cfg, CfgBuilder, CmpOp, Event, Operand, SinkKind, VRhs};
use crate::parser::{Block, Expr, Item, ItemKind, LitKind, Stmt};
use crate::rules;
use crate::symbols::{FnInfo, Target, Workspace};
use crate::Rule;

/// One function lowered for analysis.
pub(crate) struct FnModel {
    pub(crate) cfg: Cfg,
    /// Workspace callees (indexes into [`Workspace::fns`]).
    pub(crate) calls: BTreeSet<usize>,
}

/// Lower every non-test function in the workspace (index-aligned with
/// [`Workspace::fns`]). Constants are resolved once, workspace-wide.
pub(crate) fn lower_all(ws: &Workspace) -> Vec<Option<FnModel>> {
    let consts = const_map(ws);
    ws.fns()
        .iter()
        .map(|fi| {
            if fi.cfg_test {
                None
            } else {
                Some(Lowerer::new(ws, fi, &consts).lower())
            }
        })
        .collect()
}

struct Lowerer<'a> {
    ws: &'a Workspace,
    fi: &'a FnInfo,
    builder: CfgBuilder,
    /// Variable name → declared/inferred type text.
    env: BTreeMap<String, String>,
    /// Workspace-wide `const NAME: _ = <literal arithmetic>` values.
    consts: &'a BTreeMap<String, f64>,
    /// Let-bound guard names per open lexical scope.
    scopes: Vec<Vec<String>>,
    /// `scopes.len()` at each enclosing loop entry (for break/continue).
    loop_scope_marks: Vec<usize>,
    /// Statement-scoped temporary guards awaiting release.
    stmt_tmps: Vec<String>,
    next_tmp: usize,
    /// Synthetic `#vN` value temporaries.
    next_val: usize,
    /// Nesting depth of inlined closure bodies (see [`Lowerer::push`]).
    closure_depth: usize,
    calls: BTreeSet<usize>,
}

impl<'a> Lowerer<'a> {
    fn new(ws: &'a Workspace, fi: &'a FnInfo, consts: &'a BTreeMap<String, f64>) -> Lowerer<'a> {
        let mut env = BTreeMap::new();
        if let Some(ty) = &fi.self_ty {
            env.insert("self".to_string(), ty.clone());
        }
        for (name, ty) in &fi.item.params {
            if !name.is_empty() && !ty.text.is_empty() {
                env.insert(name.clone(), ty.text.clone());
            }
        }
        Lowerer {
            ws,
            fi,
            builder: CfgBuilder::new(),
            env,
            consts,
            scopes: Vec::new(),
            loop_scope_marks: Vec::new(),
            stmt_tmps: Vec::new(),
            next_tmp: 0,
            next_val: 0,
            closure_depth: 0,
            calls: BTreeSet::new(),
        }
    }

    /// Emit an event into the current block. Inside an inlined closure body
    /// only value events survive: the closure may execute on another thread
    /// or later (or never), so attributing its lock, panic, blocking, or
    /// call events to the definition site would corrupt the lock-discipline
    /// analyses — but the values it captures flow from exactly here, which
    /// is what the taint/interval passes need. `#ret` writes are dropped
    /// too: a `return` inside a closure returns from the closure, not the
    /// enclosing function.
    fn push(&mut self, e: Event) {
        if self.closure_depth > 0 {
            match &e {
                Event::Acquire { .. }
                | Event::Release { .. }
                | Event::Blocking { .. }
                | Event::Panic { .. }
                | Event::Call { .. } => return,
                Event::Assign { var, .. } if var == "#ret" => return,
                _ => {}
            }
        }
        self.builder.push(e);
    }

    fn lower(mut self) -> FnModel {
        if let Some(body) = &self.fi.item.body {
            let body = body.clone();
            self.walk_block_tail(&body, true);
        }
        FnModel {
            cfg: self.builder.finish(),
            calls: self.calls,
        }
    }

    fn fresh_tmp(&mut self) -> String {
        self.next_tmp += 1;
        format!("#tmp{}", self.next_tmp)
    }

    fn fresh_val(&mut self) -> String {
        self.next_val += 1;
        format!("#v{}", self.next_val)
    }

    fn walk_block(&mut self, block: &Block) {
        self.walk_block_tail(block, false);
    }

    /// `fn_tail` marks the function's own body block: its trailing non-`;`
    /// expression is the return value and feeds the `#ret` pseudo-variable.
    fn walk_block_tail(&mut self, block: &Block, fn_tail: bool) {
        self.scopes.push(Vec::new());
        let n = block.stmts.len();
        for (i, stmt) in block.stmts.iter().enumerate() {
            self.walk_stmt(stmt);
            if fn_tail && i + 1 == n {
                if let Stmt::Expr { expr, semi: false } = stmt {
                    let op = self.expr_operand(expr);
                    self.push(Event::Assign {
                        var: "#ret".to_string(),
                        rhs: VRhs::Operand(op),
                        line: expr.line() as usize,
                    });
                }
            }
        }
        let ended = self.scopes.pop().unwrap_or_default();
        for guard in ended.into_iter().rev() {
            self.push(Event::Release { guard });
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        let mark = self.stmt_tmps.len();
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                underscore,
                line,
            } => {
                if let Some(e) = init {
                    let acquired = self.walk_expr(e);
                    match (acquired, name) {
                        (Some(lock), Some(n)) => {
                            // `let g = m.lock()` — guard lives to scope end.
                            self.push(Event::Acquire {
                                guard: n.clone(),
                                lock,
                                line: *line as usize,
                            });
                            if let Some(scope) = self.scopes.last_mut() {
                                scope.push(n.clone());
                            }
                            self.env.insert(n.clone(), "Guard".to_string());
                        }
                        (Some(lock), None) => {
                            // `let _ = m.lock()` — acquired and dropped at once.
                            let tmp = self.fresh_tmp();
                            self.push(Event::Acquire {
                                guard: tmp.clone(),
                                lock,
                                line: *line as usize,
                            });
                            self.push(Event::Release { guard: tmp });
                            let _ = underscore;
                        }
                        (None, Some(n)) => {
                            let text = ty
                                .as_ref()
                                .map(|t| t.text.clone())
                                .filter(|t| !t.is_empty())
                                .or_else(|| self.infer_text(e));
                            if let Some(t) = text {
                                self.env.insert(n.clone(), t);
                            }
                            let op = self.expr_operand(e);
                            self.push(Event::Assign {
                                var: n.clone(),
                                rhs: VRhs::Operand(op),
                                line: *line as usize,
                            });
                        }
                        (None, None) => {}
                    }
                } else if let (Some(n), Some(t)) = (name, ty) {
                    if !t.text.is_empty() {
                        self.env.insert(n.clone(), t.text.clone());
                    }
                }
            }
            Stmt::Expr { expr, .. } => {
                self.walk_value(expr);
            }
            Stmt::Item(_) => {}
        }
        // Temporaries acquired during this statement die with it.
        for guard in self.stmt_tmps.split_off(mark) {
            self.push(Event::Release { guard });
        }
    }

    /// Walk an expression in value position: if it evaluates to a fresh
    /// guard, the guard becomes a statement-scoped temporary.
    fn walk_value(&mut self, e: &Expr) {
        if let Some(lock) = self.walk_expr(e) {
            let tmp = self.fresh_tmp();
            self.push(Event::Acquire {
                guard: tmp.clone(),
                lock,
                line: e.line() as usize,
            });
            self.stmt_tmps.push(tmp);
        }
    }

    /// Walk an expression, emitting events in evaluation order. Returns
    /// `Some(lock id)` when the expression's value is a freshly acquired
    /// guard (the caller decides the guard's lifetime).
    fn walk_expr(&mut self, e: &Expr) -> Option<String> {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let line = *line as usize;
                // `unwrap`-family adapters are transparent to guard-ness:
                // `m.lock().unwrap()` still yields the guard.
                if matches!(
                    method.as_str(),
                    "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
                ) {
                    let inner = self.walk_expr(recv);
                    for a in args {
                        self.walk_value(a);
                    }
                    if matches!(method.as_str(), "unwrap" | "expect") {
                        self.push_panic(format!(".{method}()"), line);
                    }
                    return inner;
                }

                self.walk_value(recv);
                for a in args {
                    self.walk_value(a);
                }
                self.havoc_ref_args(args);

                // Guard acquisition.
                if method == "lock" && args.is_empty() {
                    return Some(self.lock_key(recv));
                }
                if matches!(method.as_str(), "read" | "write") && args.is_empty() {
                    let rw = self
                        .infer_text(recv)
                        .map(|t| t.contains("RwLock"))
                        .unwrap_or(false);
                    if rw {
                        return Some(self.lock_key(recv));
                    }
                }

                // Blocking primitives.
                if let Some(what) = blocking_method(method, args.len()) {
                    self.push(Event::Blocking { what, line });
                    return None;
                }

                // Value sinks reached through methods.
                match method.as_str() {
                    "resize" | "resize_with" if args.len() == 2 => {
                        let op = self.expr_operand(&args[0]);
                        self.sink(SinkKind::Alloc(format!(".{method}(n, _)")), vec![op], line);
                    }
                    "reserve" | "reserve_exact" if args.len() == 1 => {
                        let op = self.expr_operand(&args[0]);
                        self.sink(SinkKind::Alloc(format!(".{method}(n)")), vec![op], line);
                    }
                    "div_euclid" | "rem_euclid" if args.len() == 1 => {
                        let op = self.expr_operand(&args[0]);
                        self.sink(SinkKind::Div, vec![op], line);
                    }
                    "set" if args.len() == 2 => {
                        if let Some(knob) = knob_of(&args[0]) {
                            let op = self.expr_operand(&args[1]);
                            self.sink(SinkKind::KnobSet { knob }, vec![op], line);
                        }
                    }
                    _ => {}
                }

                self.link_method(recv, method, args, line);
                None
            }
            Expr::Call { callee, args, line } => {
                let line = *line as usize;
                if let Expr::Path { segs, .. } = &**callee {
                    // `drop(g)` / `std::mem::drop(g)` kills the guard.
                    if segs.last().map(String::as_str) == Some("drop") && args.len() == 1 {
                        if let Expr::Path { segs: v, .. } = &args[0] {
                            if v.len() == 1 {
                                self.push(Event::Release {
                                    guard: v[0].clone(),
                                });
                                return None;
                            }
                        }
                    }
                    for a in args {
                        self.walk_value(a);
                    }
                    self.havoc_ref_args(args);
                    if let Some(what) = blocking_path(segs) {
                        self.push(Event::Blocking { what, line });
                        return None;
                    }
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    let penult = penult_of(segs);
                    if last == "with_capacity" && !args.is_empty() {
                        let op = self.expr_operand(&args[0]);
                        self.sink(
                            SinkKind::Alloc(format!("{penult}::with_capacity")),
                            vec![op],
                            line,
                        );
                    }
                    let resolved = self.resolve_call(segs);
                    if let Some(idxs) = resolved {
                        let mut guard_ret = false;
                        for &i in &idxs {
                            self.calls.insert(i);
                            self.push(Event::Call { callee: i, line });
                            if returns_guard(&self.ws.fns()[i]) {
                                guard_ret = true;
                            }
                        }
                        self.call_arg_sinks(&idxs, args, line);
                        if guard_ret {
                            let name = segs.last().cloned().unwrap_or_default();
                            return Some(format!("fn:{name}()"));
                        }
                    }
                } else {
                    self.walk_value(callee);
                    for a in args {
                        self.walk_value(a);
                    }
                }
                None
            }
            Expr::MacroCall { path, args, line } => {
                for a in args {
                    self.walk_value(a);
                }
                let last = path.last().map(String::as_str).unwrap_or("");
                if matches!(
                    last,
                    "panic"
                        | "todo"
                        | "unimplemented"
                        | "unreachable"
                        | "assert"
                        | "assert_eq"
                        | "assert_ne"
                ) {
                    self.push_panic(format!("{last}!"), *line as usize);
                }
                // `vec![elem; n]` — the parser splits macro arguments on both
                // `,` and `;`, so a two-argument `vec!` is the repeat form iff
                // the raw source line actually contains the `;`.
                if last == "vec" && args.len() == 2 && self.line_has_repeat_semi(*line as usize) {
                    let op = self.expr_operand(&args[1]);
                    self.sink(
                        SinkKind::Alloc("vec![_; n]".to_string()),
                        vec![op],
                        *line as usize,
                    );
                }
                None
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.walk_value(cond);
                let (then_as, else_as) = self.cond_assumes(cond);
                let decision = self.builder.current();
                let then_b = self.builder.new_block();
                self.builder.edge(decision, then_b);
                self.builder.set_current(then_b);
                for ev in then_as {
                    self.push(ev);
                }
                self.walk_block(then);
                let then_end = self.builder.current();
                let join = self.builder.new_block();
                self.builder.edge(then_end, join);
                // Always materialize the else block: the negated condition
                // holds there even when the source has no `else`.
                let else_b = self.builder.new_block();
                self.builder.edge(decision, else_b);
                self.builder.set_current(else_b);
                for ev in else_as {
                    self.push(ev);
                }
                if let Some(other) = else_ {
                    self.walk_value(other);
                }
                let else_end = self.builder.current();
                self.builder.edge(else_end, join);
                self.builder.set_current(join);
                None
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk_value(scrutinee);
                let decision = self.builder.current();
                let join = self.builder.new_block();
                if arms.is_empty() {
                    self.builder.edge(decision, join);
                }
                for arm in arms {
                    let arm_b = self.builder.new_block();
                    self.builder.edge(decision, arm_b);
                    self.builder.set_current(arm_b);
                    if let Some(g) = &arm.guard {
                        self.walk_value(g);
                    }
                    self.walk_value(&arm.body);
                    let arm_end = self.builder.current();
                    self.builder.edge(arm_end, join);
                }
                self.builder.set_current(join);
                None
            }
            Expr::Loop { body, .. } => {
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                let after = self.builder.new_block();
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(head);
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(after);
                None
            }
            Expr::While { cond, body, .. } => {
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                self.builder.set_current(head);
                self.walk_value(cond);
                let (then_as, else_as) = self.cond_assumes(cond);
                let test_end = self.builder.current();
                let body_b = self.builder.new_block();
                let after = self.builder.new_block();
                // The exit assumption lives on a dedicated false-edge block:
                // `break` jumps straight to `after` and must not inherit it.
                let false_b = self.builder.new_block();
                self.builder.edge(test_end, body_b);
                self.builder.edge(test_end, false_b);
                self.builder.edge(false_b, after);
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(body_b);
                for ev in then_as {
                    self.push(ev);
                }
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(false_b);
                for ev in else_as {
                    self.push(ev);
                }
                self.builder.set_current(after);
                None
            }
            Expr::For { iter, body, .. } => {
                self.walk_value(iter);
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                let body_b = self.builder.new_block();
                let after = self.builder.new_block();
                self.builder.edge(head, body_b);
                self.builder.edge(head, after);
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(body_b);
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(after);
                None
            }
            Expr::Return { expr, line } => {
                if let Some(e2) = expr {
                    self.walk_value(e2);
                    let op = self.expr_operand(e2);
                    self.push(Event::Assign {
                        var: "#ret".to_string(),
                        rhs: VRhs::Operand(op),
                        line: *line as usize,
                    });
                }
                self.builder.diverge_to_exit();
                None
            }
            Expr::Break { .. } => {
                self.release_loop_scopes();
                match self.builder.innermost_loop() {
                    Some((_, after)) => self.builder.diverge_to(after),
                    None => self.builder.diverge_to_exit(),
                }
                None
            }
            Expr::Continue { .. } => {
                self.release_loop_scopes();
                match self.builder.innermost_loop() {
                    Some((head, _)) => self.builder.diverge_to(head),
                    None => self.builder.diverge_to_exit(),
                }
                None
            }
            Expr::Try { expr, .. } => {
                let inner = self.walk_expr(expr);
                // `?` may exit early; model the error edge to the exit.
                let cur = self.builder.current();
                self.builder.edge(cur, self.builder.exit());
                inner
            }
            Expr::Block { block, .. } => {
                self.walk_block(block);
                None
            }
            // Closure bodies run elsewhere (or lazily): inline them as a
            // may-run branch so captured-value flow is visible to the taint
            // and interval passes, with lock/panic/call events filtered out
            // by [`Lowerer::push`].
            Expr::Closure { body, .. } => {
                let before = self.builder.current();
                let run = self.builder.new_block();
                self.builder.edge(before, run);
                self.builder.set_current(run);
                self.closure_depth += 1;
                self.walk_value(body);
                self.closure_depth -= 1;
                let after = self.builder.new_block();
                self.builder.edge(self.builder.current(), after);
                self.builder.edge(before, after);
                self.builder.set_current(after);
                None
            }
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
                self.walk_expr(expr)
            }
            Expr::Field { base, .. } => {
                self.walk_value(base);
                None
            }
            Expr::Index {
                base, index, line, ..
            } => {
                self.walk_value(base);
                self.walk_value(index);
                let args = match &**index {
                    Expr::Range { lo, hi, .. } => {
                        let mut ops = Vec::new();
                        if let Some(l) = lo {
                            ops.push(self.expr_operand(l));
                        }
                        if let Some(h) = hi {
                            ops.push(self.expr_operand(h));
                        }
                        ops
                    }
                    other => vec![self.expr_operand(other)],
                };
                if !args.is_empty() {
                    self.sink(SinkKind::Index, args, *line as usize);
                }
                None
            }
            Expr::Binary { op, lhs, rhs, line } => {
                self.walk_value(lhs);
                self.walk_value(rhs);
                let line = *line as usize;
                match op.as_str() {
                    "/" | "%" => {
                        let rop = self.expr_operand(rhs);
                        self.sink(SinkKind::Div, vec![rop], line);
                    }
                    "+" | "-" | "*" | "<<" => {
                        let lop = self.expr_operand(lhs);
                        let rop = self.expr_operand(rhs);
                        self.sink(SinkKind::Arith(op.clone()), vec![lop, rop], line);
                    }
                    "=" => {
                        if let Some(v) = simple_var(lhs) {
                            let rop = self.expr_operand(rhs);
                            self.push(Event::Assign {
                                var: v,
                                rhs: VRhs::Operand(rop),
                                line,
                            });
                        }
                    }
                    "+=" | "-=" | "*=" | "<<=" | "/=" | "%=" => {
                        let base = op.trim_end_matches('=').to_string();
                        let rop = self.expr_operand(rhs);
                        if base == "/" || base == "%" {
                            self.sink(SinkKind::Div, vec![rop.clone()], line);
                        } else if let Some(v) = simple_var(lhs) {
                            self.sink(
                                SinkKind::Arith(base.clone()),
                                vec![Operand::Var(v), rop.clone()],
                                line,
                            );
                        }
                        if let Some(v) = simple_var(lhs) {
                            self.push(Event::Assign {
                                var: v.clone(),
                                rhs: VRhs::Binary {
                                    op: base,
                                    lhs: Operand::Var(v),
                                    rhs: rop,
                                },
                                line,
                            });
                        }
                    }
                    _ => {}
                }
                None
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_value(v);
                }
                None
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for v in elems {
                    self.walk_value(v);
                }
                None
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    self.walk_value(l);
                }
                if let Some(h) = hi {
                    self.walk_value(h);
                }
                None
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => None,
        }
    }

    fn sink(&mut self, kind: SinkKind, args: Vec<Operand>, line: usize) {
        self.push(Event::Sink { kind, args, line });
    }

    /// `&x` passed to a call may be `&mut x` under the hood (the parser does
    /// not keep the distinction): forget everything known about `x`. Losing
    /// information here rounds toward silence for both analyses.
    fn havoc_ref_args(&mut self, args: &[Expr]) {
        for a in args {
            if let Expr::Ref { expr, line } = a {
                if let Some(v) = simple_var(expr) {
                    self.push(Event::Assign {
                        var: v,
                        rhs: VRhs::Opaque,
                        line: *line as usize,
                    });
                }
            }
        }
    }

    /// Parameter-sink plumbing: each simple argument of a resolved workspace
    /// call is recorded so the taint pass can match it against the callee's
    /// parameter-sink summary.
    fn call_arg_sinks(&mut self, idxs: &[usize], args: &[Expr], line: usize) {
        for (j, a) in args.iter().enumerate() {
            let op = self.expr_operand(a);
            if !matches!(op, Operand::Var(_)) {
                continue;
            }
            for &i in idxs {
                self.sink(
                    SinkKind::CallArg {
                        callee: i,
                        index: j,
                    },
                    vec![op.clone()],
                    line,
                );
            }
        }
    }

    /// Does the raw source line of a two-argument `vec!` contain the `;` of
    /// the repeat form? Distinguishes `vec![elem; n]` from `vec![a, b]`.
    fn line_has_repeat_semi(&self, line: usize) -> bool {
        let raw = &self.ws.files()[self.fi.file].masked.raw_lines;
        raw.get(line.saturating_sub(1))
            .map(|l| {
                l.find("vec!")
                    .map(|pos| l[pos..].contains(';'))
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    }

    /// Branch-refined comparison facts of a condition: `(then-arm facts,
    /// else-arm facts)`. Both sides of a comparison contribute when they are
    /// tracked variables; `&&` strengthens only the then-arm, `||` only the
    /// else-arm, `!` swaps.
    fn cond_assumes(&mut self, e: &Expr) -> (Vec<Event>, Vec<Event>) {
        match e {
            Expr::Binary { op, lhs, rhs, .. } => match op.as_str() {
                "&&" => {
                    let (mut a_then, _) = self.cond_assumes(lhs);
                    let (b_then, _) = self.cond_assumes(rhs);
                    a_then.extend(b_then);
                    (a_then, Vec::new())
                }
                "||" => {
                    let (_, mut a_else) = self.cond_assumes(lhs);
                    let (b_else, _) = (self.cond_assumes(rhs).1, ());
                    let mut a = a_else.split_off(0);
                    a.extend(b_else);
                    (Vec::new(), a)
                }
                "<" | "<=" | ">" | ">=" | "==" | "!=" => {
                    let cmp = match op.as_str() {
                        "<" => CmpOp::Lt,
                        "<=" => CmpOp::Le,
                        ">" => CmpOp::Gt,
                        ">=" => CmpOp::Ge,
                        "==" => CmpOp::Eq,
                        _ => CmpOp::Ne,
                    };
                    let lop = self.expr_operand(lhs);
                    let rop = self.expr_operand(rhs);
                    let mut then_e = Vec::new();
                    let mut else_e = Vec::new();
                    if let Operand::Var(v) = &lop {
                        then_e.push(Event::Assume {
                            var: v.clone(),
                            op: cmp,
                            bound: rop.clone(),
                        });
                        else_e.push(Event::Assume {
                            var: v.clone(),
                            op: cmp.negate(),
                            bound: rop.clone(),
                        });
                    }
                    if let Operand::Var(v) = &rop {
                        then_e.push(Event::Assume {
                            var: v.clone(),
                            op: cmp.flip(),
                            bound: lop.clone(),
                        });
                        else_e.push(Event::Assume {
                            var: v.clone(),
                            op: cmp.flip().negate(),
                            bound: lop,
                        });
                    }
                    (then_e, else_e)
                }
                _ => (Vec::new(), Vec::new()),
            },
            Expr::Unary { op: '!', expr, .. } => {
                let (t, f) = self.cond_assumes(expr);
                (f, t)
            }
            _ => (Vec::new(), Vec::new()),
        }
    }

    /// Abstract an expression to an [`Operand`], materializing compound
    /// sub-expressions as `#vN` temporaries so their [`VRhs`] structure
    /// survives into the event stream.
    fn expr_operand(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Lit { kind, text, .. } if matches!(kind, LitKind::Int | LitKind::Float) => {
                parse_num(text)
                    .map(Operand::num)
                    .unwrap_or(Operand::Unknown)
            }
            Expr::Lit { .. } => Operand::Unknown,
            Expr::Path { segs, .. } if segs.len() == 1 => match self.consts.get(&segs[0]) {
                Some(v) => Operand::num(*v),
                None => Operand::Var(segs[0].clone()),
            },
            Expr::Path { segs, .. } => self
                .const_of_path(segs)
                .map(Operand::num)
                .unwrap_or(Operand::Unknown),
            Expr::Cast { expr, .. } | Expr::Try { expr, .. } | Expr::Ref { expr, .. } => {
                self.expr_operand(expr)
            }
            Expr::Unary { op: '-', expr, .. } => match self.expr_operand(expr) {
                Operand::Const(bits) => Operand::num(-f64::from_bits(bits)),
                _ => Operand::Unknown,
            },
            Expr::Unary { op: '*', expr, .. } => self.expr_operand(expr),
            Expr::Unary { .. } => Operand::Unknown,
            _ => {
                let rhs = self.rvalue_of(e);
                match rhs {
                    VRhs::Opaque => Operand::Unknown,
                    VRhs::Operand(op) => op,
                    other => {
                        let v = self.fresh_val();
                        self.push(Event::Assign {
                            var: v.clone(),
                            rhs: other,
                            line: e.line() as usize,
                        });
                        Operand::Var(v)
                    }
                }
            }
        }
    }

    /// Abstract the right-hand side of an assignment.
    fn rvalue_of(&mut self, e: &Expr) -> VRhs {
        match e {
            Expr::Lit { .. }
            | Expr::Path { .. }
            | Expr::Cast { .. }
            | Expr::Try { .. }
            | Expr::Ref { .. }
            | Expr::Unary { .. } => VRhs::Operand(self.expr_operand(e)),
            Expr::Binary { op, lhs, rhs, .. } => match op.as_str() {
                "+" | "-" | "*" | "/" | "%" | "<<" | ">>" | "&" | "|" | "^" => {
                    let lop = self.expr_operand(lhs);
                    let rop = self.expr_operand(rhs);
                    if let (Some(a), Some(b)) = (lop.value(), rop.value()) {
                        if let Some(v) = fold_binary(op, a, b) {
                            return VRhs::Operand(Operand::num(v));
                        }
                    }
                    VRhs::Binary {
                        op: op.clone(),
                        lhs: lop,
                        rhs: rop,
                    }
                }
                _ => VRhs::Opaque,
            },
            Expr::MethodCall {
                recv, method, args, ..
            } => {
                let recv_op = self.expr_operand(recv);
                match method.as_str() {
                    "clamp" if args.len() == 2 => VRhs::Clamp {
                        arg: recv_op,
                        lo: self.expr_operand(&args[0]),
                        hi: self.expr_operand(&args[1]),
                    },
                    "min" if args.len() == 1 => VRhs::Min {
                        lhs: recv_op,
                        rhs: self.expr_operand(&args[0]),
                    },
                    "max" if args.len() == 1 => VRhs::Max {
                        lhs: recv_op,
                        rhs: self.expr_operand(&args[0]),
                    },
                    "len" if args.is_empty() => VRhs::Len { of: recv_op },
                    m if m.starts_with("saturating_")
                        || m.starts_with("checked_")
                        || m.starts_with("wrapping_")
                        || m.starts_with("overflowing_") =>
                    {
                        let mut ops = vec![recv_op];
                        for a in args {
                            ops.push(self.expr_operand(a));
                        }
                        VRhs::GuardedArith { args: ops }
                    }
                    // Value-preserving adapters: the result *is* (one of)
                    // the operands.
                    "unwrap" | "expect" | "ok" | "cloned" | "copied" | "clone" | "borrow"
                    | "as_ref" | "as_mut" | "by_ref" | "into" | "to_owned" => VRhs::Adapter {
                        args: vec![recv_op],
                        values: true,
                    },
                    "unwrap_or" if args.len() == 1 => VRhs::Adapter {
                        args: vec![recv_op, self.expr_operand(&args[0])],
                        values: true,
                    },
                    "unwrap_or_else" | "unwrap_or_default" => VRhs::Adapter {
                        args: vec![recv_op],
                        values: true,
                    },
                    // Everything else: taint flows from the receiver, the
                    // numeric value does not (`parse`, `trim`, iterators…).
                    _ => VRhs::Adapter {
                        args: vec![recv_op],
                        values: false,
                    },
                }
            }
            Expr::Call { callee, args, .. } => {
                let Expr::Path { segs, .. } = &**callee else {
                    return VRhs::Opaque;
                };
                let last = segs.last().map(String::as_str).unwrap_or("");
                let penult = penult_of(segs);
                if let Some((what, int, range)) = self.source_of(last, penult) {
                    return VRhs::Source { what, int, range };
                }
                if last == "try_from" && args.len() == 1 {
                    let range = int_type_range(penult).map(|(lo, hi)| (lo.to_bits(), hi.to_bits()));
                    return VRhs::TryFrom {
                        arg: self.expr_operand(&args[0]),
                        range,
                    };
                }
                if (last == "min" || last == "max") && penult == "cmp" && args.len() == 2 {
                    let lhs = self.expr_operand(&args[0]);
                    let rhs = self.expr_operand(&args[1]);
                    return if last == "min" {
                        VRhs::Min { lhs, rhs }
                    } else {
                        VRhs::Max { lhs, rhs }
                    };
                }
                if matches!(last, "Ok" | "Some" | "Err")
                    || (last == "new" && matches!(penult, "Box" | "Arc" | "Rc"))
                {
                    let ops = args.iter().map(|a| self.expr_operand(a)).collect();
                    return VRhs::Adapter {
                        args: ops,
                        values: true,
                    };
                }
                if let Some(idxs) = self.resolve_call(segs) {
                    if let Some(&i) = idxs.first() {
                        return VRhs::Call { callee: i };
                    }
                }
                // External call: taint may flow through from the arguments
                // (`usize::from_str_radix(s, 10)`), values do not.
                let ops = args.iter().map(|a| self.expr_operand(a)).collect();
                VRhs::Adapter {
                    args: ops,
                    values: false,
                }
            }
            // Reading out of a tainted buffer yields tainted data.
            Expr::Index { base, .. } | Expr::Field { base, .. } => {
                let op = self.expr_operand(base);
                VRhs::Adapter {
                    args: vec![op],
                    values: false,
                }
            }
            _ => VRhs::Opaque,
        }
    }

    /// Taint sources: wire-decoded integers in the serving crate, env vars
    /// anywhere, file reads in the ETL crate.
    fn source_of(
        &self,
        last: &str,
        penult: &str,
    ) -> Option<(&'static str, bool, Option<(u64, u64)>)> {
        if matches!(last, "from_le_bytes" | "from_be_bytes" | "from_ne_bytes")
            && self.fi.krate == "rockserve"
        {
            let range = int_type_range(penult).map(|(lo, hi)| (lo.to_bits(), hi.to_bits()));
            return Some(("wire bytes", true, range));
        }
        if last == "var" && penult == "env" {
            return Some(("env var", false, None));
        }
        if matches!(last, "read" | "read_to_string")
            && penult == "fs"
            && self.fi.krate == "pipeline"
        {
            return Some(("file read", false, None));
        }
        None
    }

    /// Workspace or std associated constants reached by a multi-segment path
    /// (`u32::MAX`, `proto::MAX_PAYLOAD_BYTES`).
    fn const_of_path(&self, segs: &[String]) -> Option<f64> {
        let last = segs.last()?;
        let penult = penult_of(segs);
        if let Some((lo, hi)) = int_type_range(penult) {
            match last.as_str() {
                "MAX" => return Some(hi),
                "MIN" => return Some(lo),
                _ => {}
            }
        }
        self.consts.get(last.as_str()).copied()
    }

    /// A panic event — unless a justified panic-family `rhlint:allow` on the
    /// site vouches that it cannot fire.
    fn push_panic(&mut self, what: String, line: usize) {
        let masked = &self.ws.files()[self.fi.file].masked;
        let allowed = rules::allowed_rules_at(masked, line);
        let vouched = allowed.iter().any(|r| {
            matches!(
                r,
                Rule::Unwrap | Rule::Expect | Rule::Panic | Rule::PanicUnderLock
            )
        });
        if !vouched {
            self.push(Event::Panic { what, line });
        }
    }

    /// On `break`/`continue`, guards scoped inside the loop die before the
    /// jump (their scopes unwind), even though the scopes stay open for the
    /// fallthrough path.
    fn release_loop_scopes(&mut self) {
        let depth = self.loop_scope_marks.last().copied().unwrap_or(0);
        let guards: Vec<String> = self.scopes.iter().skip(depth).flatten().cloned().collect();
        for guard in guards.into_iter().rev() {
            self.push(Event::Release { guard });
        }
    }

    /// Stable identity for the lock behind a `.lock()`/`.read()`/`.write()`
    /// receiver: `Type.field` when the receiver is a field access,
    /// `krate::var` for locals/statics.
    fn lock_key(&self, recv: &Expr) -> String {
        match recv {
            Expr::Field { base, name, .. } => {
                let base_head = self
                    .infer_text(base)
                    .and_then(|t| peel_head(&t))
                    .unwrap_or_else(|| "?".to_string());
                format!("{base_head}.{name}")
            }
            Expr::Path { segs, .. } if segs.len() == 1 => {
                format!("{}::{}", self.fi.krate, segs[0])
            }
            Expr::Path { segs, .. } => segs.join("::"),
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } => self.lock_key(expr),
            _ => format!("{}::<anon>", self.fi.krate),
        }
    }

    /// Best-effort type TEXT of an expression (full generics preserved, so
    /// `Mutex<...>` / `RwLock<...>` / `JoinHandle<...>` checks see through
    /// wrappers like `Arc<...>` via [`peel_head`] at lookup sites).
    fn infer_text(&self, e: &Expr) -> Option<String> {
        infer_type_text(self.ws, &self.env, e)
    }

    fn resolve_call(&self, segs: &[String]) -> Option<Vec<usize>> {
        let mut segs = segs.to_vec();
        if segs.first().map(String::as_str) == Some("Self") {
            if let Some(ty) = &self.fi.self_ty {
                segs[0] = ty.clone();
            }
        }
        match self.ws.resolve(&self.fi.krate, &self.fi.module, &segs) {
            Target::Fns(idxs) => Some(idxs),
            _ => None,
        }
    }

    fn link_method(&mut self, recv: &Expr, method: &str, args: &[Expr], line: usize) {
        let ty = self.infer_text(recv).and_then(|t| peel_head(&t));
        if let Some(t) = ty {
            let idxs = self.ws.methods_of(&t, method);
            if !idxs.is_empty() {
                for i in &idxs {
                    self.calls.insert(*i);
                    self.push(Event::Call { callee: *i, line });
                }
                self.call_arg_sinks(&idxs, args, line);
                return;
            }
        }
        // Unknown receiver: link only when the name is unique workspace-wide
        // (the call graph's under-approximation stance).
        let named = self.ws.methods_named(method);
        if named.len() == 1 {
            let i = named[0];
            self.calls.insert(i);
            self.push(Event::Call { callee: i, line });
            self.call_arg_sinks(&[i], args, line);
        }
    }
}

/// The single-identifier variable behind an lvalue/ref expression, if any.
fn simple_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Unary { op: '*', expr, .. } => simple_var(expr),
        _ => None,
    }
}

fn penult_of(segs: &[String]) -> &str {
    segs.len()
        .checked_sub(2)
        .map(|i| segs[i].as_str())
        .unwrap_or("")
}

/// `Knob::MaxPartitionBytes`-shaped first argument of a `set` call.
fn knob_of(e: &Expr) -> Option<String> {
    if let Expr::Path { segs, .. } = e {
        if penult_of(segs) == "Knob" {
            return segs.last().cloned();
        }
    }
    None
}

/// Value range of a primitive integer type, as `f64` endpoints. Wide types
/// lose ULPs at the top end — irrelevant for a lint that compares against
/// bounds orders of magnitude smaller.
pub(crate) fn int_type_range(name: &str) -> Option<(f64, f64)> {
    Some(match name {
        "u8" => (0.0, u8::MAX as f64),
        "u16" => (0.0, u16::MAX as f64),
        "u32" => (0.0, u32::MAX as f64),
        "u64" | "usize" | "u128" => (0.0, u64::MAX as f64),
        "i8" => (i8::MIN as f64, i8::MAX as f64),
        "i16" => (i16::MIN as f64, i16::MAX as f64),
        "i32" => (i32::MIN as f64, i32::MAX as f64),
        "i64" | "isize" | "i128" => (i64::MIN as f64, i64::MAX as f64),
        _ => return None,
    })
}

/// Parse an integer/float literal token (underscores, `0x`/`0o`/`0b`
/// prefixes, and type suffixes tolerated).
pub(crate) fn parse_num(text: &str) -> Option<f64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    for (prefix, radix) in [("0x", 16u32), ("0o", 8), ("0b", 2)] {
        if let Some(rest) = t.strip_prefix(prefix) {
            let digits: String = rest.chars().take_while(|c| c.is_digit(radix)).collect();
            return u128::from_str_radix(&digits, radix).ok().map(|v| v as f64);
        }
    }
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    for suffix in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if let Some(head) = t.strip_suffix(suffix) {
            return head.parse::<f64>().ok();
        }
    }
    None
}

/// Fold constant binary arithmetic. Shift counts are exact small integers in
/// this workspace (`1 << 20`), so `f64` powers are precise.
pub(crate) fn fold_binary(op: &str, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        "+" => a + b,
        "-" => a - b,
        "*" => a * b,
        "/" => {
            if b == 0.0 {
                return None;
            }
            a / b
        }
        "%" => {
            if b == 0.0 {
                return None;
            }
            a % b
        }
        "<<" => {
            if !(0.0..=63.0).contains(&b) || b.fract() != 0.0 {
                return None;
            }
            a * 2f64.powi(b as i32)
        }
        ">>" => {
            if !(0.0..=63.0).contains(&b) || b.fract() != 0.0 {
                return None;
            }
            (a / 2f64.powi(b as i32)).trunc()
        }
        _ => return None,
    })
}

/// Evaluate a constant initializer expression against already-known consts.
pub(crate) fn const_eval(e: &Expr, consts: &BTreeMap<String, f64>) -> Option<f64> {
    match e {
        Expr::Lit { kind, text, .. } if matches!(kind, LitKind::Int | LitKind::Float) => {
            parse_num(text)
        }
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            if let Some((lo, hi)) = int_type_range(penult_of(segs)) {
                match last.as_str() {
                    "MAX" => return Some(hi),
                    "MIN" => return Some(lo),
                    _ => {}
                }
            }
            consts.get(last.as_str()).copied()
        }
        Expr::Unary { op: '-', expr, .. } => const_eval(expr, consts).map(|v| -v),
        Expr::Cast { expr, .. } => const_eval(expr, consts),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_eval(lhs, consts)?;
            let b = const_eval(rhs, consts)?;
            fold_binary(op, a, b)
        }
        _ => None,
    }
}

/// Workspace-wide `const`/`static` numeric values by bare name. A name bound
/// to two different values anywhere in the workspace is dropped (poisoned)
/// rather than guessed at.
pub(crate) fn const_map(ws: &Workspace) -> BTreeMap<String, f64> {
    let mut inits: Vec<(String, Expr)> = Vec::new();
    for file in ws.files() {
        collect_const_inits(&file.ast.items, &mut inits);
    }
    let mut consts: BTreeMap<String, f64> = BTreeMap::new();
    let mut poisoned: BTreeSet<String> = BTreeSet::new();
    // Constants may reference each other (`MAX_PAYLOAD = MIB`); a few rounds
    // resolve any realistic chain.
    for _ in 0..3 {
        for (name, init) in &inits {
            if poisoned.contains(name) {
                continue;
            }
            if let Some(v) = const_eval(init, &consts) {
                if let Some(prev) = consts.get(name) {
                    if *prev != v {
                        poisoned.insert(name.clone());
                        consts.remove(name);
                    }
                } else {
                    consts.insert(name.clone(), v);
                }
            }
        }
    }
    consts
}

fn collect_const_inits(items: &[Item], out: &mut Vec<(String, Expr)>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Const {
                init: Some(init), ..
            }
            | ItemKind::Static {
                init: Some(init), ..
            } => {
                out.push((item.name.clone(), init.clone()));
            }
            ItemKind::Mod {
                inline: Some(items),
            } => collect_const_inits(items, out),
            ItemKind::Impl(imp) => collect_const_inits(&imp.items, out),
            ItemKind::Trait { items } => collect_const_inits(items, out),
            _ => {}
        }
    }
}

/// Best-effort type text of `e` given `env` (name → type text). Field types
/// come from the workspace symbol table; `Arc`/`Box`/`&` wrappers are peeled
/// at each hop.
pub(crate) fn infer_type_text(
    ws: &Workspace,
    env: &BTreeMap<String, String>,
    e: &Expr,
) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => env.get(&segs[0]).cloned(),
        Expr::Field { base, name, .. } => {
            let base_text = infer_type_text(ws, env, base)?;
            let head = peel_head(&base_text)?;
            ws.field_type(&head, name).map(|t| t.text.clone())
        }
        Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
            infer_type_text(ws, env, expr)
        }
        Expr::MethodCall { recv, method, .. }
            if matches!(method.as_str(), "clone" | "as_ref" | "as_mut" | "borrow") =>
        {
            infer_type_text(ws, env, recv)
        }
        Expr::Cast { ty, .. } => Some(ty.text.clone()),
        _ => None,
    }
}

/// Head identifier of a type text after stripping references, `mut`, and
/// transparent wrappers (`Arc<T>` → `T`'s head, etc.).
pub(crate) fn peel_head(text: &str) -> Option<String> {
    let mut t = text.trim();
    loop {
        t = t
            .trim_start_matches('&')
            .trim_start_matches("'static")
            .trim_start();
        t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
        let ident: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() {
            return None;
        }
        let rest = &t[ident.len()..];
        if matches!(ident.as_str(), "Arc" | "Rc" | "Box" | "RefCell" | "Cell")
            && rest.trim_start().starts_with('<')
        {
            // Only the head matters, so dropping into the `<...>` body and
            // re-reading the next identifier is enough — the trailing `>`
            // never parses as part of an identifier.
            t = &rest.trim_start()[1..];
            continue;
        }
        return Some(ident);
    }
}

/// Does this function hand a live guard back to its caller?
pub(crate) fn returns_guard(fi: &FnInfo) -> bool {
    fi.item
        .ret
        .as_ref()
        .map(|t| t.text.contains("Guard"))
        .unwrap_or(false)
}

/// Blocking method calls: channel receives, argument-less `join()`
/// (`JoinHandle`), condvar waits, listener `accept()`, and bulk socket I/O.
pub(crate) fn blocking_method(method: &str, n_args: usize) -> Option<String> {
    let what = match method {
        "recv" | "recv_timeout" | "recv_deadline" => method,
        "join" | "accept" if n_args == 0 => method,
        "wait" | "wait_timeout" | "wait_while" => method,
        "read_exact" | "write_all" | "read_to_end" | "read_to_string" => method,
        _ => return None,
    };
    Some(format!(".{what}()"))
}

/// Blocking free-function paths: `thread::sleep`, `TcpStream::connect`.
pub(crate) fn blocking_path(segs: &[String]) -> Option<String> {
    let last = segs.last().map(String::as_str).unwrap_or("");
    let penult = penult_of(segs);
    if last == "sleep" && (penult == "thread" || segs.len() == 1) {
        return Some("thread::sleep".to_string());
    }
    if last == "connect" && penult == "TcpStream" {
        return Some("TcpStream::connect".to_string());
    }
    None
}

pub(crate) fn qualified_name(fi: &FnInfo) -> String {
    match &fi.self_ty {
        Some(ty) => format!("{}::{}::{}", fi.krate, ty, fi.name),
        None => format!("{}::{}", fi.krate, fi.name),
    }
}

/// `self` + parameter types only — enough to type `self.field` chains, which
/// is where long-lived state lives.
pub(crate) fn param_env(fi: &FnInfo) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    if let Some(ty) = &fi.self_ty {
        env.insert("self".to_string(), ty.clone());
    }
    for (name, ty) in &fi.item.params {
        if !name.is_empty() && !ty.text.is_empty() {
            env.insert(name.clone(), ty.text.clone());
        }
    }
    env
}

// ---------------------------------------------------------------------------
// Whole-body expression walkers (closures included)
// ---------------------------------------------------------------------------

pub(crate) fn for_each_expr_in_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    for_each_expr(e, f);
                }
            }
            Stmt::Expr { expr, .. } => for_each_expr(expr, f),
            Stmt::Item(_) => {}
        }
    }
}

pub(crate) fn for_each_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            for_each_expr(callee, f);
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            for_each_expr(recv, f);
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::Field { base, .. } => for_each_expr(base, f),
        Expr::Index { base, index, .. } => {
            for_each_expr(base, f);
            for_each_expr(index, f);
        }
        Expr::Cast { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Closure { body: expr, .. } => for_each_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                for_each_expr(v, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            for_each_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    for_each_expr(g, f);
                }
                for_each_expr(&arm.body, f);
            }
        }
        Expr::If {
            cond, then, else_, ..
        } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(then, f);
            if let Some(e2) = else_ {
                for_each_expr(e2, f);
            }
        }
        Expr::Loop { body, .. } => for_each_expr_in_block(body, f),
        Expr::While { cond, body, .. } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            for_each_expr(iter, f);
            for_each_expr_in_block(body, f);
        }
        Expr::Block { block, .. } => for_each_expr_in_block(block, f),
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for a in elems {
                for_each_expr(a, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(l) = lo {
                for_each_expr(l, f);
            }
            if let Some(h) = hi {
                for_each_expr(h, f);
            }
        }
        Expr::Return { expr, .. } => {
            if let Some(e2) = expr {
                for_each_expr(e2, f);
            }
        }
        Expr::Path { .. }
        | Expr::Lit { .. }
        | Expr::Break { .. }
        | Expr::Continue { .. }
        | Expr::Opaque { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_num_handles_suffixes_and_radixes() {
        assert_eq!(parse_num("42"), Some(42.0));
        assert_eq!(parse_num("0u8"), Some(0.0));
        assert_eq!(parse_num("1_024usize"), Some(1024.0));
        assert_eq!(parse_num("0x20"), Some(32.0));
        assert_eq!(parse_num("128.0"), Some(128.0));
        assert_eq!(parse_num("2.5f64"), Some(2.5));
        assert_eq!(parse_num("abc"), None);
    }

    #[test]
    fn fold_binary_shifts_exactly() {
        assert_eq!(fold_binary("<<", 1.0, 20.0), Some(1048576.0));
        assert_eq!(fold_binary("/", 1.0, 0.0), None);
        assert_eq!(fold_binary("<<", 1.0, 64.0), None);
    }

    #[test]
    fn peel_head_sees_through_wrappers() {
        assert_eq!(peel_head("&Arc<Mutex<T>>"), Some("Mutex".to_string()));
        assert_eq!(peel_head("mut Vec<u8>"), Some("Vec".to_string()));
        assert_eq!(peel_head(""), None);
    }
}
