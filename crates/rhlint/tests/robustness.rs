//! Robustness properties for the rhlint front end: arbitrary input — raw
//! bytes, arbitrary unicode, or Rust-ish token soup — must never panic the
//! lexer, the tolerant parser, or the lexical scanner. Malformed input comes
//! back as diagnostics or a tolerant AST, never a crash; the parser's
//! internal fuel bounds runtime on adversarial nesting.

use std::path::Path;

use proptest::prelude::*;

use rhlint::{lexer, parser, scan_source, MaskedSource, ScanScope};

/// The strictest scope any real crate gets — exercises every lexical rule.
fn full_scope() -> ScanScope {
    ScanScope {
        panic_freedom: true,
        determinism: true,
        float_safety: true,
    }
}

/// Run the whole front end over one input; returns a size so the property
/// has an observable result to anchor on.
fn front_end(text: &str) -> usize {
    let toks = lexer::lex(text);
    let file = parser::parse_file(text);
    let masked = MaskedSource::new(text);
    let diags = scan_source("optimizers", Path::new("src/lib.rs"), text, full_scope());
    toks.len() + file.items.len() + masked.raw_lines.len() + diags.len()
}

/// Arbitrary bytes, lossily decoded to a string.
fn bytes_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255u8, 0..512usize)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Arbitrary unicode scalar values (surrogates and out-of-range dropped).
fn unicode_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x0011_0000u32, 0..256usize)
        .prop_map(|points| points.into_iter().filter_map(char::from_u32).collect())
}

/// Rust-ish token soup reaches far deeper parser paths than noise does:
/// nesting, guards, match arms, suppression comments, unbalanced braces.
/// The label / closure / sanitizer tokens at the end steer the soup into the
/// CFG corner paths (labeled break, `while let`, nested closures, `?`) and
/// the taint transfer functions.
const VOCAB: [&str; 60] = [
    "fn",
    "pub",
    "struct",
    "impl",
    "match",
    "if",
    "else",
    "loop",
    "while",
    "for",
    "let",
    "mut",
    "return",
    "break",
    "continue",
    "self",
    "Self",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ".",
    "::",
    "->",
    "=>",
    "=",
    "&",
    "?",
    "!",
    "#[cfg(test)]",
    "x",
    "y",
    "Mutex",
    "lock",
    "unwrap",
    "recv",
    "push",
    "// rhlint:allow(unwrap): soup",
    "\"str\"",
    "0.5",
    "42",
    "move",
    "'outer:",
    "'outer",
    "||",
    "|v|",
    "Some",
    "None",
    "from_le_bytes",
    "clamp",
    "checked_add",
    "vec!",
    "as",
    "usize",
];

fn soup_strategy() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec((0usize..VOCAB.len()).prop_map(|i| VOCAB[i]), 0..160usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Raw bytes, lossily decoded: the front end never panics.
    #[test]
    fn arbitrary_bytes_never_panic(text in bytes_strategy()) {
        front_end(&text);
    }

    /// Arbitrary unicode strings: same guarantee without the lossy step.
    #[test]
    fn arbitrary_unicode_never_panics(text in unicode_strategy()) {
        front_end(&text);
    }

    /// Token soup, space- and newline-joined (line masking takes different
    /// paths when suppression comments land on their own lines).
    #[test]
    fn token_soup_never_panics(words in soup_strategy()) {
        front_end(&words.join(" "));
        front_end(&words.join("\n"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full pipeline — symbols, call graph, CFG lowering, the interval
    /// and taint dataflow passes — never panics on token soup either. The
    /// front-end properties above stop at scanning; this one materialises
    /// the soup as a one-crate workspace so lowering runs over whatever
    /// half-formed labeled loops, closures, and `?` chains the soup builds.
    #[test]
    fn full_pipeline_never_panics_on_soup(words in soup_strategy(), seq in 0u32..u32::MAX) {
        let body = words.join(" ");
        let source = format!("pub fn soup(hdr: [u8; 4], dims: Vec<f64>) {{ {body} }}\n");
        let root = std::env::temp_dir().join(format!(
            "rhlint-soup-{}-{seq}",
            std::process::id()
        ));
        let src = root.join("crates/optimizers/src");
        std::fs::create_dir_all(&src).expect("mk soup workspace");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write manifest");
        std::fs::write(
            src.join("../Cargo.toml"),
            "[package]\nname = \"optimizers\"\nversion = \"0.0.0\"\n",
        )
        .expect("write crate manifest");
        std::fs::write(src.join("lib.rs"), source).expect("write soup");
        let outcome = rhlint::check_workspace(&root);
        std::fs::remove_dir_all(&root).ok();
        // Diagnostics or a load error are both fine; a panic is not.
        let _ = outcome;
    }
}
