//! Tuner inference latency — the paper's design goal: "the inference latency is on
//! the critical path of the job submission/execution", reduced by constraining the
//! candidate search area (Centroid Learning) vs BO's global proposals.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use optimizers::bo::BayesOpt;
use optimizers::space::ConfigSpace;
use optimizers::tuner::{Outcome, Tuner, TuningContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rockhopper::RockhopperTuner;

fn ctx() -> TuningContext {
    TuningContext {
        embedding: vec![0.5; 10],
        expected_data_size: 1e6,
        iteration: 50,
    }
}

/// Pre-load a tuner with `n` plausible observations.
fn warm<T: Tuner>(tuner: &mut T, n: usize, seed: u64) {
    let space = ConfigSpace::query_level();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let p = space.random_point(&mut rng);
        tuner.observe(
            &p,
            &Outcome {
                elapsed_ms: 100.0 + (i % 17) as f64 * 5.0,
                data_size: 1e6,
                kind: optimizers::tuner::ObservationKind::Measured,
            },
        );
    }
}

fn bench_suggest_latency(c: &mut Criterion) {
    let space = ConfigSpace::query_level();
    let mut group = c.benchmark_group("suggest_latency_50_obs");

    let mut cl = RockhopperTuner::builder(space.clone())
        .guardrail(None)
        .seed(1)
        .build();
    warm(&mut cl, 50, 1);
    group.bench_function("centroid_learning", |b| {
        b.iter(|| cl.suggest(black_box(&ctx())))
    });

    let mut bo = BayesOpt::new(space.clone(), 1);
    warm(&mut bo, 50, 1);
    group.bench_function("bayesopt", |b| b.iter(|| bo.suggest(black_box(&ctx()))));
    group.finish();
}

fn bench_observe_latency(c: &mut Criterion) {
    let space = ConfigSpace::query_level();
    let mut cl = RockhopperTuner::builder(space.clone())
        .guardrail(None)
        .seed(2)
        .build();
    warm(&mut cl, 50, 2);
    let point = space.default_point();
    c.bench_function("centroid_observe_and_update", |b| {
        b.iter(|| {
            cl.observe(
                black_box(&point),
                &Outcome {
                    elapsed_ms: 123.0,
                    data_size: 1e6,
                    kind: optimizers::tuner::ObservationKind::Measured,
                },
            )
        })
    });
}

fn bench_candidate_generation(c: &mut Criterion) {
    let space = ConfigSpace::query_level();
    let state = rockhopper::centroid::CentroidState::new(
        &space,
        &space.default_point(),
        rockhopper::centroid::CentroidConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("candidate_neighborhood_24", |b| {
        b.iter(|| state.candidates(black_box(&space), &mut rng))
    });
}

criterion_group!(
    benches,
    bench_suggest_latency,
    bench_observe_latency,
    bench_candidate_generation
);
criterion_main!(benches);
