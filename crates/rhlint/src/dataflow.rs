//! A forward dataflow framework over [`Cfg`]s.
//!
//! Facts are elements of a powerset lattice (`BTreeSet<F>`, join = union —
//! a *may* analysis: a fact holds at a point if it holds on **some** path to
//! it). A [`Transfer`] maps one [`Event`] over a fact set in place: the
//! gen/kill of classic dataflow, e.g. `Acquire` gens a held-guard fact and
//! `Release` kills it.
//!
//! [`forward`] runs the standard worklist algorithm to a fixpoint. Fact sets
//! only grow at joins and transfer functions are monotone in practice, so the
//! fixpoint is reached in `O(blocks × facts)` rounds; a fuel bound caps the
//! iteration anyway so a pathological (non-monotone) transfer degrades into
//! an under-approximation instead of a hang — the same tolerance stance as
//! the parser.

use std::collections::BTreeSet;

use crate::cfg::{BlockId, Cfg, Event};

/// One event's effect on a fact set (gen/kill, applied in program order).
pub trait Transfer {
    /// Ordered fact type; sets of these form the lattice.
    type Fact: Clone + Ord;

    /// Apply `event` to `facts` in place.
    fn apply(&self, event: &Event, facts: &mut BTreeSet<Self::Fact>);
}

/// The fixpoint solution: the fact set *entering* each block.
pub struct Solution<F: Clone + Ord> {
    pub block_in: Vec<BTreeSet<F>>,
}

impl<F: Clone + Ord> Solution<F> {
    /// Replay one block's events from its in-set, calling `at_event` with the
    /// facts holding *immediately before* each event. This is how the lint
    /// passes localize a diagnostic to the exact line inside a block.
    pub fn walk_block<T>(
        &self,
        cfg: &Cfg,
        block: BlockId,
        transfer: &T,
        mut at_event: impl FnMut(&Event, &BTreeSet<F>),
    ) where
        T: Transfer<Fact = F>,
    {
        let Some(data) = cfg.blocks.get(block) else {
            return;
        };
        let mut facts = self.block_in.get(block).cloned().unwrap_or_default();
        for event in &data.events {
            at_event(event, &facts);
            transfer.apply(event, &mut facts);
        }
    }
}

/// Run the forward worklist algorithm to a fixpoint.
///
/// `entry_facts` seeds block 0 (normally empty: no guards held on entry).
pub fn forward<T: Transfer>(
    cfg: &Cfg,
    transfer: &T,
    entry_facts: BTreeSet<T::Fact>,
) -> Solution<T::Fact> {
    let n = cfg.blocks.len();
    let mut block_in: Vec<BTreeSet<T::Fact>> = vec![BTreeSet::new(); n];
    let mut block_out: Vec<BTreeSet<T::Fact>> = vec![BTreeSet::new(); n];
    if let Some(first) = block_in.first_mut() {
        *first = entry_facts;
    }

    let mut worklist: BTreeSet<BlockId> = (0..n).collect();
    // Each block re-enters the worklist only when a predecessor's out-set
    // grew; with union joins that happens at most O(total facts) times per
    // block. The fuel bound is a belt-and-braces cap on top.
    let mut fuel = 16 * n * n + 256;
    while let Some(&b) = worklist.iter().next() {
        worklist.remove(&b);
        if fuel == 0 {
            break;
        }
        fuel -= 1;

        let mut out = block_in[b].clone();
        for event in &cfg.blocks[b].events {
            transfer.apply(event, &mut out);
        }
        let changed = out != block_out[b];
        block_out[b] = out;
        if !changed {
            continue;
        }
        for &succ in &cfg.blocks[b].succs {
            let before = block_in[succ].len();
            let merged: BTreeSet<T::Fact> = block_in[succ].union(&block_out[b]).cloned().collect();
            if merged.len() != before {
                block_in[succ] = merged;
                worklist.insert(succ);
            }
        }
    }

    Solution { block_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;

    /// Held-guard toy lattice: facts are guard names.
    struct Guards;
    impl Transfer for Guards {
        type Fact = String;
        fn apply(&self, event: &Event, facts: &mut BTreeSet<String>) {
            match event {
                Event::Acquire { guard, .. } => {
                    facts.insert(guard.clone());
                }
                Event::Release { guard } => {
                    facts.remove(guard);
                }
                _ => {}
            }
        }
    }

    fn acquire(g: &str) -> Event {
        Event::Acquire {
            guard: g.into(),
            lock: format!("Lock.{g}"),
            line: 1,
        }
    }

    #[test]
    fn facts_flow_through_straight_line() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[cfg.exit].contains("g"));
    }

    #[test]
    fn release_kills_the_fact() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        b.push(Event::Release { guard: "g".into() });
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[cfg.exit].is_empty());
    }

    #[test]
    fn join_is_union_may_analysis() {
        // if … { acquire g } — g may be held after the join.
        let mut b = CfgBuilder::new();
        let then_b = b.new_block();
        let join = b.new_block();
        b.edge(b.current(), then_b);
        b.edge(b.current(), join);
        b.set_current(then_b);
        b.push(acquire("g"));
        b.edge(then_b, join);
        b.set_current(join);
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[join].contains("g"));
    }

    #[test]
    fn loop_back_edge_reaches_fixpoint() {
        // loop { acquire g } — head sees g from the back edge.
        let mut b = CfgBuilder::new();
        let head = b.new_block();
        let after = b.new_block();
        b.edge(b.current(), head);
        b.set_current(head);
        b.push(acquire("g"));
        b.edge(head, head);
        b.edge(head, after);
        b.set_current(after);
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        assert!(sol.block_in[head].contains("g"));
        assert!(sol.block_in[after].contains("g"));
    }

    #[test]
    fn walk_block_reports_facts_before_each_event() {
        let mut b = CfgBuilder::new();
        b.push(acquire("g"));
        b.push(Event::Blocking {
            what: "recv".into(),
            line: 2,
        });
        let cfg = b.finish();
        let sol = forward(&cfg, &Guards, BTreeSet::new());
        let mut seen = Vec::new();
        sol.walk_block(&cfg, 0, &Guards, |event, facts| {
            if let Event::Blocking { .. } = event {
                seen.push(facts.clone());
            }
        });
        assert_eq!(seen.len(), 1);
        assert!(seen[0].contains("g"));
    }
}
