//! Fixture rockpool crate: two mutexes acquired in opposite orders on
//! different paths — the classic AB/BA deadlock.

use std::sync::Mutex;

struct Pool {
    intake: Mutex<Vec<u64>>,
    done: Mutex<Vec<u64>>,
}

impl Pool {
    /// Acquires intake, then done.
    fn forward(&self) {
        let a = self.intake.lock();
        let b = self.done.lock();
    }

    /// Acquires done, then intake — closes the cycle.
    fn backward(&self) {
        let b = self.done.lock();
        let a = self.intake.lock();
    }

    /// Never holds both at once — contributes no ordering edge.
    fn consistent(&self) {
        let a = self.intake.lock();
        drop(a);
        let b = self.done.lock();
        drop(b);
    }
}
