//! **Extension: restart regret.** The paper's production framing (§4.2) keeps
//! learned per-signature state in a long-lived backend — but production
//! backends restart: deploys, OOM kills, node drains. This experiment
//! measures what a restart *costs* in tuning quality, comparing three arms
//! over the same post-restart request window:
//!
//! - **uninterrupted**: one backend serves the whole workload, no restart —
//!   the ceiling;
//! - **warm restart** (what the durability layer buys): the backend dies
//!   after the warm-up phase and a new process recovers from the WAL +
//!   snapshot directory before serving the rest;
//! - **cold restart**: the backend dies and comes back *empty* — every
//!   signature re-learns from scratch while production traffic waits.
//!
//! The durability contract is stronger than "warm is better than cold": a
//! warm restart must serve the post-restart window **bit-identically** to
//! the uninterrupted backend (checkpointed tuner RNG streams, replayed
//! operation order), so its regret is exactly zero. The cold arm pays real
//! regret — the cumulative extra milliseconds over the first ~50
//! post-restart requests are the price of not having the WAL.

use std::sync::Arc;

use optimizers::env::{Environment, QueryEnv};
use pipeline::{AutotuneBackend, Storage};
use sparksim::fault::FaultSpec;
use sparksim::noise::NoiseSpec;

use crate::harness::{band_rows, write_csv, Scale, Summary};

/// TPC-H query driven through the restart loop.
const QUERY: usize = 6;

/// Scale factor — moderate, so warm-up converges within the quick budget.
const SCALE_FACTOR: f64 = 5.0;

/// Snapshot cadence for the durable arm — small enough that the warm-up
/// phase cuts at least one compacted snapshot, so recovery exercises the
/// snapshot + tail-replay path rather than pure log replay.
const SNAPSHOT_EVERY: u64 = 32;

fn fresh_env(seed: u64) -> QueryEnv {
    QueryEnv::tpch(
        QUERY,
        SCALE_FACTOR,
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.05,
        },
        seed,
    )
}

/// One request through the backend: suggest, execute, report the event file
/// back (clean telemetry). Returns the suggested point and its *true* cost.
fn drive(
    backend: &mut AutotuneBackend,
    env: &mut QueryEnv,
    seed: u64,
    t: usize,
) -> (Vec<f64>, f64) {
    let sig = env.signature();
    let ctx = env.context();
    let point = backend.suggest("prod", sig, &ctx);
    let conf = env.space().to_conf(&point);
    let true_ms = env.sim.true_time_ms(&env.plan, &conf);
    let app_id = format!("app-{t}");
    let run_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t as u64);
    let (_outcome, events) = env.sim.run_and_events(
        &app_id,
        "artifact-restart",
        sig,
        &env.plan,
        &conf,
        ctx.embedding.clone(),
        run_seed,
        &FaultSpec::none(),
    );
    backend.ingest("prod", &app_id, &events);
    let _ = env.run(&point);
    (point, true_ms)
}

/// Order-sensitive fold of suggested points — the same construction the
/// serving bench uses, so "bit-identical" means the same thing everywhere.
fn fold_point(acc: u64, point: &[f64]) -> u64 {
    let mut h = rockpool::split_seed(acc, point.len() as u64);
    for x in point {
        h = rockpool::split_seed(h, x.to_bits());
    }
    h
}

/// One replication's post-restart traces.
struct RepTraces {
    uninterrupted: Vec<f64>,
    warm: Vec<f64>,
    cold: Vec<f64>,
    /// Whether the warm arm's suggested points matched the uninterrupted
    /// arm's bit for bit over the whole post-restart window.
    warm_bit_identical: bool,
}

/// Run the three arms for one seed. `pre` warm-up requests, then `post`
/// post-restart requests.
fn one_rep(seed: u64, pre: usize, post: usize) -> RepTraces {
    let dir = std::env::temp_dir().join(format!(
        "rockhopper-exp-restart-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("restart-regret state dir creates");

    // Durable warm-up, then the crash: the backend is dropped without
    // ceremony — only the WAL and its snapshots survive.
    let mut env = fresh_env(seed);
    let mut durable = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    durable
        .persist_to_with(&dir, SNAPSHOT_EVERY)
        .expect("durability attaches");
    for t in 0..pre {
        drive(&mut durable, &mut env, seed, t);
    }
    let _ = durable.flush_durability();
    drop(durable);

    // Warm arm: a new process recovers the directory and keeps serving the
    // same environment where the crashed one left off.
    let mut warm = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    warm.recover_from_with(&dir, SNAPSHOT_EVERY)
        .expect("recovery succeeds");
    let mut warm_trace = Vec::with_capacity(post);
    let mut warm_fp = 0u64;
    for t in pre..pre + post {
        let (point, ms) = drive(&mut warm, &mut env, seed, t);
        warm_fp = fold_point(warm_fp, &point);
        warm_trace.push(ms);
    }

    // Uninterrupted arm: same seed, same workload, one backend end to end
    // (in-memory — durability logging must not perturb suggestions).
    let mut env_u = fresh_env(seed);
    let mut uninterrupted = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    for t in 0..pre {
        drive(&mut uninterrupted, &mut env_u, seed, t);
    }
    let mut u_trace = Vec::with_capacity(post);
    let mut u_fp = 0u64;
    for t in pre..pre + post {
        let (point, ms) = drive(&mut uninterrupted, &mut env_u, seed, t);
        u_fp = fold_point(u_fp, &point);
        u_trace.push(ms);
    }

    // Cold arm: the workload ran through the warm-up (default config — no
    // backend existed to tune it), then an *empty* backend starts learning
    // from the first post-restart request.
    let mut env_c = fresh_env(seed);
    let default_point = env_c.space().default_point();
    for _ in 0..pre {
        let _ = env_c.run(&default_point);
    }
    let mut cold = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    let mut cold_trace = Vec::with_capacity(post);
    for t in pre..pre + post {
        let (_point, ms) = drive(&mut cold, &mut env_c, seed, t);
        cold_trace.push(ms);
    }

    let _ = std::fs::remove_dir_all(&dir);
    RepTraces {
        uninterrupted: u_trace,
        warm: warm_trace,
        cold: cold_trace,
        warm_bit_identical: warm_fp == u_fp,
    }
}

/// Run the warm-vs-cold restart comparison.
pub fn run(scale: Scale) -> Summary {
    let pre = scale.pick(40, 12);
    let post = scale.pick(50, 12);
    let reps = scale.pick(8, 3);

    let seeds: Vec<u64> = (0..reps)
        .map(|r| 0x2E57_A27u64.wrapping_add(r as u64 * 101))
        .collect();
    let reps_done: Vec<RepTraces> = seeds.iter().map(|&seed| one_rep(seed, pre, post)).collect();

    let mut summary = Summary::new("exp_restart_regret");
    summary.row(
        "post-restart window",
        format!("{post} requests (after {pre} warm-up requests)"),
    );
    let mean_of = |pick: fn(&RepTraces) -> &Vec<f64>| -> f64 {
        let per_rep: Vec<f64> = reps_done.iter().map(|r| ml::stats::mean(pick(r))).collect();
        ml::stats::mean(&per_rep)
    };
    let warm_mean = mean_of(|r| &r.warm);
    let cold_mean = mean_of(|r| &r.cold);
    let u_mean = mean_of(|r| &r.uninterrupted);
    summary.row("uninterrupted mean cost", format!("{u_mean:.0} ms"));
    summary.row("warm restart mean cost", format!("{warm_mean:.0} ms"));
    summary.row("cold restart mean cost", format!("{cold_mean:.0} ms"));
    let all_identical = reps_done.iter().all(|r| r.warm_bit_identical);
    summary.row(
        "warm restart bit-identical to uninterrupted",
        if all_identical { "yes" } else { "NO" },
    );
    summary.row(
        "cold-restart cumulative regret",
        format!(
            "{:.0} ms over {post} requests",
            (cold_mean - warm_mean) * post as f64
        ),
    );

    let warm_traces: Vec<Vec<f64>> = reps_done.iter().map(|r| r.warm.clone()).collect();
    let cold_traces: Vec<Vec<f64>> = reps_done.iter().map(|r| r.cold.clone()).collect();
    summary.files.push(write_csv(
        "exp_restart_regret_warm",
        "iteration,p5,p50,p95",
        &band_rows(&ml::stats::bands_per_iteration(&warm_traces)),
    ));
    summary.files.push(write_csv(
        "exp_restart_regret_cold",
        "iteration,p5,p50,p95",
        &band_rows(&ml::stats::bands_per_iteration(&cold_traces)),
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_restart_is_bit_identical_and_cold_pays_regret() {
        let rep = one_rep(0x7E57_0001, 12, 10);
        assert!(
            rep.warm_bit_identical,
            "warm restart must continue the uninterrupted suggestion stream"
        );
        assert_eq!(
            rep.warm, rep.uninterrupted,
            "warm restart true-cost trace must equal the uninterrupted trace"
        );
        let warm_sum: f64 = rep.warm.iter().sum();
        let cold_sum: f64 = rep.cold.iter().sum();
        assert!(
            cold_sum >= warm_sum,
            "cold restart should not beat the recovered state over the \
             post-restart window (cold {cold_sum:.0} ms < warm {warm_sum:.0} ms)"
        );
    }
}
