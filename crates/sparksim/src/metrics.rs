//! Query execution metrics — everything the monitoring dashboard (§6.3) collects:
//! "(1) partitions, (2) physical plans, (3) task numbers, and (4) input data sizes".

use serde::{Deserialize, Serialize};

use crate::physical::{JoinStrategy, PhysicalPlan};
use crate::scheduler::QueryTiming;

/// Aggregated metrics for one simulated query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Observed wall-clock duration (noise applied), ms.
    pub elapsed_ms: f64,
    /// True (noise-free) duration, ms.
    pub true_ms: f64,
    /// Stage count.
    pub num_stages: usize,
    /// Total task count across stages.
    pub num_tasks: usize,
    /// Bytes scanned from base tables.
    pub input_bytes: f64,
    /// Total input rows across leaf scans (the data size `p` tuners condition on).
    pub input_rows: f64,
    /// Estimated rows of the root operator.
    pub root_rows: f64,
    /// Total bytes written to shuffle.
    pub shuffle_bytes: f64,
    /// Total bytes spilled to disk.
    pub spilled_bytes: f64,
    /// Joins executed as broadcast-hash.
    pub broadcast_joins: usize,
    /// Joins executed as sort-merge.
    pub sort_merge_joins: usize,
}

impl QueryMetrics {
    /// Assemble metrics from planning and timing results.
    pub fn collect(
        phys: &PhysicalPlan,
        timing: &QueryTiming,
        input_bytes: f64,
        input_rows: f64,
        root_rows: f64,
        elapsed_ms: f64,
    ) -> QueryMetrics {
        let spilled = timing
            .stages
            .iter()
            .map(|s| s.memory.total_spill_bytes(s.tasks))
            .sum();
        QueryMetrics {
            elapsed_ms,
            true_ms: timing.total_ms,
            num_stages: phys.stages.len(),
            num_tasks: phys.total_tasks(),
            input_bytes,
            input_rows,
            root_rows,
            shuffle_bytes: phys.total_shuffle_bytes(),
            spilled_bytes: spilled,
            broadcast_joins: phys.joins_with(JoinStrategy::BroadcastHash),
            sort_merge_joins: phys.joins_with(JoinStrategy::SortMerge),
        }
    }

    /// Observed slowdown relative to the true runtime (1.0 = no noise).
    // rhlint:allow(dead-pub): noise-model introspection for robustness experiments
    pub fn noise_factor(&self) -> f64 {
        if self.true_ms > 0.0 {
            self.elapsed_ms / self.true_ms
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparkConf;
    use crate::physical::plan_physical;
    use crate::plan::PlanNode;
    use crate::scheduler::schedule;
    use crate::{cluster::ClusterSpec, cost::CostParams};

    #[test]
    fn collect_assembles_consistent_metrics() {
        let plan = PlanNode::scan("t", 1e7, 100.0).hash_aggregate(0.01);
        let conf = SparkConf::default();
        let phys = plan_physical(&plan, &conf);
        let timing = schedule(&phys, &conf, &ClusterSpec::medium(), &CostParams::default());
        let m = QueryMetrics::collect(
            &phys,
            &timing,
            plan.leaf_input_bytes(),
            plan.leaf_input_rows(),
            plan.root_cardinality(),
            timing.total_ms * 1.5,
        );
        assert_eq!(m.num_stages, phys.stages.len());
        assert_eq!(m.num_tasks, phys.total_tasks());
        assert!((m.noise_factor() - 1.5).abs() < 1e-12);
        assert_eq!(m.input_bytes, 1e9);
        assert_eq!(m.broadcast_joins + m.sort_merge_joins, 0);
    }

    #[test]
    fn noise_factor_handles_zero_true_time() {
        let m = QueryMetrics {
            elapsed_ms: 5.0,
            true_ms: 0.0,
            num_stages: 0,
            num_tasks: 0,
            input_bytes: 0.0,
            input_rows: 0.0,
            root_rows: 0.0,
            shuffle_bytes: 0.0,
            spilled_bytes: 0.0,
            broadcast_joins: 0,
            sort_merge_joins: 0,
        };
        assert_eq!(m.noise_factor(), 1.0);
    }
}
