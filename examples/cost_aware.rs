//! Cost-aware tuning (§2.1: some customers optimize spend, not just latency): tune
//! query- and app-level knobs jointly, once for latency and once for dollar cost,
//! and compare what each objective chooses.
//!
//! ```sh
//! cargo run --release --example cost_aware
//! ```

use rockhopper_repro::optimizers::objective::Objective;
use rockhopper_repro::prelude::*;
use rockhopper_repro::rockhopper::RockhopperTuner;
use rockhopper_repro::sparksim::simulator::Simulator;

fn joint_space() -> ConfigSpace {
    let mut space = ConfigSpace::query_level();
    space.dims.extend(ConfigSpace::app_level().dims);
    space
}

fn tune(objective: Objective, seed: u64) -> (SparkConf, f64, f64) {
    let plan = rockhopper_repro::workloads::tpch::query(9, 5.0);
    let sim = Simulator::default_pool(NoiseSpec::low());
    let space = joint_space();
    let mut tuner = RockhopperTuner::builder(space.clone())
        .guardrail(None)
        .seed(seed)
        .build();
    let ctx = TuningContext {
        embedding: vec![],
        expected_data_size: plan.leaf_input_rows(),
        iteration: 0,
    };
    for i in 0..60 {
        let point = tuner.suggest(&ctx);
        let conf = space.to_conf(&point);
        let run = sim.execute(&plan, &conf, seed ^ i);
        let outcome = Outcome::measured(run.metrics.elapsed_ms, run.metrics.input_rows);
        // The objective adapter scores the outcome; the tuner minimizes the score.
        tuner.observe(&point, &objective.scored_outcome(&conf, &outcome));
    }
    let conf = space.to_conf(&tuner.centroid());
    let time = sim.true_time_ms(&plan, &conf);
    let cost = Objective::run_cost(&conf, time, 2.0);
    (conf, time, cost)
}

fn main() {
    let (lat_conf, lat_time, lat_cost) = tune(Objective::Latency, 1);
    let (cost_conf, cost_time, cost_cost) = tune(
        Objective::Cost {
            price_per_executor_hour: 2.0,
        },
        1,
    );

    println!("TPC-H Q9, 60 tuning runs per objective ($2 / executor-hour):\n");
    println!(
        "latency objective: {:>5.1} s, ${:.4}/run, {} executors",
        lat_time / 1e3,
        lat_cost,
        lat_conf.executor_count()
    );
    println!(
        "cost objective:    {:>5.1} s, ${:.4}/run, {} executors",
        cost_time / 1e3,
        cost_cost,
        cost_conf.executor_count()
    );
    println!(
        "\nthe cost objective trades {:+.0}% latency for {:+.0}% spend",
        100.0 * (cost_time - lat_time) / lat_time,
        100.0 * (cost_cost - lat_cost) / lat_cost,
    );
}
