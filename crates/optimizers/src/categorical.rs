//! Categorical configuration support (§4.3: "categorical configurations can be
//! handled by employing embedding algorithms that map categorical values into a
//! continuous space to enable tuning", citing the Holon proto-action approach \[50\]).
//!
//! A [`CategoricalEncoder`] target-encodes each category by its observed performance:
//! categories are laid out on `[0, 1]` ordered by their running mean outcome, so the
//! continuous tuners' locality assumption ("nearby points behave similarly") holds —
//! adjacent encoded values are categories with similar performance. Decoding snaps a
//! continuous suggestion to the nearest category's position.
//!
//! Spark has several such knobs (`spark.serializer`, `spark.io.compression.codec`,
//! `spark.sql.autoBroadcastJoinThreshold = -1` as an on/off, …); the reproduction's
//! simulator only models numeric knobs, so this module is exercised by unit tests
//! and available to downstream users.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Running performance statistics for one category.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct CategoryStats {
    sum: f64,
    count: u64,
}

impl CategoryStats {
    fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Maps one categorical knob into `[0, 1]` by observed performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalEncoder {
    /// The category labels, in declaration order.
    categories: Vec<String>,
    stats: Vec<CategoryStats>,
}

impl CategoricalEncoder {
    /// Create an encoder over the given categories.
    ///
    /// # Panics
    /// Panics on an empty category list or duplicate labels.
    pub fn new<S: Into<String>>(categories: Vec<S>) -> CategoricalEncoder {
        let categories: Vec<String> = categories.into_iter().map(Into::into).collect();
        assert!(!categories.is_empty(), "need at least one category");
        let distinct: std::collections::BTreeSet<&String> = categories.iter().collect();
        assert_eq!(distinct.len(), categories.len(), "duplicate categories");
        let stats = vec![CategoryStats::default(); categories.len()];
        CategoricalEncoder { categories, stats }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the encoder has no categories (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Record an observed outcome (elapsed ms — lower is better) for a category.
    /// Unknown labels are ignored (a client may send knobs this encoder never
    /// declared).
    pub fn observe(&mut self, category: &str, elapsed_ms: f64) {
        if let Some(i) = self.index_of(category) {
            self.stats[i].sum += elapsed_ms;
            self.stats[i].count += 1;
        }
    }

    fn index_of(&self, category: &str) -> Option<usize> {
        self.categories.iter().position(|c| c == category)
    }

    /// The performance-ordered layout: positions in `[0, 1]` per category, best
    /// (lowest mean) first. Unobserved categories keep their declaration-order slot
    /// among themselves at the end of the layout.
    fn layout(&self) -> BTreeMap<usize, f64> {
        let mut order: Vec<usize> = (0..self.categories.len()).collect();
        order.sort_by(
            |&a, &b| match (self.stats[a].mean(), self.stats[b].mean()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.cmp(&b),
            },
        );
        let n = order.len();
        order
            .into_iter()
            .enumerate()
            .map(|(rank, cat)| {
                let pos = if n == 1 {
                    0.0
                } else {
                    rank as f64 / (n - 1) as f64
                };
                (cat, pos)
            })
            .collect()
    }

    /// Encode a category into its current `[0, 1]` position.
    /// Returns `None` for unknown labels.
    // rhlint:allow(dead-pub): encoder round-trip API for categorical-knob experiments
    pub fn encode(&self, category: &str) -> Option<f64> {
        let i = self.index_of(category)?;
        Some(self.layout()[&i])
    }

    /// Decode a continuous value to the nearest category's label.
    // rhlint:allow(dead-pub): encoder round-trip API for categorical-knob experiments
    pub fn decode(&self, x: f64) -> &str {
        let layout = self.layout();
        // The constructor rejects empty category lists, so a nearest slot
        // always exists; the empty-string fallback is unreachable.
        let best = (0..self.categories.len())
            .min_by(|&a, &b| (layout[&a] - x).abs().total_cmp(&(layout[&b] - x).abs()))
            .unwrap_or(0);
        self.categories.get(best).map(String::as_str).unwrap_or("")
    }

    /// Mean observed performance per category (for dashboards); `None` = unobserved.
    pub fn means(&self) -> Vec<(&str, Option<f64>)> {
        self.categories
            .iter()
            .map(String::as_str)
            .zip(self.stats.iter().map(CategoryStats::mean))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> CategoricalEncoder {
        CategoricalEncoder::new(vec!["lz4", "snappy", "zstd"])
    }

    #[test]
    fn roundtrips_through_encode_decode() {
        let mut e = encoder();
        e.observe("lz4", 100.0);
        e.observe("snappy", 200.0);
        e.observe("zstd", 300.0);
        for c in ["lz4", "snappy", "zstd"] {
            let x = e.encode(c).unwrap();
            assert_eq!(e.decode(x), c);
        }
    }

    #[test]
    fn performance_order_defines_the_layout() {
        let mut e = encoder();
        e.observe("zstd", 50.0); // best
        e.observe("lz4", 100.0);
        e.observe("snappy", 500.0); // worst
        assert_eq!(e.encode("zstd"), Some(0.0));
        assert_eq!(e.encode("lz4"), Some(0.5));
        assert_eq!(e.encode("snappy"), Some(1.0));
        // Low continuous values decode to the good end.
        assert_eq!(e.decode(0.1), "zstd");
        assert_eq!(e.decode(0.9), "snappy");
    }

    #[test]
    fn layout_adapts_as_observations_accumulate() {
        let mut e = encoder();
        e.observe("lz4", 100.0);
        e.observe("snappy", 200.0);
        e.observe("zstd", 300.0);
        assert_eq!(e.decode(0.0), "lz4");
        // New evidence flips the ranking: zstd is actually fast.
        for _ in 0..10 {
            e.observe("zstd", 10.0);
        }
        assert_eq!(e.decode(0.0), "zstd");
    }

    #[test]
    fn unobserved_categories_sit_after_observed_ones() {
        let mut e = encoder();
        e.observe("snappy", 100.0);
        // snappy observed → best slot; others keep declaration order after it.
        assert_eq!(e.encode("snappy"), Some(0.0));
        assert!(e.encode("lz4").unwrap() > 0.0);
        assert!(e.encode("zstd").unwrap() > e.encode("lz4").unwrap());
    }

    #[test]
    fn unknown_labels_are_ignored_gracefully() {
        let mut e = encoder();
        e.observe("gzip", 1.0); // not declared
        assert_eq!(e.encode("gzip"), None);
        assert!(e.means().iter().all(|(_, m)| m.is_none()));
    }

    #[test]
    fn single_category_is_trivial() {
        let e = CategoricalEncoder::new(vec!["only"]);
        assert_eq!(e.encode("only"), Some(0.0));
        assert_eq!(e.decode(0.7), "only");
        assert_eq!(e.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate categories")]
    fn duplicates_panic() {
        CategoricalEncoder::new(vec!["a", "a"]);
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let mut e = encoder();
        e.observe("lz4", 1.0);
        e.observe("snappy", 2.0);
        e.observe("zstd", 3.0);
        assert_eq!(e.decode(-5.0), "lz4");
        assert_eq!(e.decode(5.0), "zstd");
    }
}
