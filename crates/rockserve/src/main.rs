//! `cargo run -p rockserve -- [--addr HOST:PORT] [--seed N] [--workers N]
//! [--state-dir DIR] [--snapshot-every N] [--shards N] [--shard-capacity N]
//! [--retrieval-dir DIR]`
//!
//! Binds a rockserve endpoint over a fresh autotune backend and serves until
//! a client sends a `Shutdown` frame, then drains and reports what the
//! backend accumulated. With `--state-dir` each shard recovers whatever
//! learned state survives in its directory before accepting a single
//! connection, and WAL-logs every mutation there from then on — kill the
//! process at any point and the next start replays to the exact same state.
//! `--shards` splits the backend into signature-hash shards (per-shard WAL
//! lineage under `shard-NNNN/`); `--shard-capacity` bounds each shard's
//! resident tuner LRU. `--retrieval-dir` opens a rockindex corpus lineage
//! and serves cold signatures by zero-execution transfer (DESIGN.md §12).

use std::process::ExitCode;
use std::sync::Arc;

use pipeline::{AutotuneBackend, Storage};
use rockserve::{ServeConfig, Server, PROTOCOL_VERSION};

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7070");
    let mut seed = 42u64;
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(v) = args.next() else {
                    return usage("--addr needs HOST:PORT");
                };
                addr = v;
            }
            "--seed" => {
                let Some(v) = args.next() else {
                    return usage("--seed needs an integer");
                };
                seed = v.parse().unwrap_or(42);
            }
            "--workers" => {
                let Some(v) = args.next() else {
                    return usage("--workers needs an integer");
                };
                cfg.workers = v.parse().unwrap_or(0);
            }
            "--state-dir" => {
                let Some(v) = args.next() else {
                    return usage("--state-dir needs a directory path");
                };
                cfg.state_dir = Some(std::path::PathBuf::from(v));
            }
            "--snapshot-every" => {
                let Some(v) = args.next() else {
                    return usage("--snapshot-every needs an integer");
                };
                cfg.snapshot_every = v
                    .parse()
                    .unwrap_or(pipeline::durability::DEFAULT_SNAPSHOT_EVERY);
            }
            "--shards" => {
                let Some(v) = args.next() else {
                    return usage("--shards needs an integer");
                };
                cfg.shards = v.parse().unwrap_or(1);
            }
            "--shard-capacity" => {
                let Some(v) = args.next() else {
                    return usage("--shard-capacity needs an integer");
                };
                cfg.shard_capacity = v.parse().unwrap_or(0);
            }
            "--retrieval-dir" => {
                let Some(v) = args.next() else {
                    return usage("--retrieval-dir needs a directory path");
                };
                cfg.retrieval_dir = Some(std::path::PathBuf::from(v));
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    let server = match Server::spawn(backend, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rockserve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(r) = server.recovery_report() {
        println!(
            "rockserve recovered: {} record(s) replayed, {} quarantined, snapshot {}",
            r.replayed,
            r.quarantined,
            if r.restored_snapshot {
                "restored"
            } else {
                "absent"
            }
        );
    }
    println!(
        "rockserve listening on {} (protocol v{PROTOCOL_VERSION}, seed {seed}); \
         send a Shutdown frame to drain",
        server.local_addr()
    );
    let backends = server.join();
    let lost = backends.iter().filter(|b| b.is_none()).count();
    let tuners: usize = backends
        .iter()
        .flatten()
        .map(pipeline::AutotuneBackend::tuner_count)
        .sum();
    if lost == 0 {
        println!(
            "rockserve drained cleanly; {} shard(s) tracked {} tuner(s)",
            backends.len(),
            tuners
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("rockserve: {lost} shard backend thread(s) lost");
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("rockserve: {problem}");
    eprintln!(
        "usage: rockserve [--addr HOST:PORT] [--seed N] [--workers N] \
         [--state-dir DIR] [--snapshot-every N] [--shards N] [--shard-capacity N] \
         [--retrieval-dir DIR]"
    );
    ExitCode::from(2)
}
