//! Robustness properties for the rhlint front end: arbitrary input — raw
//! bytes, arbitrary unicode, or Rust-ish token soup — must never panic the
//! lexer, the tolerant parser, or the lexical scanner. Malformed input comes
//! back as diagnostics or a tolerant AST, never a crash; the parser's
//! internal fuel bounds runtime on adversarial nesting.

use std::path::Path;

use proptest::prelude::*;

use rhlint::{lexer, parser, scan_source, MaskedSource, ScanScope};

/// The strictest scope any real crate gets — exercises every lexical rule.
fn full_scope() -> ScanScope {
    ScanScope {
        panic_freedom: true,
        determinism: true,
        float_safety: true,
    }
}

/// Run the whole front end over one input; returns a size so the property
/// has an observable result to anchor on.
fn front_end(text: &str) -> usize {
    let toks = lexer::lex(text);
    let file = parser::parse_file(text);
    let masked = MaskedSource::new(text);
    let diags = scan_source("optimizers", Path::new("src/lib.rs"), text, full_scope());
    toks.len() + file.items.len() + masked.raw_lines.len() + diags.len()
}

/// Arbitrary bytes, lossily decoded to a string.
fn bytes_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255u8, 0..512usize)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Arbitrary unicode scalar values (surrogates and out-of-range dropped).
fn unicode_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x0011_0000u32, 0..256usize)
        .prop_map(|points| points.into_iter().filter_map(char::from_u32).collect())
}

/// Rust-ish token soup reaches far deeper parser paths than noise does:
/// nesting, guards, match arms, suppression comments, unbalanced braces.
const VOCAB: [&str; 48] = [
    "fn",
    "pub",
    "struct",
    "impl",
    "match",
    "if",
    "else",
    "loop",
    "while",
    "for",
    "let",
    "mut",
    "return",
    "break",
    "continue",
    "self",
    "Self",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ".",
    "::",
    "->",
    "=>",
    "=",
    "&",
    "?",
    "!",
    "#[cfg(test)]",
    "x",
    "y",
    "Mutex",
    "lock",
    "unwrap",
    "recv",
    "push",
    "// rhlint:allow(unwrap): soup",
    "\"str\"",
    "0.5",
    "42",
    "move",
];

fn soup_strategy() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec((0usize..VOCAB.len()).prop_map(|i| VOCAB[i]), 0..160usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Raw bytes, lossily decoded: the front end never panics.
    #[test]
    fn arbitrary_bytes_never_panic(text in bytes_strategy()) {
        front_end(&text);
    }

    /// Arbitrary unicode strings: same guarantee without the lossy step.
    #[test]
    fn arbitrary_unicode_never_panics(text in unicode_strategy()) {
        front_end(&text);
    }

    /// Token soup, space- and newline-joined (line masking takes different
    /// paths when suppression comments land on their own lines).
    #[test]
    fn token_soup_never_panics(words in soup_strategy()) {
        front_end(&words.join(" "));
        front_end(&words.join("\n"));
    }
}
