//! Property tests for the durability layer: WAL records round-trip
//! bit-exactly, any truncation of a segment recovers exactly the complete
//! record prefix (counted as one quarantine event when the cut is dirty),
//! bit flips quarantine the suffix, and foreign-version snapshots are set
//! aside — never panics, never silently-corrupt state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use rockdur::{fault, Wal, MAX_RECORD_BYTES};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Fresh state dir under the system tempdir, removed on drop.
struct StateDir {
    root: PathBuf,
}

impl StateDir {
    fn new(tag: &str) -> StateDir {
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!("rockdur-{tag}-{}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        StateDir { root }
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=255, 0..200), 1..20)
}

/// Append `records`, force-sync, and drop the handle (clean shutdown).
fn write_all(dir: &Path, records: &[Vec<u8>]) {
    let (mut wal, rec) = Wal::open(dir).expect("open fresh dir");
    assert_eq!(rec.next_seq, 0, "fresh dir starts at seq 0");
    for r in records {
        wal.append(r).expect("append");
    }
    wal.sync().expect("sync");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip(records in payloads()) {
        let dir = StateDir::new("roundtrip");
        write_all(dir.path(), &records);

        let (wal, rec) = Wal::open(dir.path()).expect("reopen");
        prop_assert_eq!(rec.quarantined, 0);
        prop_assert_eq!(rec.quarantined_bytes, 0);
        prop_assert!(rec.snapshot.is_none());
        prop_assert_eq!(rec.next_seq, records.len() as u64);
        prop_assert_eq!(wal.next_seq(), records.len() as u64);
        let got: Vec<&Vec<u8>> = rec.records.iter().map(|(_, p)| p).collect();
        let want: Vec<&Vec<u8>> = records.iter().collect();
        prop_assert_eq!(got, want);
        for (i, (seq, _)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
        }
    }

    #[test]
    fn any_truncation_recovers_the_complete_prefix(
        records in payloads(),
        cut_seed: u64,
    ) {
        let dir = StateDir::new("truncate");
        write_all(dir.path(), &records);

        let seg = fault::newest_segment(dir.path())
            .expect("list dir")
            .expect("segment exists");
        let full = std::fs::metadata(&seg).expect("stat").len();
        let cut = cut_seed % (full + 1);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment");
        f.set_len(cut).expect("truncate");
        drop(f);

        // Expected: every record whose bytes fit entirely under the cut.
        let mut boundary = 8u64; // segment magic
        let mut expect = 0usize;
        for r in &records {
            let next = boundary + 8 + r.len() as u64;
            if next > cut {
                break;
            }
            boundary = next;
            expect += 1;
        }
        let clean_cut = cut >= 8 && cut == boundary;

        let (_, rec) = Wal::open(dir.path()).expect("recover from truncation");
        prop_assert_eq!(rec.records.len(), expect,
            "cut at {} of {} must keep exactly the complete prefix", cut, full);
        let got: Vec<&Vec<u8>> = rec.records.iter().map(|(_, p)| p).collect();
        let want: Vec<&Vec<u8>> = records.iter().take(expect).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(rec.quarantined, u64::from(!clean_cut));
        prop_assert_eq!(rec.next_seq, expect as u64);

        // Salvage makes the corruption count exactly once: a second boot
        // sees a clean dir with the same state.
        let (_, again) = Wal::open(dir.path()).expect("boot again");
        prop_assert_eq!(again.quarantined, 0);
        prop_assert_eq!(again.records.len(), expect);
    }

    #[test]
    fn bit_flips_quarantine_the_suffix(
        records in payloads(),
        flip_seed: u64,
    ) {
        let dir = StateDir::new("bitflip");
        write_all(dir.path(), &records);

        let seg = fault::newest_segment(dir.path())
            .expect("list dir")
            .expect("segment exists");
        fault::flip_bit(&seg, flip_seed)
            .expect("flip")
            .expect("segment is not empty");

        let (_, rec) = Wal::open(dir.path()).expect("recover from bit flip");
        prop_assert!(rec.quarantined >= 1, "a flipped bit must be noticed");
        prop_assert!(rec.records.len() < records.len());
        // Whatever survived is a verbatim prefix.
        for (got, want) in rec.records.iter().zip(records.iter()) {
            prop_assert_eq!(&got.1, want);
        }
        // Recovery already salvaged: the next boot is clean.
        let (_, again) = Wal::open(dir.path()).expect("boot again");
        prop_assert_eq!(again.quarantined, 0);
        prop_assert_eq!(again.records.len(), rec.records.len());
    }

    #[test]
    fn snapshot_plus_tail_replay(
        records in payloads(),
        split_seed: u64,
        state in prop::collection::vec(0u8..=255, 0..300),
    ) {
        let dir = StateDir::new("snapshot");
        let split = (split_seed as usize) % records.len();

        let (mut wal, _) = Wal::open(dir.path()).expect("open");
        for r in records.iter().take(split) {
            wal.append(r).expect("append pre-snapshot");
        }
        let snap_seq = wal.snapshot(&state).expect("snapshot");
        assert_eq!(snap_seq, split as u64);
        for r in records.iter().skip(split) {
            wal.append(r).expect("append post-snapshot");
        }
        wal.sync().expect("sync");
        drop(wal);

        let (_, rec) = Wal::open(dir.path()).expect("recover");
        prop_assert_eq!(rec.quarantined, 0);
        let snap = rec.snapshot.expect("snapshot survives");
        prop_assert_eq!(snap.seq, split as u64);
        prop_assert_eq!(&snap.payload, &state);
        let got: Vec<&Vec<u8>> = rec.records.iter().map(|(_, p)| p).collect();
        let want: Vec<&Vec<u8>> = records.iter().skip(split).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(rec.next_seq, records.len() as u64);
    }

    #[test]
    fn foreign_version_snapshots_are_quarantined(
        records in payloads(),
        state in prop::collection::vec(0u8..=255, 1..100),
    ) {
        let dir = StateDir::new("foreign");
        let (mut wal, _) = Wal::open(dir.path()).expect("open");
        for r in &records {
            wal.append(r).expect("append");
        }
        wal.snapshot(&state).expect("snapshot");
        drop(wal);

        let snap = fault::newest_snapshot(dir.path())
            .expect("list dir")
            .expect("snapshot exists");
        fault::foreign_snapshot_version(&snap).expect("stamp foreign version");

        // The snapshot is unreadable and the pre-snapshot WAL was pruned,
        // so the only sound recovery is an empty state — quarantined and
        // counted, with zero panics.
        let (_, rec) = Wal::open(dir.path()).expect("recover");
        prop_assert!(rec.snapshot.is_none());
        prop_assert!(rec.quarantined >= 1);
        prop_assert!(rec.quarantined_bytes > 0);
        prop_assert_eq!(rec.records.len(), 0);
    }
}

#[test]
fn oversized_records_are_rejected_before_any_write() {
    let dir = StateDir::new("oversize");
    let (mut wal, _) = Wal::open(dir.path()).expect("open");
    let too_big = vec![0u8; MAX_RECORD_BYTES as usize + 1];
    let err = wal
        .append(&too_big)
        .expect_err("oversized append must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // The refused record leaves no trace: recovery sees an empty log.
    drop(wal);
    let (_, rec) = Wal::open(dir.path()).expect("reopen");
    assert_eq!(rec.records.len(), 0);
    assert_eq!(rec.quarantined, 0);
}

#[test]
fn torn_tail_is_seed_deterministic() {
    let mk = |tag: &str| {
        let dir = StateDir::new(tag);
        write_all(dir.path(), &[vec![1u8; 40], vec![2u8; 40], vec![3u8; 40]]);
        dir
    };
    let a = mk("torn-a");
    let b = mk("torn-b");
    let chopped_a = fault::torn_tail(a.path(), 0x5EED).expect("chop a");
    let chopped_b = fault::torn_tail(b.path(), 0x5EED).expect("chop b");
    assert_eq!(chopped_a, chopped_b, "same seed, same crash point");
    assert!(chopped_a >= 1);

    let (_, ra) = Wal::open(a.path()).expect("recover a");
    let (_, rb) = Wal::open(b.path()).expect("recover b");
    assert_eq!(ra.records, rb.records);
    assert_eq!(ra.quarantined, rb.quarantined);
}

#[test]
fn handle_counters_track_this_handle_not_the_directory() {
    let dir = StateDir::new("counters");
    // Explicit fsync cadence of 1: every append hits the sync_data path.
    let (mut wal, _) = Wal::open_with(dir.path(), 1).expect("open");
    for i in 0..5u8 {
        wal.append(&[i; 16]).expect("append");
    }
    wal.snapshot(&[9u8; 32]).expect("snapshot");
    assert_eq!(wal.records_written(), 5);
    assert_eq!(wal.snapshots_written(), 1);
    drop(wal);

    // A fresh handle on the same dir starts its own tally at zero even
    // though the directory already holds a snapshot and pruned history.
    let (mut wal, rec) = Wal::open_with(dir.path(), 1).expect("reopen");
    assert!(rec.snapshot.is_some());
    assert_eq!(wal.records_written(), 0);
    assert_eq!(wal.snapshots_written(), 0);
    wal.append(&[7u8; 16]).expect("append after reopen");
    assert_eq!(wal.records_written(), 1);
}
