//! Shared experiment machinery: scale presets, replication fan-out, CSV output and
//! console tables.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ml::stats::{bands_per_iteration, Band};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale replications/iterations (minutes per figure).
    Full,
    /// Down-scaled smoke run (seconds per figure) used by tests and `run_all --quick`.
    Quick,
}

impl Scale {
    /// Pick `full` or `quick` by scale.
    pub fn pick(self, full: usize, quick: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }

    /// Parse from CLI args: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// A labelled experiment outcome: headline key/value rows plus the CSV files written.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Experiment name (matches the binary and the CSV stem).
    pub name: String,
    /// Headline rows, printed and recorded in EXPERIMENTS.md.
    pub rows: Vec<(String, String)>,
    /// CSV files written.
    pub files: Vec<PathBuf>,
}

impl Summary {
    /// Start a summary.
    pub fn new(name: &str) -> Summary {
        Summary {
            name: name.to_string(),
            ..Summary::default()
        }
    }

    /// Add a headline row.
    pub fn row(&mut self, key: &str, value: impl std::fmt::Display) {
        self.rows.push((key.to_string(), value.to_string()));
    }

    /// Render to the console.
    pub fn print(&self) {
        println!("\n== {} ==", self.name);
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &self.rows {
            println!("  {k:<width$}  {v}");
        }
        for f in &self.files {
            println!("  -> {}", f.display());
        }
    }
}

/// Directory experiment output lands in (`results/` at the workspace root, or
/// `$ROCKHOPPER_RESULTS`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("ROCKHOPPER_RESULTS") {
        return PathBuf::from(d);
    }
    // The binaries run from the workspace root via `cargo run`; fall back to CWD.
    let candidate = Path::new("results");
    PathBuf::from(candidate)
}

/// Write a CSV file into the results directory; returns its path.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::with_capacity(rows.len() * 32);
    out.push_str(header);
    out.push('\n');
    for r in rows {
        let line: Vec<String> = r.iter().map(|v| format!("{v}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    let mut f = fs::File::create(&path).expect("results dir is writable");
    f.write_all(out.as_bytes()).expect("csv write");
    path
}

/// Run `n_runs` independent replications of a per-iteration metric trace, fanned out
/// over threads, and fold them into per-iteration (p5, median, p95) bands — the
/// summary every convergence figure in the paper plots.
pub fn replicate<F>(n_runs: usize, f: F) -> Vec<Band>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    bands_per_iteration(&replicate_raw(n_runs, f))
}

/// As [`replicate`], returning the raw per-run traces.
///
/// Each replication is an index-addressed rockpool task seeded by its run
/// index, so the trace matrix is bit-identical for every `RH_THREADS`
/// (DESIGN.md §7) — the pool only changes how long the fan-out takes.
pub fn replicate_raw<F>(n_runs: usize, f: F) -> Vec<Vec<f64>>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    rockpool::Pool::from_env().run(n_runs, |i| f(i as u64))
}

/// CSV rows for a band series: `iteration, p5, p50, p95`.
pub fn band_rows(bands: &[Band]) -> Vec<Vec<f64>> {
    bands
        .iter()
        .enumerate()
        .map(|(t, b)| vec![t as f64, b.p5, b.p50, b.p95])
        .collect()
}

/// Best-so-far transform: `out[t] = min(xs[0..=t])`.
pub fn best_so_far(xs: &[f64]) -> Vec<f64> {
    let mut best = f64::INFINITY;
    xs.iter()
        .map(|&x| {
            best = best.min(x);
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Full.pick(100, 5), 100);
        assert_eq!(Scale::Quick.pick(100, 5), 5);
    }

    #[test]
    fn replicate_is_deterministic_and_ordered() {
        let a = replicate_raw(7, |seed| vec![seed as f64, seed as f64 * 2.0]);
        assert_eq!(a.len(), 7);
        for (i, t) in a.iter().enumerate() {
            assert_eq!(t[0], i as f64);
        }
        let bands = replicate(7, |seed| vec![seed as f64]);
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].p50, 3.0);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let b = best_so_far(&[5.0, 3.0, 4.0, 1.0, 2.0]);
        assert_eq!(b, vec![5.0, 3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn csv_writes_to_results_dir() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let p = write_csv("harness_selftest", "a,b", &[vec![1.0, 2.0]]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }

    #[test]
    fn summary_rows_accumulate() {
        let mut s = Summary::new("t");
        s.row("k", 1.5);
        assert_eq!(s.rows[0], ("k".to_string(), "1.5".to_string()));
    }
}
