//! End-to-end audit of the rockindex cold-start serving mode (tier 1):
//!
//! 1. **Zero-execution transfer + handoff** — a warm donor backend's state is
//!    harvested into a durable corpus, the corpus is killed and recovered,
//!    and a cold backend serves the donor's best point tagged `transferred`
//!    on its very first request; once a real report arrives, the handoff
//!    seeds the tuner (trust-discounted) and suggestions flip to `explored`.
//! 2. **Shard invariance** — the transferred answer is bit-identical across
//!    shard counts {1, 2, 8}, because it is a pure function of
//!    `(index, embedding)`.
//! 3. **Concept drift** — a mid-stream data-scale shift (sparksim
//!    `ScaleShift`) moves the recurring job's embedding, the
//!    `DriftDetector` fires exactly at the shift, and re-ranking against
//!    the index swaps in the right donor — the stale neighbor set really
//!    was invalidated.

use std::sync::Arc;

use optimizers::env::{Environment, QueryEnv};
use pipeline::{shard_of, AutotuneBackend, Corpus, KnnIndex, Provenance, Storage, TransferPolicy};
use rockindex::drift::DriftDetector;
use sparksim::fault::FaultSpec;
use sparksim::noise::NoiseSpec;
use sparksim::plan::PlanNode;
use sparksim::scenario::ScaleShift;

const QUERY: usize = 6;
const SCALE_FACTOR: f64 = 5.0;

fn fresh_env(seed: u64) -> QueryEnv {
    QueryEnv::tpch(
        QUERY,
        SCALE_FACTOR,
        NoiseSpec {
            fluctuation: 0.1,
            spike: 0.05,
        },
        seed,
    )
}

/// One request through the backend: suggest, execute, report back.
fn drive(backend: &mut AutotuneBackend, env: &mut QueryEnv, seed: u64, t: usize) {
    let sig = env.signature();
    let ctx = env.context();
    let point = backend.suggest("prod", sig, &ctx);
    let conf = env.space().to_conf(&point);
    let app_id = format!("app-{t}");
    let run_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t as u64);
    let (_outcome, events) = env.sim.run_and_events(
        &app_id,
        "artifact-coldstart",
        sig,
        &env.plan,
        &conf,
        ctx.embedding.clone(),
        run_seed,
        &FaultSpec::none(),
    );
    backend.ingest("prod", &app_id, &events);
    let _ = env.run(&point);
}

/// Warm a donor backend over `warm` requests and return its harvest.
fn donor_harvest(donor_seed: u64, warm: usize) -> Vec<pipeline::CorpusEntry> {
    let mut env = fresh_env(donor_seed);
    let mut donor = AutotuneBackend::new(Arc::new(Storage::new()), None, donor_seed);
    for t in 0..warm {
        drive(&mut donor, &mut env, donor_seed, t);
    }
    let harvest = donor.harvest_corpus("prod");
    assert!(!harvest.is_empty(), "the donor learned nothing to harvest");
    harvest
}

#[test]
fn transfer_serves_the_donor_best_point_then_hands_off_to_the_tuner() {
    let harvest = donor_harvest(0xD0_0001, 10);
    let signature = fresh_env(0xC0_0001).signature();
    let donor_best = harvest
        .iter()
        .find(|e| e.signature == signature)
        .expect("the donor tuned the same recurring query")
        .best_point
        .clone();

    // The corpus lineage survives a kill: write, drop, recover from disk.
    let dir = std::env::temp_dir().join(format!("rockhopper-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("corpus dir creates");
    {
        let (mut corpus, _) = Corpus::open(&dir).expect("corpus opens fresh");
        for entry in &harvest {
            corpus.upsert(entry.clone()).expect("corpus upserts");
        }
        corpus.sync().expect("corpus syncs");
    } // <- the "process" dies here; only the WAL + snapshots survive.
    let (corpus, recovery) = Corpus::open(&dir).expect("corpus recovers");
    assert_eq!(recovery.quarantined, 0, "clean lineage quarantined records");
    assert_eq!(corpus.len(), harvest.len(), "recovery lost entries");
    let index = Arc::new(KnnIndex::build(&corpus));

    // A cold backend with the recovered index: the first suggest is the
    // donor's best point, served with zero executions and no RNG draw.
    let mut env = fresh_env(0xC0_0001);
    let ctx = env.context();
    let mut backend = AutotuneBackend::new(Arc::new(Storage::new()), None, 0xC0_0001)
        .with_retrieval(Arc::clone(&index), TransferPolicy::default());
    let (point, provenance) = backend.suggest_tagged("prod", signature, &ctx);
    assert_eq!(provenance, Provenance::Transferred);
    assert_eq!(point, donor_best, "transfer must serve the donor's best");
    assert_eq!(backend.dashboard().counters().cold_hits, 1);

    // Still cold (no report yet): the transfer repeats bit-identically.
    let (again, provenance) = backend.suggest_tagged("prod", signature, &ctx);
    assert_eq!(
        (again, provenance),
        (point.clone(), Provenance::Transferred)
    );

    // A real report arrives: the handoff seeds the tuner with the
    // trust-discounted donor prior, and suggestions flip to `explored`.
    drive(&mut backend, &mut env, 0xC0_0001, 0);
    assert_eq!(backend.dashboard().counters().transfer_seeded, 1);
    let (_, provenance) = backend.suggest_tagged("prod", signature, &env.context());
    assert_eq!(
        provenance,
        Provenance::Explored,
        "a warm signature must never consult the index"
    );

    // Determinism across the recovery: an index built from the recovered
    // corpus serves the same bytes a pre-kill index would — both are pure
    // functions of the same entry set.
    let mut pre_kill = Corpus::in_memory();
    for entry in &harvest {
        pre_kill.upsert(entry.clone()).expect("in-memory upserts");
    }
    let pre_kill_index = KnnIndex::build(&pre_kill);
    let mut twin = AutotuneBackend::new(Arc::new(Storage::new()), None, 0xC0_0001)
        .with_retrieval(Arc::new(pre_kill_index), TransferPolicy::default());
    let (twin_point, twin_prov) = twin.suggest_tagged("prod", signature, &ctx);
    assert_eq!((twin_point, twin_prov), (point, Provenance::Transferred));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transferred_answers_are_bit_identical_across_shard_counts() {
    let harvest = donor_harvest(0xD0_0002, 8);
    let mut corpus = Corpus::in_memory();
    for entry in harvest {
        corpus.upsert(entry).expect("in-memory upserts");
    }
    let index = Arc::new(KnnIndex::build(&corpus));

    let env = fresh_env(0xC0_0002);
    let signature = env.signature();
    let ctx = env.context();

    let mut answers = Vec::new();
    for shards in [1usize, 2, 8] {
        let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, 0xC0_0002)
            .with_retrieval(Arc::clone(&index), TransferPolicy::default());
        let mut split = backend.split_into_shards(shards, 0);
        let owner = shard_of(signature, shards);
        let (point, provenance) = split[owner].suggest_tagged("prod", signature, &ctx);
        assert_eq!(
            provenance,
            Provenance::Transferred,
            "{shards}-shard split lost the transfer"
        );
        answers.push(point);
    }
    assert_eq!(answers[0], answers[1], "1-shard vs 2-shard answers differ");
    assert_eq!(answers[0], answers[2], "1-shard vs 8-shard answers differ");
}

#[test]
fn a_data_scale_shift_invalidates_the_neighbor_set_and_reranking_recovers() {
    // The recurring job's template: sized so an 8x data shift crosses the
    // virtual-op input buckets and visibly moves the embedding.
    let template = PlanNode::scan("lineitem", 2.0e5, 100.0)
        .filter(0.1)
        .hash_aggregate(0.01);
    let shift = ScaleShift::new(template.clone(), 1.0, 8.0, 5);
    let embedder = embedding::WorkloadEmbedder::virtual_ops();
    let job_signature = embedding::query_signature(&template);

    // Two donors in the corpus: one tuned at the small scale, one at the
    // large scale, with distinct best points.
    const SMALL_DONOR: u64 = 101;
    const LARGE_DONOR: u64 = 202;
    let mut corpus = Corpus::in_memory();
    for (signature, scale, best_point) in [
        (SMALL_DONOR, shift.scale_at(0), vec![0.1, 0.2, 0.3]),
        (
            LARGE_DONOR,
            shift.scale_at(shift.shift_at),
            vec![0.7, 0.8, 0.9],
        ),
    ] {
        corpus
            .upsert(pipeline::CorpusEntry {
                signature,
                embedding: embedder.embed(&template.scaled(scale)),
                best_point,
                observations: 16,
                best_elapsed_ms: 100.0,
                mean_elapsed_ms: 120.0,
                data_size: scale,
            })
            .expect("in-memory upserts");
    }
    let index = KnnIndex::build(&corpus);
    let policy = TransferPolicy::default();

    // Serve the recurring job across the shift, re-ranking only when the
    // detector fires — the production cadence: rank once, trust the cached
    // neighbor until the embedding moves.
    let mut detector = DriftDetector::new(0.2);
    let mut cached = policy
        .lookup(&index, &embedder.embed(&shift.plan_at(0)))
        .expect("the small donor covers the pre-shift embedding");
    let mut drift_iterations = Vec::new();
    for t in 0..10u32 {
        let embedding = embedder.embed(&shift.plan_at(t));
        let signal = detector.observe(job_signature, &embedding);
        if signal.drifted() {
            drift_iterations.push(t);
            let stale = cached.clone();
            cached = policy
                .lookup(&index, &embedding)
                .expect("the large donor covers the post-shift embedding");
            assert_ne!(
                stale.signature, cached.signature,
                "the shift must actually invalidate the cached neighbor"
            );
        }
        let expected = if shift.shifted(t) {
            LARGE_DONOR
        } else {
            SMALL_DONOR
        };
        assert_eq!(
            cached.signature, expected,
            "iteration {t}: wrong transfer source after drift handling"
        );
    }
    assert_eq!(
        drift_iterations,
        vec![shift.shift_at],
        "the detector must fire exactly once, at the shift iteration"
    );
    assert_eq!(
        detector.tracked(),
        1,
        "one recurring signature means one tracked baseline"
    );
}
