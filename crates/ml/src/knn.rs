//! Distance-weighted k-nearest-neighbour regression. Cheap, assumption-free fallback
//! surrogate used when the observation window is too small for kernel machines, and as
//! a sanity baseline in the surrogate-accuracy experiments.

use crate::linalg::sq_dist;
use crate::scaler::StandardScaler;
use crate::{validate_xy, MlError, Regressor};

/// k-NN regressor with inverse-distance weighting in standardized feature space.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    x_train: Vec<Vec<f64>>,
    y_train: Vec<f64>,
    scaler: Option<StandardScaler>,
}

impl KnnRegressor {
    /// Create an unfitted model using `k` neighbours (`k == 0` is coerced to 1).
    pub fn new(k: usize) -> Self {
        KnnRegressor {
            k: k.max(1),
            x_train: Vec::new(),
            y_train: Vec::new(),
            scaler: None,
        }
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        let scaler = StandardScaler::fit(x);
        self.x_train = scaler.transform(x);
        self.y_train = y.to_vec();
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 0.0;
        };
        let xt = scaler.transform_row(x);
        let mut dists: Vec<(f64, f64)> = self
            .x_train
            .iter()
            .zip(&self.y_train)
            .map(|(xi, &yi)| (sq_dist(&xt, xi), yi))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        dists.truncate(self.k);

        // Exact hit: return that target directly (avoids division by zero).
        if let Some(&(d, y)) = dists.first() {
            if d < 1e-18 {
                return y;
            }
            let mut num = 0.0;
            let mut den = 0.0;
            for &(d2, yi) in &dists {
                let w = 1.0 / d2.sqrt();
                num += w * yi;
                den += w;
            }
            num / den
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_training_point_returns_its_target() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![10.0, 20.0, 30.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[1.0]), 20.0);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let x = vec![vec![0.0], vec![2.0]];
        let y = vec![0.0, 20.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[1.0]);
        assert!((p - 10.0).abs() < 1e-9, "midpoint should average: {p}");
    }

    #[test]
    fn k_larger_than_dataset_is_fine() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 3.0];
        let mut m = KnnRegressor::new(50);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[0.5]);
        assert!(p > 1.0 && p < 3.0);
    }

    #[test]
    fn unfitted_predicts_zero() {
        assert_eq!(KnnRegressor::new(3).predict(&[0.0]), 0.0);
    }

    #[test]
    fn nearer_neighbours_weigh_more() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0.0, 100.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y).unwrap();
        // Query near x=0 should be pulled toward 0.
        assert!(m.predict(&[1.0]) < 50.0);
    }
}
