//! Property-based tests for the simulator's planning and scheduling invariants.

use proptest::prelude::*;

use sparksim::cluster::ClusterSpec;
use sparksim::config::{SparkConf, MIB};
use sparksim::cost::CostParams;
use sparksim::noise::NoiseSpec;
use sparksim::physical::plan_physical;
use sparksim::plan::PlanNode;
use sparksim::scheduler::schedule;
use sparksim::simulator::Simulator;

/// A conf drawn from the legal ranges.
fn conf_strategy() -> impl Strategy<Value = SparkConf> {
    (
        1.0..2048.0f64,    // maxPartitionBytes, MiB
        -1.0..1024.0f64,   // broadcast threshold, MiB (negative disables)
        1.0..8192.0f64,    // shuffle partitions
        1.0..64.0f64,      // executors
        512.0..65536.0f64, // memory MB
    )
        .prop_map(|(mpb, bc, sp, ex, mem)| {
            let mut c = SparkConf::default();
            c.max_partition_bytes = mpb * MIB;
            c.auto_broadcast_join_threshold = bc * MIB;
            c.shuffle_partitions = sp;
            c.executor_instances = ex;
            c.executor_memory_mb = mem;
            c
        })
}

/// A small join/aggregate plan with variable sizes.
fn plan_strategy() -> impl Strategy<Value = PlanNode> {
    (
        1e3..1e9f64,   // fact rows
        1e1..1e7f64,   // dim rows
        0.001..1.0f64, // filter selectivity
        1e-7..0.5f64,  // group ratio
    )
        .prop_map(|(fact, dim, sel, group)| {
            PlanNode::scan("fact", fact, 120.0)
                .filter(sel)
                .fk_join(PlanNode::scan("dim", dim, 80.0), 0.8)
                .hash_aggregate(group)
                .sort()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_legal_conf_schedules_any_plan_finitely(
        conf in conf_strategy(),
        plan in plan_strategy(),
    ) {
        conf.validate().expect("strategy stays in legal ranges");
        let phys = plan_physical(&plan, &conf);
        prop_assert!(!phys.stages.is_empty());
        prop_assert!(phys.total_tasks() >= 1);
        let t = schedule(&phys, &conf, &ClusterSpec::medium(), &CostParams::default());
        prop_assert!(t.total_ms.is_finite() && t.total_ms > 0.0);
        for st in &t.stages {
            prop_assert!(st.stage_ms.is_finite() && st.stage_ms > 0.0);
            prop_assert!(st.waves >= 1);
        }
    }

    #[test]
    fn join_count_is_conf_independent(
        a in conf_strategy(),
        b in conf_strategy(),
        plan in plan_strategy(),
    ) {
        // Strategy may differ (broadcast vs sort-merge) but total join count cannot.
        let pa = plan_physical(&plan, &a);
        let pb = plan_physical(&plan, &b);
        prop_assert_eq!(pa.join_strategies.len(), pb.join_strategies.len());
    }

    #[test]
    fn raising_broadcast_threshold_never_removes_broadcasts(
        conf in conf_strategy(),
        plan in plan_strategy(),
    ) {
        use sparksim::physical::JoinStrategy;
        let mut higher = conf.clone();
        higher.auto_broadcast_join_threshold =
            conf.auto_broadcast_join_threshold.max(0.0) * 2.0 + 10.0 * MIB;
        let low = plan_physical(&plan, &conf).joins_with(JoinStrategy::BroadcastHash);
        let high = plan_physical(&plan, &higher).joins_with(JoinStrategy::BroadcastHash);
        prop_assert!(high >= low, "broadcasts {low} -> {high}");
    }

    #[test]
    fn smaller_partitions_never_reduce_scan_tasks(
        plan in plan_strategy(),
        mpb in 2.0..2048.0f64,
    ) {
        let mut coarse = SparkConf::default();
        coarse.max_partition_bytes = mpb * MIB;
        let mut fine = SparkConf::default();
        fine.max_partition_bytes = mpb * MIB / 2.0;
        let tc = plan_physical(&plan, &coarse).stages[0].tasks;
        let tf = plan_physical(&plan, &fine).stages[0].tasks;
        prop_assert!(tf >= tc);
    }

    #[test]
    fn observed_time_bounds_true_time(
        conf in conf_strategy(),
        plan in plan_strategy(),
        seed: u64,
    ) {
        let sim = Simulator::default_pool(NoiseSpec::high());
        let run = sim.execute(&plan, &conf, seed);
        prop_assert!(run.metrics.elapsed_ms >= run.metrics.true_ms);
        // Eq (8) bound: spike doubles once; |ε| is unbounded, but 6σ covers any
        // plausible draw — flag absurd multipliers as model bugs.
        prop_assert!(run.metrics.elapsed_ms <= run.metrics.true_ms * 2.0 * 8.0);
    }

    #[test]
    fn metrics_are_internally_consistent(
        conf in conf_strategy(),
        plan in plan_strategy(),
    ) {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let run = sim.execute(&plan, &conf, 0);
        prop_assert_eq!(run.metrics.num_stages, run.physical.stages.len());
        prop_assert_eq!(run.metrics.num_tasks, run.physical.total_tasks());
        prop_assert_eq!(
            run.metrics.broadcast_joins + run.metrics.sort_merge_joins,
            run.physical.join_strategies.len()
        );
        prop_assert!((run.metrics.input_rows - plan.leaf_input_rows()).abs() < 1.0);
    }

    #[test]
    fn event_log_roundtrips_for_any_run(
        conf in conf_strategy(),
        plan in plan_strategy(),
    ) {
        let sim = Simulator::default_pool(NoiseSpec::low());
        let run = sim.execute(&plan, &conf, 3);
        let events = sim.events_for_run("app", "art", 1, &plan, &conf, vec![1.0], &run);
        let doc = sparksim::event::to_jsonl(&events);
        let back = sparksim::event::from_jsonl(&doc);
        prop_assert_eq!(back.len(), events.len());
        // Floats may move by 1 ULP on the first serialize/parse; after that the
        // representation must be stable (what the ETL actually relies on).
        let doc2 = sparksim::event::to_jsonl(&back);
        let back2 = sparksim::event::from_jsonl(&doc2);
        prop_assert_eq!(back2, back);
    }
}
