//! rockdur — durable learned state for the Rockhopper serving stack.
//!
//! A std-only persistence layer with two cooperating pieces (DESIGN.md §10):
//!
//! * an **append-only WAL** of backend events. Each record is
//!   length-prefixed and CRC-32-checksummed; each segment file opens with a
//!   versioned magic so a foreign-format file can never be half-parsed.
//!   Appends are allocation-free (the encode buffer is reused) and fsync'd
//!   in batches.
//! * **compacted snapshots** of the full backend state, written
//!   tmp-then-rename with their own versioned, checksummed header. A
//!   snapshot at sequence `S` makes every WAL record below `S` redundant;
//!   older segments and snapshots are pruned after the rename lands.
//!
//! Recovery is **prefix-disciplined**: boot state is the newest valid
//! snapshot plus the longest contiguous run of valid records after it.
//! Anything else — torn tails, bit flips, truncated headers, foreign
//! versions, gaps between segments — is *quarantined* (counted, preserved
//! in `*.quarantined` sidecars, never replayed) exactly like the ETL path
//! quarantines malformed event-log lines. Corruption is data, not an
//! error: recovery never panics and never propagates `Err` for bad bytes,
//! only for real I/O failures.
//!
//! Determinism contract: replaying `Recovery::records` in order onto the
//! state decoded from `Recovery::snapshot` must rebuild the pre-crash
//! state bit-for-bit. The crate itself is format-only — what the payloads
//! mean is the caller's business (`pipeline::service` logs backend events
//! in backend-thread order, which serializes them by construction).

pub mod crc;
pub mod fault;
pub mod wal;

pub use wal::{Recovery, Snapshot, Wal, MAX_RECORD_BYTES, SNAPSHOT_VERSION};
