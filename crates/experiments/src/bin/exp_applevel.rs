//! Regenerates the `exp_applevel` extension experiment. Pass `--quick` for a smoke
//! run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_applevel::run(scale).print();
}
