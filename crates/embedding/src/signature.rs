//! Query signatures (paper §4.2): one stable id per distinct execution plan, keying
//! the per-query fine-tuned surrogate models.
//!
//! A signature hashes plan *structure* — operator types, their parameters' coarse
//! identity, table names and tree shape — but **not** cardinality estimates, so a
//! recurrent query keeps its signature while its data grows or shrinks run-to-run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use sparksim::plan::{Operator, PlanNode};

/// Compute the stable signature of a plan.
pub fn query_signature(plan: &PlanNode) -> u64 {
    let mut h = DefaultHasher::new();
    hash_node(plan, &mut h);
    h.finish()
}

fn hash_node(node: &PlanNode, h: &mut DefaultHasher) {
    node.op.type_name().hash(h);
    // Structural parameters that define the query text, but never cardinalities.
    match &node.op {
        Operator::TableScan { table, .. } => table.hash(h),
        Operator::Filter { selectivity } => quantized(*selectivity).hash(h),
        Operator::Project { width_factor } => quantized(*width_factor).hash(h),
        Operator::HashAggregate { group_ratio } => quantized(*group_ratio).hash(h),
        // Join selectivity is *derived from cardinalities* (an FK join's selectivity
        // is fanout / dimension rows), so hashing it would split one recurrent query
        // into a new signature every time its data grows. Join identity comes from
        // tree shape and the children's structure.
        Operator::Join { .. } => {}
        Operator::Limit { n } => (*n as u64).hash(h),
        Operator::Sort | Operator::Union => {}
    }
    node.children.len().hash(h);
    for c in &node.children {
        hash_node(c, h);
    }
}

/// Quantize a parameter so float jitter does not split signatures.
fn quantized(x: f64) -> u64 {
    // rhlint:allow(lossy-cast): two's-complement reinterpretation is the intended, bijective hash input
    (x * 1e6).round() as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_plan_same_signature() {
        let a = PlanNode::scan("t", 100.0, 8.0).filter(0.5);
        let b = PlanNode::scan("t", 100.0, 8.0).filter(0.5);
        assert_eq!(query_signature(&a), query_signature(&b));
    }

    #[test]
    fn signature_survives_data_scaling() {
        // The defining property: a recurrent query keeps its identity as data grows.
        let p = PlanNode::scan("t", 100.0, 8.0)
            .filter(0.5)
            .hash_aggregate(0.01);
        assert_eq!(query_signature(&p), query_signature(&p.scaled(100.0)));
    }

    #[test]
    fn different_tables_differ() {
        let a = PlanNode::scan("orders", 100.0, 8.0);
        let b = PlanNode::scan("lineitem", 100.0, 8.0);
        assert_ne!(query_signature(&a), query_signature(&b));
    }

    #[test]
    fn different_predicates_differ() {
        let a = PlanNode::scan("t", 100.0, 8.0).filter(0.5);
        let b = PlanNode::scan("t", 100.0, 8.0).filter(0.1);
        assert_ne!(query_signature(&a), query_signature(&b));
    }

    #[test]
    fn different_shapes_differ() {
        let a = PlanNode::scan("t", 100.0, 8.0).filter(0.5).sort();
        let b = PlanNode::scan("t", 100.0, 8.0).sort().filter(0.5);
        assert_ne!(query_signature(&a), query_signature(&b));
    }

    #[test]
    fn tpch_signatures_are_distinct() {
        let sigs: std::collections::HashSet<u64> = workloads::tpch::all_queries(1.0)
            .iter()
            .map(|(_, p)| query_signature(p))
            .collect();
        assert_eq!(sigs.len(), workloads::tpch::QUERY_COUNT);
    }
}
