//! Failure injection — the faults that dominate production Spark and that the
//! paper's guardrail (§4.3) and client/backend split (§5) exist to survive:
//!
//! - **OOM kills**: a stage whose per-task working set exceeds a *hard ceiling*
//!   above the spill threshold does not spill its way through — the executor is
//!   killed and the run fails. This is what makes aggressively tuned-down memory
//!   configurations *dangerous*, not merely slow.
//! - **Executor loss**: executors die with a hazard proportional to how long the
//!   run holds them. Lost tasks re-queue and re-execute ([`crate::scheduler`]);
//!   lost shuffle map output is recomputed. Too many losses abort the run.
//! - **Telemetry loss/corruption**: event-log lines are dropped or truncated in
//!   flight, so a run can succeed yet never be observed (a *censored* outcome),
//!   and the ETL must quarantine garbage instead of trusting it.
//!
//! Every fault decision is a pure function of the run's seed: the fault stream
//! is drawn from a dedicated RNG (`seed ^ FAULT_SALT`) so the *noise* draw of a
//! run is bit-identical with faults on or off, and the same seed replays the
//! same failure sequence — the property `tests/determinism.rs` locks in.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::config::SparkConf;
use crate::cost::CostParams;
use crate::memory::evaluate_stage;
use crate::physical::PhysicalPlan;
use crate::scheduler::{executor_loss_retry, schedule, QueryTiming};
use crate::simulator::QueryRun;

/// Salt mixed into the run seed for the fault stream, so fault draws never
/// perturb the noise draws of the same run.
const FAULT_SALT: u64 = 0xFA17_5EED_0BAD_C0DE;

/// Fault-injection parameters. [`FaultSpec::none`] reproduces the benign
/// simulator exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// OOM hard ceiling as a multiple of the per-task execution-memory budget:
    /// a stage whose per-task working set exceeds `oom_ceiling × budget` is
    /// killed instead of spilling. `f64::INFINITY` disables OOM kills.
    pub oom_ceiling: f64,
    /// Executor-loss hazard per executor-minute of stage runtime.
    pub executor_loss_per_min: f64,
    /// Executor losses one run survives; one more aborts it.
    pub max_executor_losses: u32,
    /// Probability that a run's completion record (`QueryEnd`) is lost in
    /// flight — the run succeeded but nobody can observe its time.
    pub telemetry_loss: f64,
    /// Per-line probability that a shipped event-log line arrives truncated or
    /// garbled (see [`mangle_jsonl`]).
    pub telemetry_corruption: f64,
}

impl FaultSpec {
    /// No faults: [`crate::Simulator::execute_outcome`] degenerates to
    /// [`crate::Simulator::execute`].
    pub fn none() -> FaultSpec {
        FaultSpec {
            oom_ceiling: f64::INFINITY,
            executor_loss_per_min: 0.0,
            max_executor_losses: u32::MAX,
            telemetry_loss: 0.0,
            telemetry_corruption: 0.0,
        }
    }

    /// Production-like background failure rates: rare losses, a generous OOM
    /// ceiling, sub-percent telemetry trouble.
    pub fn production() -> FaultSpec {
        FaultSpec {
            oom_ceiling: 4.0,
            executor_loss_per_min: 0.004,
            max_executor_losses: 3,
            telemetry_loss: 0.01,
            telemetry_corruption: 0.005,
        }
    }

    /// Chaos testing: a tight OOM ceiling, frequent executor churn and lossy
    /// telemetry — the regime the CI chaos step runs the suite under.
    pub fn chaos() -> FaultSpec {
        FaultSpec {
            oom_ceiling: 2.0,
            executor_loss_per_min: 0.08,
            max_executor_losses: 2,
            telemetry_loss: 0.15,
            telemetry_corruption: 0.10,
        }
    }

    /// Whether this spec can produce any fault at all.
    pub fn is_none(&self) -> bool {
        !self.oom_ceiling.is_finite()
            && self.executor_loss_per_min == 0.0
            && self.telemetry_loss == 0.0
            && self.telemetry_corruption == 0.0
    }

    /// The RNG that drives every fault decision for a run seed.
    pub fn rng_for(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ FAULT_SALT)
    }
}

/// Why a run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// A stage's per-task working set blew through the OOM hard ceiling.
    OutOfMemory {
        /// The stage that was killed.
        stage_id: usize,
    },
    /// The run lost more executors than [`FaultSpec::max_executor_losses`].
    ExecutorsLost {
        /// Losses suffered before the abort.
        losses: u32,
    },
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::OutOfMemory { stage_id } => {
                write!(f, "OOM-killed in stage {stage_id}")
            }
            FailureReason::ExecutorsLost { losses } => {
                write!(f, "aborted after {losses} executor losses")
            }
        }
    }
}

/// What one simulated submission produced, as the observer sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run completed and its telemetry arrived intact.
    Success(QueryRun),
    /// The run was killed. `partial_time_ms` is the (noise-free) time it burned
    /// before dying — what a billing meter saw, never more than the run would
    /// have taken to complete under the same fault sequence.
    Failed {
        /// What killed it.
        reason: FailureReason,
        /// Time consumed before the kill, ms.
        partial_time_ms: f64,
    },
    /// The run completed but its completion record was lost in flight: the
    /// observer knows the submission happened and nothing else.
    Censored,
}

impl RunOutcome {
    /// The completed run, if the outcome is observable.
    pub fn success(&self) -> Option<&QueryRun> {
        match self {
            RunOutcome::Success(run) => Some(run),
            RunOutcome::Failed { .. } => None,
            RunOutcome::Censored => None,
        }
    }

    /// Whether the run completed and was observed.
    pub fn is_success(&self) -> bool {
        self.success().is_some()
    }

    /// Whether the run was killed.
    pub fn is_failed(&self) -> bool {
        match self {
            RunOutcome::Failed { .. } => true,
            RunOutcome::Success(_) => false,
            RunOutcome::Censored => false,
        }
    }
}

/// Per-stage fault bookkeeping from one faulty schedule pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFaultRecord {
    /// Stage id.
    pub stage_id: usize,
    /// Executor losses the stage suffered.
    pub executor_losses: u32,
    /// Tasks re-queued after losses (each re-executes to completion).
    pub retried_tasks: usize,
    /// Task attempts executed: original tasks plus retries. Never below the
    /// stage's task count — retries re-queue work, they never lose it.
    pub task_attempts: usize,
    /// Extra stage time attributable to retries and recomputation, ms.
    pub retry_ms: f64,
}

/// The result of pushing a physical plan through the fault model: the inflated
/// (noise-free) timing, what faults fired, and whether the run survived them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyTiming {
    /// Per-stage timing with retry inflation applied (all stages, even those
    /// the run never reached when it failed).
    pub timing: QueryTiming,
    /// Per-stage fault records, aligned with `timing.stages`.
    pub stage_faults: Vec<StageFaultRecord>,
    /// The failure that aborted the run, with the partial time burned.
    pub failure: Option<(FailureReason, f64)>,
    /// Whether the completion record was lost in flight (only meaningful when
    /// `failure` is `None`).
    pub censored: bool,
}

impl FaultyTiming {
    /// Total executor losses across the run.
    pub fn total_losses(&self) -> u32 {
        self.stage_faults.iter().map(|s| s.executor_losses).sum()
    }
}

/// Run the fault model over a planned query. Decisions are drawn from
/// [`FaultSpec::rng_for`]`(seed)` only — pure in `(plan, conf, spec, seed)`.
pub fn apply_faults(
    physical: &PhysicalPlan,
    conf: &SparkConf,
    cluster: &ClusterSpec,
    cost: &CostParams,
    spec: &FaultSpec,
    seed: u64,
) -> FaultyTiming {
    let mut rng = FaultSpec::rng_for(seed);
    let clean = schedule(physical, conf, cluster, cost);
    let executors = cluster.granted_executors(conf.executor_count());
    let slots = cluster.slots(executors);

    let mut stages = Vec::with_capacity(clean.stages.len());
    let mut stage_faults = Vec::with_capacity(clean.stages.len());
    let mut elapsed_ms = 0.0;
    let mut total_ms = 0.0;
    let mut losses_so_far: u32 = 0;
    let mut failure: Option<(FailureReason, f64)> = None;

    for (stage, timing) in physical.stages.iter().zip(&clean.stages) {
        let mut timing = timing.clone();
        let memory = evaluate_stage(stage, conf, cluster, cost);

        // 1. OOM hard ceiling: checked before any work beyond the first wave —
        //    the working set is allocated up front, so death is early. The kill
        //    point within the first wave is the only stochastic part.
        if failure.is_none() && memory.oom_kills(spec.oom_ceiling) {
            let frac: f64 = rng.random_range(0.05..0.95);
            let burned = elapsed_ms + frac * timing.task_ms.min(timing.stage_ms);
            failure = Some((FailureReason::OutOfMemory { stage_id: stage.id }, burned));
        }

        // 2. Executor loss: hazard grows with how long the stage holds the
        //    fleet. Survivors pay retry waves; one loss too many aborts.
        let mut record = StageFaultRecord {
            stage_id: stage.id,
            executor_losses: 0,
            retried_tasks: 0,
            task_attempts: stage.tasks.max(1),
            retry_ms: 0.0,
        };
        if spec.executor_loss_per_min > 0.0 {
            let hazard =
                spec.executor_loss_per_min * executors as f64 * (timing.stage_ms / 60_000.0);
            let p_loss = 1.0 - (-hazard).exp();
            let u: f64 = rng.random_range(0.0..1.0);
            if u < p_loss {
                // A second independent draw can lose another executor in very
                // long stages; beyond that the hazard is spent.
                let u2: f64 = rng.random_range(0.0..1.0);
                let losses = if u2 < p_loss * 0.5 { 2 } else { 1 };
                let retry = executor_loss_retry(stage, &timing, losses, slots, executors, cost);
                record.executor_losses = losses;
                record.retried_tasks = retry.retried_tasks;
                record.task_attempts = stage.tasks.max(1) + retry.retried_tasks;
                record.retry_ms = retry.extra_ms;
                timing.stage_ms += retry.extra_ms;
                if failure.is_none() {
                    losses_so_far += losses;
                    if losses_so_far > spec.max_executor_losses {
                        let frac: f64 = rng.random_range(0.1..1.0);
                        let burned = elapsed_ms + frac * timing.stage_ms;
                        failure = Some((
                            FailureReason::ExecutorsLost {
                                losses: losses_so_far,
                            },
                            burned,
                        ));
                    }
                }
            }
        }

        if failure.is_none() {
            elapsed_ms += timing.stage_ms;
        }
        total_ms += timing.stage_ms;
        stages.push(timing);
        stage_faults.push(record);
    }

    // 3. Telemetry: the completion record of a *successful* run can vanish.
    let censor_draw: f64 = rng.random_range(0.0..1.0);
    let censored = failure.is_none() && censor_draw < spec.telemetry_loss;

    FaultyTiming {
        timing: QueryTiming { stages, total_ms },
        stage_faults,
        failure,
        censored,
    }
}

/// Corrupt a JSON-lines event document in flight: each line is independently
/// dropped with probability [`FaultSpec::telemetry_loss`] or garbled (truncated
/// at a random byte, simulating a torn write) with probability
/// [`FaultSpec::telemetry_corruption`]. Returns the document as delivered plus
/// the number of lines dropped and corrupted.
pub fn mangle_jsonl(doc: &str, spec: &FaultSpec, rng: &mut StdRng) -> (String, usize, usize) {
    let mut out = String::with_capacity(doc.len());
    let (mut dropped, mut corrupted) = (0usize, 0usize);
    for line in doc.lines() {
        let u: f64 = rng.random_range(0.0..1.0);
        if u < spec.telemetry_loss {
            dropped += 1;
            continue;
        }
        if u < spec.telemetry_loss + spec.telemetry_corruption {
            corrupted += 1;
            let cut = if line.len() > 2 {
                let idx = rng.random_range(1..line.len());
                // Cut on a char boundary at or below the drawn byte index.
                let mut cut = idx;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                cut.max(1)
            } else {
                1
            };
            out.push_str(line.get(..cut).unwrap_or(line));
            out.push('\n');
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    (out, dropped, corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MIB;
    use crate::noise::NoiseSpec;
    use crate::physical::plan_physical;
    use crate::plan::PlanNode;
    use crate::simulator::Simulator;

    fn join_plan() -> PlanNode {
        let fact = PlanNode::scan("fact", 2e8, 200.0);
        let other = PlanNode::scan("other", 2e8, 200.0);
        fact.join(other, 1e-8)
    }

    fn small_plan() -> PlanNode {
        PlanNode::scan("t", 1e6, 100.0)
            .filter(0.5)
            .hash_aggregate(0.1)
    }

    #[test]
    fn no_faults_matches_clean_schedule() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&small_plan(), &conf);
        let faulty = apply_faults(&phys, &conf, &cluster, &cost, &FaultSpec::none(), 7);
        let clean = schedule(&phys, &conf, &cluster, &cost);
        assert_eq!(faulty.timing, clean);
        assert!(faulty.failure.is_none());
        assert!(!faulty.censored);
        assert_eq!(faulty.total_losses(), 0);
    }

    #[test]
    fn fault_decisions_are_pure_in_the_seed() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::small();
        let cost = CostParams::default();
        let phys = plan_physical(&join_plan(), &conf);
        let spec = FaultSpec::chaos();
        let a = apply_faults(&phys, &conf, &cluster, &cost, &spec, 99);
        let b = apply_faults(&phys, &conf, &cluster, &cost, &spec, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn starved_memory_config_is_oom_killed() {
        // A giant sort-merge join over tiny partitions with minimal memory:
        // the working set dwarfs the budget × ceiling and the run must die.
        let mut conf = SparkConf::default();
        conf.auto_broadcast_join_threshold = -1.0;
        conf.shuffle_partitions = 4.0;
        conf.executor_memory_mb = 1024.0;
        let cluster = ClusterSpec::small();
        let cost = CostParams::default();
        let phys = plan_physical(&join_plan(), &conf);
        let spec = FaultSpec {
            oom_ceiling: 2.0,
            ..FaultSpec::none()
        };
        let faulty = apply_faults(&phys, &conf, &cluster, &cost, &spec, 3);
        match faulty.failure {
            Some((FailureReason::OutOfMemory { .. }, partial)) => {
                assert!(partial > 0.0);
                assert!(partial <= faulty.timing.total_ms);
            }
            other => panic!("expected OOM kill, got {other:?}"),
        }
    }

    #[test]
    fn generous_memory_config_survives_the_same_ceiling() {
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = 2000.0;
        conf.executor_memory_mb = 16.0 * 1024.0;
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&join_plan(), &conf);
        let spec = FaultSpec {
            oom_ceiling: 2.0,
            ..FaultSpec::none()
        };
        let faulty = apply_faults(&phys, &conf, &cluster, &cost, &spec, 3);
        assert!(faulty.failure.is_none(), "{:?}", faulty.failure);
    }

    #[test]
    fn executor_loss_inflates_time_but_never_loses_tasks() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&join_plan(), &conf);
        let spec = FaultSpec {
            executor_loss_per_min: 50.0, // pathological hazard: losses certain
            max_executor_losses: u32::MAX,
            ..FaultSpec::none()
        };
        let faulty = apply_faults(&phys, &conf, &cluster, &cost, &spec, 11);
        let clean = schedule(&phys, &conf, &cluster, &cost);
        assert!(faulty.total_losses() > 0);
        assert!(faulty.timing.total_ms > clean.total_ms);
        for (rec, stage) in faulty.stage_faults.iter().zip(&phys.stages) {
            assert!(rec.task_attempts >= stage.tasks.max(1));
            assert_eq!(rec.task_attempts, stage.tasks.max(1) + rec.retried_tasks);
        }
    }

    #[test]
    fn too_many_losses_abort_the_run() {
        let conf = SparkConf::default();
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let phys = plan_physical(&join_plan(), &conf);
        let spec = FaultSpec {
            executor_loss_per_min: 50.0,
            max_executor_losses: 0,
            ..FaultSpec::none()
        };
        let faulty = apply_faults(&phys, &conf, &cluster, &cost, &spec, 11);
        match faulty.failure {
            Some((FailureReason::ExecutorsLost { losses }, partial)) => {
                assert!(losses >= 1);
                assert!(partial <= faulty.timing.total_ms);
            }
            other => panic!("expected executor-loss abort, got {other:?}"),
        }
    }

    #[test]
    fn execute_outcome_without_faults_equals_execute() {
        let sim = Simulator::default_pool(NoiseSpec::high());
        let conf = SparkConf::default();
        let plan = small_plan();
        let run = sim.execute(&plan, &conf, 42);
        match sim.execute_outcome(&plan, &conf, 42, &FaultSpec::none()) {
            RunOutcome::Success(r) => assert_eq!(r, run),
            RunOutcome::Failed { reason, .. } => panic!("failed: {reason}"),
            RunOutcome::Censored => panic!("censored without telemetry faults"),
        }
    }

    #[test]
    fn censoring_fires_at_the_configured_rate() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let plan = small_plan();
        let spec = FaultSpec {
            telemetry_loss: 0.3,
            ..FaultSpec::none()
        };
        let n = 2000;
        let censored = (0..n)
            .filter(|&s| {
                matches!(
                    sim.execute_outcome(&plan, &conf, s, &spec),
                    RunOutcome::Censored
                )
            })
            .count();
        let rate = censored as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "censor rate {rate}");
    }

    #[test]
    fn mangle_jsonl_counts_drops_and_corruptions() {
        let doc: String = (0..500)
            .map(|i| format!("{{\"event\":\"line{i}\"}}\n"))
            .collect();
        let spec = FaultSpec {
            telemetry_loss: 0.2,
            telemetry_corruption: 0.2,
            ..FaultSpec::none()
        };
        let mut rng = FaultSpec::rng_for(5);
        let (out, dropped, corrupted) = mangle_jsonl(&doc, &spec, &mut rng);
        assert!(dropped > 50 && dropped < 150, "dropped {dropped}");
        assert!(corrupted > 50 && corrupted < 150, "corrupted {corrupted}");
        assert_eq!(out.lines().count(), 500 - dropped);
        // Corrupted lines are truncated, not expanded.
        assert!(out.len() < doc.len());
    }

    #[test]
    fn mangle_jsonl_with_no_faults_is_identity() {
        let doc = "{\"a\":1}\n{\"b\":2}\n";
        let mut rng = FaultSpec::rng_for(1);
        let (out, dropped, corrupted) = mangle_jsonl(doc, &FaultSpec::none(), &mut rng);
        assert_eq!(out, doc);
        assert_eq!((dropped, corrupted), (0, 0));
    }

    #[test]
    fn oom_ceiling_is_above_the_spill_threshold() {
        // A config that spills but sits under the ceiling must survive (spill,
        // not die): the ceiling is strictly laxer than the spill threshold.
        let cluster = ClusterSpec::medium();
        let cost = CostParams::default();
        let conf = SparkConf::default();
        let stage = crate::physical::Stage {
            id: 0,
            kind: crate::physical::StageKind::Shuffle,
            tasks: 100,
            input_bytes: 0.0,
            cpu_rows: 1e6,
            sort_rows: 0.0,
            hash_build_bytes: 100.0 * 1024.0 * MIB,
            shuffle_write_bytes: 0.0,
            broadcast_bytes: 0.0,
        };
        let mem = evaluate_stage(&stage, &conf, &cluster, &cost);
        assert!(mem.spills());
        assert!(!mem.oom_kills(4.0), "mild overflow spills, not dies");
        assert!(mem.oom_kills(1.0 + 1e-9) || !mem.spills());
    }
}
