//! App-level configuration optimization (§4.4, Algorithm 2).
//!
//! Application-level knobs (executors, memory) are fixed at startup and shared by
//! every query in the application, and no workload embeddings exist yet at that
//! point. Rockhopper therefore **pre-computes** the app-level configuration when the
//! *previous* run of the same recurrent application finishes — when all its query
//! centroids and histories are known — and stores it in the `app_cache` keyed by
//! `artifact_id`. The next submission reads the cache with zero inference latency.
//!
//! Algorithm 2: generate `M` app-level candidates around the current setting; for
//! each, generate `N` query-level candidates around each query's centroid, pick the
//! best joint configuration per query by the per-query score, and sum those scores.
//! The app candidate with the best total wins.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use optimizers::space::ConfigSpace;

/// Everything Algorithm 2 needs to know about one query of the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryState {
    /// The query's stable signature.
    pub signature: u64,
    /// The query's current centroid (raw units, query-level space).
    pub centroid: Vec<f64>,
}

/// The outcome of a joint optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCacheEntry {
    /// Best app-level configuration found (raw units, app-level space).
    pub app_point: Vec<f64>,
    /// The query-level point chosen for each query under that app config.
    pub per_query: Vec<(u64, Vec<f64>)>,
    /// The winning total predicted score (lower is better).
    pub total_score: f64,
}

/// Algorithm 2's combinatorial search. Scoring is pluggable: production scores with
/// the per-query surrogate (an acquisition over predicted time); experiments may
/// score with the simulator directly.
#[derive(Debug, Clone)]
pub struct AppLevelOptimizer {
    /// The application-level space.
    pub app_space: ConfigSpace,
    /// The query-level space.
    pub query_space: ConfigSpace,
    /// `M`: app-level candidates per optimization.
    pub m_app: usize,
    /// `N`: query-level candidates per query.
    pub n_query: usize,
    /// Neighborhood half-width for both candidate sets (normalized units).
    pub beta: f64,
}

impl Default for AppLevelOptimizer {
    fn default() -> Self {
        AppLevelOptimizer {
            app_space: ConfigSpace::app_level(),
            query_space: ConfigSpace::query_level(),
            m_app: 12,
            n_query: 12,
            beta: 0.12,
        }
    }
}

impl AppLevelOptimizer {
    /// Run Algorithm 2. `score(query_idx, app_point, query_point)` returns the
    /// predicted cost (ms — lower is better) of running that query under the joint
    /// configuration.
    ///
    /// Returns `None` when the application has no queries.
    pub fn optimize<F>(
        &self,
        current_app: &[f64],
        queries: &[QueryState],
        score: F,
        seed: u64,
    ) -> Option<AppCacheEntry>
    where
        F: Fn(usize, &[f64], &[f64]) -> f64 + Sync,
    {
        if queries.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // V ← M app-level candidates around the current setting (plus the current
        // setting itself, so the cache never regresses on its own input).
        let mut app_candidates =
            self.app_space
                .neighborhood(current_app, self.beta, self.m_app, &mut rng);
        app_candidates.push(self.app_space.clip(current_app));

        // W_q ← N query-level candidates around each query's centroid (plus it).
        let query_candidates: Vec<Vec<Vec<f64>>> = queries
            .iter()
            .map(|q| {
                let mut w =
                    self.query_space
                        .neighborhood(&q.centroid, self.beta, self.n_query, &mut rng);
                w.push(self.query_space.clip(&q.centroid));
                w
            })
            .collect();

        // Every RNG draw happened above, so evaluating one app candidate is a
        // pure function of its index: the M×Q×N scoring grid fans out over
        // rockpool (DESIGN.md §7) while the winner is still chosen by the same
        // strict `<` left-to-right scan a serial loop would run.
        let evaluated: Vec<AppCacheEntry> =
            rockpool::Pool::from_env().map(&app_candidates, |_, v| {
                let mut total = 0.0;
                let mut per_query = Vec::with_capacity(queries.len());
                for (qi, q) in queries.iter().enumerate() {
                    // c*_q(v) = argmin over the Cartesian slice {v} × W_q. Each W_q
                    // contains at least the query's own centroid, so a pick exists;
                    // NaN scores are skipped rather than panicking the loop.
                    let Some(cands) = query_candidates.get(qi) else {
                        continue;
                    };
                    let wi = ml::stats::nan_safe_min_by(cands, |w| score(qi, v, w)).unwrap_or(0);
                    let Some(best_w) = cands.get(wi) else {
                        continue;
                    };
                    total += score(qi, v, best_w);
                    per_query.push((q.signature, best_w.clone()));
                }
                AppCacheEntry {
                    app_point: v.clone(),
                    per_query,
                    total_score: total,
                }
            });
        let mut best: Option<AppCacheEntry> = None;
        for entry in evaluated {
            if best
                .as_ref()
                .is_none_or(|b| entry.total_score < b.total_score)
            {
                best = Some(entry);
            }
        }
        best
    }
}

/// The `app_cache`: pre-computed app-level configurations keyed by `artifact_id`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AppCache {
    entries: BTreeMap<String, AppCacheEntry>,
}

impl AppCache {
    /// Empty cache.
    pub fn new() -> AppCache {
        AppCache::default()
    }

    /// Store the entry for an artifact (overwrites any previous run's entry).
    pub fn put(&mut self, artifact_id: &str, entry: AppCacheEntry) {
        self.entries.insert(artifact_id.to_string(), entry);
    }

    /// Fetch the pre-computed entry for a submitting application, if any.
    pub fn get(&self, artifact_id: &str) -> Option<&AppCacheEntry> {
        self.entries.get(artifact_id)
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop an artifact's entry (GDPR cleanup path).
    pub fn remove(&mut self, artifact_id: &str) -> Option<AppCacheEntry> {
        self.entries.remove(artifact_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries(n: usize) -> Vec<QueryState> {
        let space = ConfigSpace::query_level();
        (0..n)
            .map(|i| QueryState {
                signature: i as u64 + 1,
                centroid: space.default_point(),
            })
            .collect()
    }

    /// Score: quadratic bowl in the app executor knob (normalized), optimum at 0.75,
    /// plus a per-query bowl in shuffle partitions at 0.4.
    fn bowl_score<'a>(
        app_space: &'a ConfigSpace,
        query_space: &'a ConfigSpace,
    ) -> impl Fn(usize, &[f64], &[f64]) -> f64 + 'a {
        move |_qi, app, query| {
            let xa = app_space.dims[0].normalize(app[0]);
            let xq = query_space.dims[2].normalize(query[2]);
            1000.0 * (xa - 0.75) * (xa - 0.75) + 500.0 * (xq - 0.4) * (xq - 0.4)
        }
    }

    #[test]
    fn empty_application_returns_none() {
        let opt = AppLevelOptimizer::default();
        let r = opt.optimize(&opt.app_space.default_point(), &[], |_, _, _| 0.0, 1);
        assert!(r.is_none());
    }

    #[test]
    fn result_covers_every_query() {
        let opt = AppLevelOptimizer::default();
        let qs = queries(4);
        let e = opt
            .optimize(&opt.app_space.default_point(), &qs, |_, _, _| 1.0, 1)
            .unwrap();
        assert_eq!(e.per_query.len(), 4);
        let sigs: Vec<u64> = e.per_query.iter().map(|(s, _)| *s).collect();
        assert_eq!(sigs, vec![1, 2, 3, 4]);
        assert_eq!(e.total_score, 4.0);
    }

    #[test]
    fn joint_optimization_moves_toward_the_bowl() {
        let opt = AppLevelOptimizer {
            m_app: 30,
            n_query: 30,
            beta: 0.3,
            ..AppLevelOptimizer::default()
        };
        let app_space = opt.app_space.clone();
        let query_space = opt.query_space.clone();
        let score = bowl_score(&app_space, &query_space);
        let start = opt.app_space.default_point();
        let start_x = opt.app_space.dims[0].normalize(start[0]);
        let e = opt.optimize(&start, &queries(2), score, 3).unwrap();
        let chosen_x = opt.app_space.dims[0].normalize(e.app_point[0]);
        assert!(
            (chosen_x - 0.75).abs() < (start_x - 0.75).abs(),
            "start {start_x}, chosen {chosen_x}"
        );
    }

    #[test]
    fn current_setting_is_always_a_candidate() {
        // With a score that punishes any move, the optimizer must return (a clipped
        // copy of) the current configuration.
        let opt = AppLevelOptimizer::default();
        let current = opt.app_space.default_point();
        let cur = current.clone();
        let app_space = opt.app_space.clone();
        let e = opt
            .optimize(
                &current,
                &queries(1),
                move |_, app, _| {
                    let d: f64 = app_space
                        .normalize(app)
                        .iter()
                        .zip(app_space.normalize(&cur))
                        .map(|(a, b)| (a - b).abs())
                        .sum();
                    d * 1e6
                },
                9,
            )
            .unwrap();
        for (a, b) in e.app_point.iter().zip(&current) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn app_cache_roundtrips() {
        let mut cache = AppCache::new();
        assert!(cache.is_empty());
        let entry = AppCacheEntry {
            app_point: vec![8.0, 16384.0],
            per_query: vec![(42, vec![1e8, 1e7, 256.0])],
            total_score: 123.0,
        };
        cache.put("artifact-1", entry.clone());
        assert_eq!(cache.get("artifact-1"), Some(&entry));
        assert_eq!(cache.get("artifact-2"), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.remove("artifact-1"), Some(entry));
        assert!(cache.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let opt = AppLevelOptimizer::default();
        let qs = queries(2);
        let app_space = opt.app_space.clone();
        let query_space = opt.query_space.clone();
        let a = opt
            .optimize(
                &opt.app_space.default_point(),
                &qs,
                bowl_score(&app_space, &query_space),
                7,
            )
            .unwrap();
        let b = opt
            .optimize(
                &opt.app_space.default_point(),
                &qs,
                bowl_score(&app_space, &query_space),
                7,
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
