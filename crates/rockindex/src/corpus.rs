//! The retrieval corpus: one entry per tuned warm signature, durably logged
//! through its own rockdur WAL/snapshot lineage.
//!
//! Write path: every [`Corpus::upsert`] appends the entry to the WAL
//! *before* applying it in memory (append-before-apply, the same discipline
//! as `pipeline::durability`), and a compacted snapshot of the full sorted
//! entry set is written every [`Corpus::snapshot_every`] records. Recovery
//! is the newest valid snapshot plus the contiguous record tail — replaying
//! the same lineage always rebuilds the same `BTreeMap`, so a corpus
//! rebuilt after a kill is bit-identical to the one that crashed.
//!
//! The corpus is bounded at [`MAX_CORPUS_ENTRIES`]. When full, admitting a
//! new signature evicts the least-supported resident entry first (fewest
//! observations, ties to the smallest signature) — a pure function of the
//! entry set, so replay reproduces evictions exactly.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use rockdur::Wal;
use serde::{Deserialize, Serialize};

/// Hard bound on resident corpus entries.
pub const MAX_CORPUS_ENTRIES: usize = 65_536;

/// Snapshot cadence: a compacted snapshot every this many upserts.
const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// One tuned signature, as harvested from warm backend state: the workload
/// embedding, the best config observed so far, and a cost summary that lets
/// the transfer handoff seed a trust-discounted prior.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The workload's query signature (`embedding::query_signature`).
    pub signature: u64,
    /// The workload embedding the signature was tuned under.
    pub embedding: Vec<f64>,
    /// Best-observed configuration point in `ConfigSpace` order.
    pub best_point: Vec<f64>,
    /// How many real observations back this entry.
    pub observations: u64,
    /// Elapsed milliseconds of the best observation.
    pub best_elapsed_ms: f64,
    /// Mean elapsed milliseconds across all observations.
    pub mean_elapsed_ms: f64,
    /// Data size (GB) the best observation ran at.
    pub data_size: f64,
}

/// What corpus recovery found on open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusRecovery {
    /// WAL records replayed after the snapshot (valid JSON upserts).
    pub replayed: u64,
    /// Whether a snapshot seeded the entry set.
    pub restored_snapshot: bool,
    /// Records quarantined: rockdur-level corruption plus JSON payloads
    /// that no longer decode as a [`CorpusEntry`].
    pub quarantined: u64,
}

/// The corpus: a sorted map of entries over an optional rockdur lineage.
pub struct Corpus {
    entries: BTreeMap<u64, CorpusEntry>,
    wal: Option<Wal>,
    snapshot_every: u64,
    records_since_snapshot: u64,
    evictions: u64,
}

impl Corpus {
    /// An unpersisted corpus (experiments, tests, in-process pre-warming).
    pub fn in_memory() -> Corpus {
        Corpus {
            entries: BTreeMap::new(),
            wal: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            records_since_snapshot: 0,
            evictions: 0,
        }
    }

    /// Open (or create) a durable corpus at `dir`, replaying its lineage.
    ///
    /// Corruption is quarantined by rockdur, never fatal: the corpus boots
    /// from the newest valid snapshot plus the contiguous record tail.
    pub fn open(dir: &Path) -> io::Result<(Corpus, CorpusRecovery)> {
        let (wal, recovery) = Wal::open(dir)?;
        let mut corpus = Corpus {
            entries: BTreeMap::new(),
            wal: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            records_since_snapshot: 0,
            evictions: 0,
        };
        let mut report = CorpusRecovery {
            quarantined: recovery.quarantined,
            ..CorpusRecovery::default()
        };
        if let Some(snapshot) = &recovery.snapshot {
            match serde_json::from_slice::<Vec<CorpusEntry>>(&snapshot.payload) {
                Ok(entries) => {
                    report.restored_snapshot = true;
                    for entry in entries {
                        corpus.apply(entry);
                    }
                }
                // A snapshot that no longer decodes is quarantined state,
                // not an error: boot from the record tail alone.
                Err(_) => report.quarantined += 1,
            }
        }
        for (_seq, payload) in &recovery.records {
            match serde_json::from_slice::<CorpusEntry>(payload) {
                Ok(entry) => {
                    report.replayed += 1;
                    corpus.apply(entry);
                }
                Err(_) => report.quarantined += 1,
            }
        }
        corpus.wal = Some(wal);
        Ok((corpus, report))
    }

    /// Insert or replace the entry for its signature, logging it durably
    /// first (append-before-apply) and compacting on cadence.
    pub fn upsert(&mut self, entry: CorpusEntry) -> io::Result<()> {
        if let Some(wal) = &mut self.wal {
            let bytes = serde_json::to_vec(&entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
            wal.append(&bytes)?;
            self.records_since_snapshot += 1;
        }
        self.apply(entry);
        if self.wal.is_some() && self.records_since_snapshot >= self.snapshot_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Apply one upsert to the in-memory map, evicting the least-supported
    /// entry when admitting a new signature at the bound.
    fn apply(&mut self, entry: CorpusEntry) {
        let admitting_new = !self.entries.contains_key(&entry.signature);
        if admitting_new && self.entries.len() >= MAX_CORPUS_ENTRIES {
            let victim = self
                .entries
                .values()
                .min_by(|a, b| {
                    a.observations
                        .cmp(&b.observations)
                        .then(a.signature.cmp(&b.signature))
                })
                .map(|e| e.signature);
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(entry.signature, entry);
    }

    /// Write a compacted snapshot of the full entry set now.
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(wal) = &mut self.wal else {
            return Ok(());
        };
        let sorted: Vec<&CorpusEntry> = self.entries.values().collect();
        let bytes = serde_json::to_vec(&sorted)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        wal.snapshot(&bytes)?;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Flush buffered WAL appends to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        match &mut self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted at the [`MAX_CORPUS_ENTRIES`] bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The entry for one signature.
    pub fn get(&self, signature: u64) -> Option<&CorpusEntry> {
        self.entries.get(&signature)
    }

    /// All entries in ascending signature order.
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(signature: u64, observations: u64) -> CorpusEntry {
        CorpusEntry {
            signature,
            embedding: vec![1.0, 0.0, signature as f64],
            best_point: vec![2.0, 4.0],
            observations,
            best_elapsed_ms: 100.0 + signature as f64,
            mean_elapsed_ms: 150.0,
            data_size: 2.0,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rockindex-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        dir
    }

    #[test]
    fn upserts_replace_and_keep_sorted_order() {
        let mut corpus = Corpus::in_memory();
        for sig in [5u64, 1, 3, 1] {
            corpus.upsert(entry(sig, sig)).expect("in-memory upsert");
        }
        assert_eq!(corpus.len(), 3);
        let sigs: Vec<u64> = corpus.entries().map(|e| e.signature).collect();
        assert_eq!(sigs, vec![1, 3, 5], "BTreeMap order must be by signature");
    }

    #[test]
    fn reopen_rebuilds_bit_identically_across_sessions() {
        let dir = temp_dir("reopen");
        // Session 1: half the entries, killed without compaction.
        {
            let (mut corpus, recovery) = Corpus::open(&dir).expect("fresh open");
            assert_eq!(recovery, CorpusRecovery::default());
            for sig in 0..8u64 {
                corpus.upsert(entry(sig, sig + 1)).expect("upsert");
            }
            corpus.sync().expect("sync");
        }
        // Session 2: recover, write the rest, compact, kill again.
        {
            let (mut corpus, recovery) = Corpus::open(&dir).expect("reopen");
            assert_eq!(recovery.replayed, 8);
            for sig in 8..16u64 {
                corpus.upsert(entry(sig, sig + 1)).expect("upsert");
            }
            corpus.compact().expect("compact");
        }
        // Session 3 must equal a single uninterrupted session.
        let (recovered, recovery) = Corpus::open(&dir).expect("final open");
        assert!(recovery.restored_snapshot, "compaction must persist");
        let mut witness = Corpus::in_memory();
        for sig in 0..16u64 {
            witness.upsert(entry(sig, sig + 1)).expect("witness upsert");
        }
        let got: Vec<&CorpusEntry> = recovered.entries().collect();
        let want: Vec<&CorpusEntry> = witness.entries().collect();
        assert_eq!(got, want, "recovered corpus must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_the_committed_prefix() {
        let dir = temp_dir("torn");
        {
            let (mut corpus, _) = Corpus::open(&dir).expect("fresh open");
            for sig in 0..6u64 {
                corpus.upsert(entry(sig, 1)).expect("upsert");
            }
            corpus.sync().expect("sync");
        }
        rockdur::fault::torn_tail(&dir, 0xDEAD).expect("tear the tail");
        let (recovered, recovery) = Corpus::open(&dir).expect("recover");
        assert!(recovery.quarantined > 0, "the torn record must quarantine");
        assert!(recovered.len() < 6, "the torn entry must not replay");
        // The surviving prefix is the first N entries, in order.
        for (i, e) in recovered.entries().enumerate() {
            assert_eq!(e, &entry(i as u64, 1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_bound_evicts_least_supported_first() {
        let mut corpus = Corpus::in_memory();
        for sig in 0..MAX_CORPUS_ENTRIES as u64 {
            corpus.upsert(entry(sig, sig + 10)).expect("fill");
        }
        assert_eq!(corpus.len(), MAX_CORPUS_ENTRIES);
        // Signature 0 has the fewest observations (10) → evicted first.
        corpus
            .upsert(entry(u64::MAX, 1_000_000))
            .expect("overflow upsert");
        assert_eq!(corpus.len(), MAX_CORPUS_ENTRIES);
        assert_eq!(corpus.evictions(), 1);
        assert!(corpus.get(0).is_none(), "least-supported entry evicts");
        assert!(corpus.get(u64::MAX).is_some());
    }
}
