//! The online-tuning interface every optimizer implements, plus shared observation
//! bookkeeping.

use serde::{Deserialize, Serialize};

/// Compile-time context available when a configuration must be suggested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningContext {
    /// Workload embedding of the submitted query (may be empty when no embedder is
    /// configured, e.g. for the synthetic function).
    pub embedding: Vec<f64>,
    /// Expected input data size for this run (the optimizer's estimate `p`; the
    /// paper notes it "is often unknown at the start" — environments expose their
    /// best compile-time estimate here and the true size in the outcome).
    pub expected_data_size: f64,
    /// Tuning iteration (0-based).
    pub iteration: u32,
}

/// How an observation entered the history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ObservationKind {
    /// A real, measured completion time.
    #[default]
    Measured,
    /// A failed or unobserved run recorded as a *censored* high-cost bound
    /// (Li et al., VLDB 2023): `elapsed_ms` holds a penalty cost, not a
    /// measurement. Model fits down-weight it; argmin-style selection and
    /// best-so-far bookkeeping skip it entirely.
    Censored,
}

// Manual impls so a missing/`null` field (checkpoints written before the
// fault model existed) deserializes as `Measured` instead of erroring.
impl Serialize for ObservationKind {
    fn serialize_value(&self) -> serde::Value {
        match self {
            ObservationKind::Measured => serde::Value::Str("Measured".to_string()),
            ObservationKind::Censored => serde::Value::Str("Censored".to_string()),
        }
    }
}

impl Deserialize for ObservationKind {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Null => Ok(ObservationKind::Measured),
            serde::Value::Str(s) if s == "Measured" => Ok(ObservationKind::Measured),
            serde::Value::Str(s) if s == "Censored" => Ok(ObservationKind::Censored),
            other => Err(serde::DeError::expected("ObservationKind", other)),
        }
    }
}

/// What came back from executing a suggested configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Observed (noisy) execution time, ms — or the penalty cost of a
    /// censored run (see `kind`).
    pub elapsed_ms: f64,
    /// Actual input data size of the run (the `p` recorded with each observation).
    pub data_size: f64,
    /// Whether this is a real measurement or a censored bound. Deserializes
    /// to [`ObservationKind::Measured`] when absent in serialized data, so
    /// pre-fault checkpoints restore unchanged.
    pub kind: ObservationKind,
}

impl Outcome {
    /// A real measured completion.
    pub fn measured(elapsed_ms: f64, data_size: f64) -> Outcome {
        Outcome {
            elapsed_ms,
            data_size,
            kind: ObservationKind::Measured,
        }
    }

    /// A censored observation for a failed/unobserved run: `penalty_ms` is the
    /// high-cost bound the tuner records instead of a measurement.
    pub fn censored(penalty_ms: f64, data_size: f64) -> Outcome {
        Outcome {
            elapsed_ms: penalty_ms,
            data_size,
            kind: ObservationKind::Censored,
        }
    }

    /// Whether this outcome is a censored bound rather than a measurement.
    pub fn is_censored(&self) -> bool {
        self.kind == ObservationKind::Censored
    }
}

/// An online configuration tuner: suggest a point, observe its outcome, repeat.
/// Points are raw-unit vectors over the tuner's [`crate::space::ConfigSpace`].
pub trait Tuner {
    /// Propose the configuration for the next run.
    fn suggest(&mut self, ctx: &TuningContext) -> Vec<f64>;

    /// Record the outcome of running `point`.
    fn observe(&mut self, point: &[f64], outcome: &Outcome);

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// One recorded observation — the paper's `(c_i, p_i, r_i)` triple of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration point (raw units).
    pub point: Vec<f64>,
    /// The data size `p` of that run.
    pub data_size: f64,
    /// The observed performance `r` (elapsed ms; lower is better), or the
    /// penalty bound of a censored run.
    pub elapsed_ms: f64,
    /// Measurement vs. censored bound; missing fields in old checkpoints
    /// deserialize as [`ObservationKind::Measured`].
    pub kind: ObservationKind,
}

impl Observation {
    /// Whether this observation is a censored bound rather than a measurement.
    pub fn is_censored(&self) -> bool {
        self.kind == ObservationKind::Censored
    }
}

/// An append-only observation history with the sliding-window view `Ω(t, N)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// All observations, oldest first.
    pub all: Vec<Observation>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Record one measured observation.
    pub fn push(&mut self, point: Vec<f64>, data_size: f64, elapsed_ms: f64) {
        self.all.push(Observation {
            point,
            data_size,
            elapsed_ms,
            kind: ObservationKind::Measured,
        });
    }

    /// Record one observation from an [`Outcome`], preserving its kind.
    pub fn push_outcome(&mut self, point: Vec<f64>, outcome: &Outcome) {
        self.all.push(Observation {
            point,
            data_size: outcome.data_size,
            elapsed_ms: outcome.elapsed_ms,
            kind: outcome.kind,
        });
    }

    /// Number of censored observations.
    pub fn censored_count(&self) -> usize {
        self.all.iter().filter(|o| o.is_censored()).count()
    }

    /// Consecutive censored/failed observations at the end of the history.
    pub fn trailing_censored(&self) -> usize {
        self.all
            .iter()
            .rev()
            .take_while(|o| o.is_censored())
            .count()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether no observations exist.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The latest `n` observations — `Ω(t, N)`.
    pub fn window(&self, n: usize) -> &[Observation] {
        let start = self.all.len().saturating_sub(n);
        &self.all[start..]
    }

    /// The observation with the smallest raw elapsed time (FIND_BEST v1).
    /// Censored bounds are penalty costs, not achieved times — they never win.
    pub fn best_raw(&self) -> Option<&Observation> {
        self.all
            .iter()
            .filter(|o| !o.is_censored())
            .min_by(|a, b| a.elapsed_ms.total_cmp(&b.elapsed_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: f64) -> (Vec<f64>, f64, f64) {
        (vec![t], 1.0, t)
    }

    #[test]
    fn window_returns_latest_n() {
        let mut h = History::new();
        for i in 0..10 {
            let (p, d, r) = obs(i as f64);
            h.push(p, d, r);
        }
        let w = h.window(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].elapsed_ms, 7.0);
        assert_eq!(h.window(100).len(), 10);
    }

    #[test]
    fn best_raw_finds_minimum() {
        let mut h = History::new();
        for t in [5.0, 2.0, 9.0] {
            let (p, d, r) = obs(t);
            h.push(p, d, r);
        }
        assert_eq!(h.best_raw().unwrap().elapsed_ms, 2.0);
    }

    #[test]
    fn empty_history_has_no_best() {
        assert!(History::new().best_raw().is_none());
        assert!(History::new().window(5).is_empty());
    }
}
