//! The top-level simulator: plan → schedule → add noise → metrics (+ optional events).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::config::SparkConf;
use crate::cost::CostParams;
use crate::event::SparkEvent;
use crate::fault::{apply_faults, FaultSpec, RunOutcome};
use crate::metrics::QueryMetrics;
use crate::noise::NoiseSpec;
use crate::physical::{plan_physical, PhysicalPlan};
use crate::plan::PlanNode;
use crate::scheduler::{schedule, QueryTiming};

/// One simulated query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRun {
    /// Aggregated metrics (observed + true time, tasks, spill, …).
    pub metrics: QueryMetrics,
    /// The physical plan that ran.
    pub physical: PhysicalPlan,
    /// The per-stage timing breakdown.
    pub timing: QueryTiming,
}

/// A simulated Spark environment: a pool, a cost model and a noise level.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Pool the queries run in.
    pub cluster: ClusterSpec,
    /// Cost-model constants.
    pub cost: CostParams,
    /// Observational noise applied to every run.
    pub noise: NoiseSpec,
}

impl Simulator {
    /// A simulator on the default (medium) pool with default costs.
    pub fn default_pool(noise: NoiseSpec) -> Simulator {
        Simulator {
            cluster: ClusterSpec::medium(),
            cost: CostParams::default(),
            noise,
        }
    }

    /// Execute `plan` under `conf`. `seed` drives only the noise draw, so the same
    /// seed reproduces the same observation.
    pub fn execute(&self, plan: &PlanNode, conf: &SparkConf, seed: u64) -> QueryRun {
        let mut rng = StdRng::seed_from_u64(seed);
        self.execute_with_rng(plan, conf, &mut rng)
    }

    /// Execute with a caller-supplied RNG (lets an online loop share one stream).
    pub fn execute_with_rng(
        &self,
        plan: &PlanNode,
        conf: &SparkConf,
        rng: &mut StdRng,
    ) -> QueryRun {
        let physical = plan_physical(plan, conf);
        let timing = schedule(&physical, conf, &self.cluster, &self.cost);
        let elapsed = self.noise.apply(timing.total_ms, rng);
        let metrics = QueryMetrics::collect(
            &physical,
            &timing,
            plan.leaf_input_bytes(),
            plan.leaf_input_rows(),
            plan.root_cardinality(),
            elapsed,
        );
        QueryRun {
            metrics,
            physical,
            timing,
        }
    }

    /// Execute `plan` under `conf` with fault injection: the run can be
    /// OOM-killed, aborted by executor loss, or complete but lose its
    /// completion record ([`RunOutcome::Censored`]). Fault decisions come from
    /// a dedicated RNG stream (`seed ^ FAULT_SALT`), so the noise draw is
    /// bit-identical to [`Simulator::execute`] and `FaultSpec::none()` makes
    /// this method degenerate to it exactly.
    pub fn execute_outcome(
        &self,
        plan: &PlanNode,
        conf: &SparkConf,
        seed: u64,
        spec: &FaultSpec,
    ) -> RunOutcome {
        let physical = plan_physical(plan, conf);
        let faulty = apply_faults(&physical, conf, &self.cluster, &self.cost, spec, seed);
        match faulty.failure {
            Some((reason, partial_time_ms)) => RunOutcome::Failed {
                reason,
                partial_time_ms,
            },
            None => {
                let mut rng = StdRng::seed_from_u64(seed);
                let elapsed = self.noise.apply(faulty.timing.total_ms, &mut rng);
                let metrics = QueryMetrics::collect(
                    &physical,
                    &faulty.timing,
                    plan.leaf_input_bytes(),
                    plan.leaf_input_rows(),
                    plan.root_cardinality(),
                    elapsed,
                );
                if faulty.censored {
                    return RunOutcome::Censored;
                }
                RunOutcome::Success(QueryRun {
                    metrics,
                    physical,
                    timing: faulty.timing,
                })
            }
        }
    }

    /// Execute with fault injection and emit the event log *as delivered*: a
    /// failed run ships its completed stages but never a `QueryEnd` (the
    /// backend sees an aborted query); a censored run loses the `QueryEnd`
    /// line in flight. Returns the outcome alongside the delivered events.
    #[allow(clippy::too_many_arguments)]
    pub fn run_and_events(
        &self,
        app_id: &str,
        artifact_id: &str,
        query_signature: u64,
        plan: &PlanNode,
        conf: &SparkConf,
        embedding: Vec<f64>,
        seed: u64,
        spec: &FaultSpec,
    ) -> (RunOutcome, Vec<SparkEvent>) {
        let outcome = self.execute_outcome(plan, conf, seed, spec);
        match &outcome {
            RunOutcome::Success(run) => {
                let events = self.events_for_run(
                    app_id,
                    artifact_id,
                    query_signature,
                    plan,
                    conf,
                    embedding,
                    run,
                );
                (outcome, events)
            }
            RunOutcome::Censored | RunOutcome::Failed { .. } => {
                // Re-derive the faulty timing to know which stages completed.
                let physical = plan_physical(plan, conf);
                let faulty = apply_faults(&physical, conf, &self.cluster, &self.cost, spec, seed);
                let budget_ms = match &outcome {
                    RunOutcome::Failed {
                        partial_time_ms, ..
                    } => *partial_time_ms,
                    RunOutcome::Censored => faulty.timing.total_ms,
                    RunOutcome::Success(_) => faulty.timing.total_ms,
                };
                let mut events = vec![
                    SparkEvent::ApplicationStart {
                        app_id: app_id.to_string(),
                        artifact_id: artifact_id.to_string(),
                    },
                    SparkEvent::QueryStart {
                        app_id: app_id.to_string(),
                        query_signature,
                        conf: conf.clone(),
                        plan_summary: plan
                            .iter_nodes()
                            .iter()
                            .map(|n| n.op.type_name().to_string())
                            .collect(),
                        embedding,
                    },
                ];
                let mut cum_ms = 0.0;
                for st in &faulty.timing.stages {
                    if cum_ms + st.stage_ms > budget_ms + 1e-9 {
                        break;
                    }
                    cum_ms += st.stage_ms;
                    events.push(SparkEvent::StageCompleted {
                        app_id: app_id.to_string(),
                        query_signature,
                        stage_id: st.stage_id,
                        tasks: st.tasks,
                        duration_ms: st.stage_ms,
                        spilled_bytes: st.memory.total_spill_bytes(st.tasks),
                    });
                }
                // No QueryEnd: killed before it, or lost in flight.
                events.push(SparkEvent::ApplicationEnd {
                    app_id: app_id.to_string(),
                });
                (outcome, events)
            }
        }
    }

    /// The noise-free runtime — the quantity convergence plots measure.
    pub fn true_time_ms(&self, plan: &PlanNode, conf: &SparkConf) -> f64 {
        let physical = plan_physical(plan, conf);
        schedule(&physical, conf, &self.cluster, &self.cost).total_ms
    }

    /// Emit the Spark-style event log for a finished run. `embedding` is the
    /// client-computed workload embedding shipped inside `QueryStart` (pass an empty
    /// vector when no embedder is configured).
    #[allow(clippy::too_many_arguments)]
    pub fn events_for_run(
        &self,
        app_id: &str,
        artifact_id: &str,
        query_signature: u64,
        plan: &PlanNode,
        conf: &SparkConf,
        embedding: Vec<f64>,
        run: &QueryRun,
    ) -> Vec<SparkEvent> {
        let mut events = vec![
            SparkEvent::ApplicationStart {
                app_id: app_id.to_string(),
                artifact_id: artifact_id.to_string(),
            },
            SparkEvent::QueryStart {
                app_id: app_id.to_string(),
                query_signature,
                conf: conf.clone(),
                plan_summary: plan
                    .iter_nodes()
                    .iter()
                    .map(|n| n.op.type_name().to_string())
                    .collect(),
                embedding,
            },
        ];
        for st in &run.timing.stages {
            events.push(SparkEvent::StageCompleted {
                app_id: app_id.to_string(),
                query_signature,
                stage_id: st.stage_id,
                tasks: st.tasks,
                duration_ms: st.stage_ms,
                spilled_bytes: st.memory.total_spill_bytes(st.tasks),
            });
        }
        events.push(SparkEvent::QueryEnd {
            app_id: app_id.to_string(),
            query_signature,
            metrics: run.metrics.clone(),
        });
        events.push(SparkEvent::ApplicationEnd {
            app_id: app_id.to_string(),
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanNode {
        PlanNode::scan("t", 1e7, 100.0)
            .filter(0.2)
            .hash_aggregate(0.01)
    }

    #[test]
    fn noiseless_run_observes_true_time() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let run = sim.execute(&plan(), &SparkConf::default(), 1);
        assert_eq!(run.metrics.elapsed_ms, run.metrics.true_ms);
        assert!(run.metrics.true_ms > 0.0);
    }

    #[test]
    fn same_seed_reproduces_observation() {
        let sim = Simulator::default_pool(NoiseSpec::high());
        let a = sim.execute(&plan(), &SparkConf::default(), 99);
        let b = sim.execute(&plan(), &SparkConf::default(), 99);
        assert_eq!(a.metrics.elapsed_ms, b.metrics.elapsed_ms);
    }

    #[test]
    fn different_seeds_vary_under_noise() {
        let sim = Simulator::default_pool(NoiseSpec::high());
        let a = sim.execute(&plan(), &SparkConf::default(), 1);
        let b = sim.execute(&plan(), &SparkConf::default(), 2);
        assert_ne!(a.metrics.elapsed_ms, b.metrics.elapsed_ms);
        assert_eq!(a.metrics.true_ms, b.metrics.true_ms);
    }

    #[test]
    fn true_time_matches_execute_timing() {
        let sim = Simulator::default_pool(NoiseSpec::high());
        let t = sim.true_time_ms(&plan(), &SparkConf::default());
        let run = sim.execute(&plan(), &SparkConf::default(), 5);
        assert_eq!(t, run.metrics.true_ms);
    }

    #[test]
    fn event_log_covers_lifecycle() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let p = plan();
        let conf = SparkConf::default();
        let run = sim.execute(&p, &conf, 1);
        let events = sim.events_for_run("app-7", "art-3", 1234, &p, &conf, vec![0.5], &run);
        assert!(matches!(events[0], SparkEvent::ApplicationStart { .. }));
        assert!(matches!(events[1], SparkEvent::QueryStart { .. }));
        assert!(matches!(
            events.last(),
            Some(SparkEvent::ApplicationEnd { .. })
        ));
        let stage_events = events
            .iter()
            .filter(|e| matches!(e, SparkEvent::StageCompleted { .. }))
            .count();
        assert_eq!(stage_events, run.physical.stages.len());
    }

    #[test]
    fn data_scaling_increases_runtime() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let base = sim.true_time_ms(&plan(), &conf);
        let bigger = sim.true_time_ms(&plan().scaled(10.0), &conf);
        assert!(bigger > base * 1.8, "10x data: {base} -> {bigger}");
    }
}
