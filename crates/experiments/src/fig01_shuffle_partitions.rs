//! **Figure 1**: query execution time vs `spark.sql.shuffle.partitions` — each query
//! peaks at a different setting, motivating per-query tuning.

use optimizers::space::ConfigSpace;
use sparksim::noise::NoiseSpec;
use sparksim::simulator::Simulator;

use crate::harness::{write_csv, Scale, Summary};

/// The TPC-DS-style queries swept (diverse shapes: report, inventory, union, mega-join).
pub const QUERIES: [usize; 4] = [1, 5, 11, 21];

/// Run the sweep and report each query's optimal partition count.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 50.0,
        Scale::Quick => 20.0,
    };
    let levels: Vec<f64> = [8, 16, 32, 64, 128, 200, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|&v| v as f64)
        .collect();
    let sim = Simulator::default_pool(NoiseSpec::none());
    let space = ConfigSpace::query_level();

    let mut summary = Summary::new("fig01_shuffle_partitions");
    let mut rows = Vec::new();
    for (qi, &q) in QUERIES.iter().enumerate() {
        let plan = workloads::tpcds::query(q, sf);
        let mut best = (f64::INFINITY, 0.0);
        for &p in &levels {
            let mut point = space.default_point();
            point[2] = p;
            let t = sim.true_time_ms(&plan, &space.to_conf(&point));
            rows.push(vec![qi as f64, p, t]);
            if t < best.0 {
                best = (t, p);
            }
        }
        summary.row(
            &format!("tpcds-style Q{q} optimal partitions"),
            format!("{} ({:.0} ms)", best.1, best.0),
        );
    }
    // The figure's claim: optima differ across queries.
    let optima: std::collections::HashSet<u64> = QUERIES
        .iter()
        .enumerate()
        .map(|(qi, _)| {
            rows.iter()
                .filter(|r| r[0] == qi as f64)
                .min_by(|a, b| a[2].total_cmp(&b[2]))
                .map(|r| r[1] as u64)
                .unwrap()
        })
        .collect();
    summary.row("distinct optima across queries", optima.len());
    summary.files.push(write_csv(
        "fig01_shuffle_partitions",
        "query_idx,partitions,true_ms",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_finds_distinct_optima() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let distinct: usize = s
            .rows
            .iter()
            .find(|(k, _)| k == "distinct optima across queries")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap();
        assert!(distinct >= 2, "Figure 1 premise requires per-query optima");
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
