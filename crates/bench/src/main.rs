//! `cargo run -p bench [--quick]` — measure the pool-backed hot paths
//! (tuner candidate batch, app-cache build, experiment fan-out) serially and
//! at 2/4/8 workers, verify bit-identical results at every width, and write
//! the `BENCH_parallel.json` baseline (path overridable with
//! `ROCKHOPPER_BENCH_OUT`).

use bench::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        BenchScale::Quick
    } else {
        BenchScale::Full
    };
    let report = bench::run_parallel_bench(scale);
    for w in &report.workloads {
        let per_width: Vec<String> = w
            .parallel_ms
            .iter()
            .map(|(t, ms)| {
                let speedup = w.speedup(*t).unwrap_or(f64::NAN);
                format!("{t}t {ms:.1}ms ({speedup:.2}x)")
            })
            .collect();
        println!(
            "{:<18} serial {:.1}ms | {} | deterministic: {}",
            w.name,
            w.serial_ms,
            per_width.join(" | "),
            w.deterministic
        );
    }
    println!(
        "host parallelism: {} (speedups are bounded by physical cores)",
        report.host_threads
    );
    let path = bench::out_path();
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if report.workloads.iter().any(|w| !w.deterministic) {
        eprintln!("FAIL: a workload's results changed with the thread count");
        std::process::exit(1);
    }
}
