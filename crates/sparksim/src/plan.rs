//! Logical query plans with optimizer-style cardinality estimates.
//!
//! Plans are trees of relational operators annotated, bottom-up, with estimated output
//! rows and bytes — the information a query optimizer has at compile time, which is
//! exactly what the paper's workload embedding consumes (§4.1: "information related to
//! the query optimizer that is available at compile time").

use serde::{Deserialize, Serialize};

/// Logical relational operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Base-table scan with estimated row count and bytes per row.
    TableScan {
        /// Table name (for signatures and event logs).
        table: String,
        /// Estimated rows in the table.
        rows: f64,
        /// Average row width in bytes.
        row_bytes: f64,
    },
    /// Row filter keeping `selectivity` of its input.
    Filter {
        /// Fraction of rows kept, in `[0, 1]`.
        selectivity: f64,
    },
    /// Projection changing row width by `width_factor`.
    Project {
        /// Output row width relative to input, in `(0, ..]`.
        width_factor: f64,
    },
    /// Hash aggregation producing `group_ratio` of its input rows.
    HashAggregate {
        /// Output groups as a fraction of input rows, in `(0, 1]`.
        group_ratio: f64,
    },
    /// Binary join; output rows = `left_rows · right_rows · selectivity`, but
    /// templates usually express joins as FK joins via [`PlanNode::fk_join`].
    Join {
        /// Join selectivity against the cross product.
        selectivity: f64,
    },
    /// Total ordering of the input.
    Sort,
    /// Keep at most `n` rows.
    Limit {
        /// Row cap.
        n: f64,
    },
    /// Bag union of the children.
    Union,
}

impl Operator {
    /// Stable operator-type name used by embeddings and event logs.
    pub fn type_name(&self) -> &'static str {
        match self {
            Operator::TableScan { .. } => "TableScan",
            Operator::Filter { .. } => "Filter",
            Operator::Project { .. } => "Project",
            Operator::HashAggregate { .. } => "HashAggregate",
            Operator::Join { .. } => "Join",
            Operator::Sort => "Sort",
            Operator::Limit { .. } => "Limit",
            Operator::Union => "Union",
        }
    }

    /// All operator type names, in a stable order (the embedding vocabulary).
    pub const TYPE_NAMES: [&'static str; 8] = [
        "TableScan",
        "Filter",
        "Project",
        "HashAggregate",
        "Join",
        "Sort",
        "Limit",
        "Union",
    ];
}

/// A node in the logical plan tree, annotated with cardinality estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The operator at this node.
    pub op: Operator,
    /// Child subplans (0 for scans, 1 for unary ops, 2+ for joins/unions).
    pub children: Vec<PlanNode>,
    /// Estimated output rows (maintained by the builder methods).
    pub est_rows: f64,
    /// Estimated output bytes.
    pub est_bytes: f64,
}

impl PlanNode {
    /// Leaf scan node.
    pub fn scan(table: &str, rows: f64, row_bytes: f64) -> PlanNode {
        let mut n = PlanNode {
            op: Operator::TableScan {
                table: table.to_string(),
                rows,
                row_bytes,
            },
            children: Vec::new(),
            est_rows: 0.0,
            est_bytes: 0.0,
        };
        n.estimate();
        n
    }

    fn unary(op: Operator, child: PlanNode) -> PlanNode {
        let mut n = PlanNode {
            op,
            children: vec![child],
            est_rows: 0.0,
            est_bytes: 0.0,
        };
        n.estimate();
        n
    }

    /// Add a filter above this plan.
    pub fn filter(self, selectivity: f64) -> PlanNode {
        PlanNode::unary(
            Operator::Filter {
                selectivity: selectivity.clamp(0.0, 1.0),
            },
            self,
        )
    }

    /// Add a projection above this plan.
    pub fn project(self, width_factor: f64) -> PlanNode {
        PlanNode::unary(
            Operator::Project {
                width_factor: width_factor.max(1e-3),
            },
            self,
        )
    }

    /// Add a hash aggregation above this plan.
    pub fn hash_aggregate(self, group_ratio: f64) -> PlanNode {
        PlanNode::unary(
            Operator::HashAggregate {
                group_ratio: group_ratio.clamp(1e-9, 1.0),
            },
            self,
        )
    }

    /// Add a sort above this plan.
    pub fn sort(self) -> PlanNode {
        PlanNode::unary(Operator::Sort, self)
    }

    /// Add a limit above this plan.
    pub fn limit(self, n: f64) -> PlanNode {
        PlanNode::unary(Operator::Limit { n: n.max(0.0) }, self)
    }

    /// Join with explicit cross-product selectivity.
    pub fn join(self, right: PlanNode, selectivity: f64) -> PlanNode {
        let mut n = PlanNode {
            op: Operator::Join { selectivity },
            children: vec![self, right],
            est_rows: 0.0,
            est_bytes: 0.0,
        };
        n.estimate();
        n
    }

    /// Foreign-key join: each left row matches ~`fanout` right rows. This is the
    /// common TPC-H/TPC-DS pattern (fact table joining a dimension has fanout 1).
    pub fn fk_join(self, right: PlanNode, fanout: f64) -> PlanNode {
        let sel = if right.est_rows > 0.0 {
            fanout / right.est_rows
        } else {
            0.0
        };
        self.join(right, sel)
    }

    /// Union with another plan.
    pub fn union(self, other: PlanNode) -> PlanNode {
        let mut n = PlanNode {
            op: Operator::Union,
            children: vec![self, other],
            est_rows: 0.0,
            est_bytes: 0.0,
        };
        n.estimate();
        n
    }

    /// Recompute this node's estimates from its children (children must already be
    /// estimated — builders maintain this invariant).
    fn estimate(&mut self) {
        let (rows, bytes) = match (&self.op, &self.children[..]) {
            (
                Operator::TableScan {
                    rows, row_bytes, ..
                },
                _,
            ) => (*rows, rows * row_bytes),
            (Operator::Filter { selectivity }, [c, ..]) => {
                (c.est_rows * selectivity, c.est_bytes * selectivity)
            }
            (Operator::Project { width_factor }, [c, ..]) => {
                (c.est_rows, c.est_bytes * width_factor)
            }
            (Operator::HashAggregate { group_ratio }, [c, ..]) => (
                (c.est_rows * group_ratio).max(1.0),
                (c.est_bytes * group_ratio).max(8.0),
            ),
            (Operator::Join { selectivity }, [l, r, ..]) => {
                let rows = (l.est_rows * r.est_rows * selectivity).max(0.0);
                let width = row_width(l) + row_width(r);
                (rows, rows * width)
            }
            (Operator::Sort, [c, ..]) => (c.est_rows, c.est_bytes),
            (Operator::Limit { n }, [c, ..]) => {
                let rows = c.est_rows.min(*n);
                (rows, rows * row_width(c))
            }
            (Operator::Union, _) => {
                let rows = self.children.iter().map(|c| c.est_rows).sum();
                let bytes = self.children.iter().map(|c| c.est_bytes).sum();
                (rows, bytes)
            }
            // A node missing its required children estimates as empty rather
            // than panicking on a malformed plan.
            _ => (0.0, 0.0),
        };
        self.est_rows = rows;
        self.est_bytes = bytes;
    }

    /// Estimated cardinality of the root operator — embedding component (1).
    pub fn root_cardinality(&self) -> f64 {
        self.est_rows
    }

    /// Total input cardinality over all leaf scans — embedding component (2), and the
    /// "data size" `p` the Centroid Learning algorithm conditions on.
    pub fn leaf_input_rows(&self) -> f64 {
        match &self.op {
            Operator::TableScan { rows, .. } => *rows,
            _ => self.children.iter().map(PlanNode::leaf_input_rows).sum(),
        }
    }

    /// Total bytes scanned from base tables.
    pub fn leaf_input_bytes(&self) -> f64 {
        match &self.op {
            Operator::TableScan {
                rows, row_bytes, ..
            } => rows * row_bytes,
            _ => self.children.iter().map(PlanNode::leaf_input_bytes).sum(),
        }
    }

    /// Pre-order traversal of all nodes.
    pub fn iter_nodes(&self) -> Vec<&PlanNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.iter_nodes());
        }
        out
    }

    /// Number of operators in the plan.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanNode::node_count)
            .sum::<usize>()
    }

    /// Scale every base-table cardinality by `factor` and re-estimate the whole tree
    /// — how dynamic data sizes (§6.1) are modeled without rebuilding templates.
    pub fn scaled(&self, factor: f64) -> PlanNode {
        let mut node = self.clone();
        node.scale_in_place(factor);
        node
    }

    fn scale_in_place(&mut self, factor: f64) {
        for c in &mut self.children {
            c.scale_in_place(factor);
        }
        if let Operator::TableScan { rows, .. } = &mut self.op {
            *rows *= factor;
        }
        self.estimate();
    }
}

/// Average output row width of a node, guarding divide-by-zero on empty estimates.
fn row_width(n: &PlanNode) -> f64 {
    if n.est_rows > 0.0 {
        n.est_bytes / n.est_rows
    } else {
        8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_plan() -> PlanNode {
        let fact = PlanNode::scan("fact", 1_000_000.0, 100.0).filter(0.5);
        let dim = PlanNode::scan("dim", 10_000.0, 50.0);
        fact.fk_join(dim, 1.0).hash_aggregate(0.001)
    }

    #[test]
    fn scan_estimates_rows_and_bytes() {
        let s = PlanNode::scan("t", 1000.0, 80.0);
        assert_eq!(s.est_rows, 1000.0);
        assert_eq!(s.est_bytes, 80_000.0);
    }

    #[test]
    fn filter_scales_cardinality() {
        let p = PlanNode::scan("t", 1000.0, 80.0).filter(0.1);
        assert_eq!(p.est_rows, 100.0);
        assert_eq!(p.est_bytes, 8000.0);
    }

    #[test]
    fn fk_join_preserves_left_cardinality_at_fanout_one() {
        let p = two_table_plan();
        // 500k filtered fact rows × fanout 1 → join output 500k, then agg to 500.
        let join = &p.children[0];
        assert!((join.est_rows - 500_000.0).abs() < 1.0);
        assert!((p.est_rows - 500.0).abs() < 1.0);
    }

    #[test]
    fn leaf_aggregates_cover_all_scans() {
        let p = two_table_plan();
        assert_eq!(p.leaf_input_rows(), 1_010_000.0);
        assert_eq!(p.leaf_input_bytes(), 1_000_000.0 * 100.0 + 10_000.0 * 50.0);
    }

    #[test]
    fn scaled_multiplies_leaves_and_reestimates() {
        let p = two_table_plan();
        let p2 = p.scaled(2.0);
        assert_eq!(p2.leaf_input_rows(), 2.0 * p.leaf_input_rows());
        // Join selectivity is fixed, so output rows grow superlinearly (both sides).
        assert!(p2.root_cardinality() > p.root_cardinality());
        // Original untouched.
        assert_eq!(p.leaf_input_rows(), 1_010_000.0);
    }

    #[test]
    fn limit_caps_rows() {
        let p = PlanNode::scan("t", 1000.0, 10.0).limit(10.0);
        assert_eq!(p.est_rows, 10.0);
        let p = PlanNode::scan("t", 5.0, 10.0).limit(10.0);
        assert_eq!(p.est_rows, 5.0);
    }

    #[test]
    fn union_adds_children() {
        let a = PlanNode::scan("a", 100.0, 10.0);
        let b = PlanNode::scan("b", 200.0, 10.0);
        let u = a.union(b);
        assert_eq!(u.est_rows, 300.0);
        assert_eq!(u.node_count(), 3);
    }

    #[test]
    fn aggregate_never_estimates_zero_rows() {
        let p = PlanNode::scan("t", 10.0, 10.0)
            .filter(0.0)
            .hash_aggregate(0.5);
        assert!(p.est_rows >= 1.0);
    }

    #[test]
    fn iter_nodes_is_preorder_and_complete() {
        let p = two_table_plan();
        let nodes = p.iter_nodes();
        assert_eq!(nodes.len(), p.node_count());
        assert_eq!(nodes[0].op.type_name(), "HashAggregate");
    }

    #[test]
    fn sort_preserves_estimates() {
        let p = PlanNode::scan("t", 42.0, 8.0).sort();
        assert_eq!(p.est_rows, 42.0);
        assert_eq!(p.est_bytes, 336.0);
    }
}
