//! Regenerates the paper's `fig08_synthetic_function` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig08_synthetic_function::run(scale).print();
}
