//! Shared fixture scaffolding for the integration suites.
//!
//! Every fixture under `tests/fixtures/` used to carry its own copy of the
//! boilerplate crates (`sparksim/config.rs`, `sparksim/lib.rs`,
//! `optimizers/space.rs`, `optimizers/lib.rs`); fifteen identical copies of
//! each drifted independently. Those now live once under
//! `tests/fixtures/_common/`, and [`scaffold`] materializes a runnable
//! mini-workspace by copying `_common` into a fresh tempdir and then
//! overlaying the named fixture's files on top — a fixture file at the same
//! relative path wins, so a fixture can still ship its own variant of any
//! common crate (e.g. `config_space` keeps a deliberately-inconsistent
//! `space.rs`).
//!
//! The scaffold root lives under `std::env::temp_dir()` and is removed on
//! drop, so parallel test binaries (and parallel tests within one binary)
//! never share state: the directory name embeds the pid and a per-process
//! counter.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A materialized fixture workspace; the directory is deleted on drop.
pub struct Scaffold {
    pub root: PathBuf,
}

impl Drop for Scaffold {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The on-disk fixture directory (the overlay source, not a runnable root).
#[allow(dead_code)]
pub fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Materialize `_common` + the named fixture overlay into a tempdir.
#[allow(dead_code)]
pub fn scaffold(name: &str) -> Scaffold {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("rhlint-fixture-{name}-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    copy_tree(&fixture_dir("_common"), &root);
    copy_tree(&fixture_dir(name), &root);
    Scaffold { root }
}

fn copy_tree(src: &Path, dst: &Path) {
    let entries = match std::fs::read_dir(src) {
        Ok(entries) => entries,
        Err(e) => panic!("scaffold: read {}: {e}", src.display()),
    };
    std::fs::create_dir_all(dst).expect("scaffold: create dir");
    for entry in entries {
        let entry = entry.expect("scaffold: dir entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            std::fs::copy(&from, &to)
                .unwrap_or_else(|e| panic!("scaffold: copy {}: {e}", from.display()));
        }
    }
}
