#![forbid(unsafe_code)]

//! Criterion micro-benchmarks live under `benches/`; this lib is intentionally empty.
