//! Fixture sparksim crate: minimal but fully-consistent knob plumbing.

pub mod config;

use config::{Knob, SparkConf, APP_LEVEL, QUERY_LEVEL};

/// Exercises the knob API so every public item is referenced outside its
/// defining file (keeps the base fixture free of dead-pub findings).
fn exercise() -> f64 {
    let mut conf = SparkConf::default();
    let mut total = 0.0;
    for knob in QUERY_LEVEL.iter().chain(APP_LEVEL.iter()) {
        let name = knob.spark_name();
        conf.set(*knob, name.len() as f64);
        total += conf.get(*knob);
    }
    total
}
