//! Covariance kernels shared by kernel ridge regression and the Gaussian process.

use serde::{Deserialize, Serialize};

use crate::linalg::{sq_dist, Matrix};

/// A positive-definite kernel over feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Kernel {
    /// Squared-exponential (RBF): `σ² · exp(−‖a−b‖² / (2·ℓ²))`.
    Rbf {
        /// Length-scale ℓ (> 0).
        length_scale: f64,
        /// Signal variance σ².
        variance: f64,
    },
    /// Matérn 5/2, a common BO default that is less smooth than RBF.
    Matern52 {
        /// Length-scale ℓ (> 0).
        length_scale: f64,
        /// Signal variance σ².
        variance: f64,
    },
}

impl Kernel {
    /// An RBF kernel with unit variance.
    pub fn rbf(length_scale: f64) -> Kernel {
        Kernel::Rbf {
            length_scale,
            variance: 1.0,
        }
    }

    /// A Matérn 5/2 kernel with unit variance.
    pub fn matern52(length_scale: f64) -> Kernel {
        Kernel::Matern52 {
            length_scale,
            variance: 1.0,
        }
    }

    /// Evaluate `k(a, b)`.
    pub(crate) fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Rbf {
                length_scale,
                variance,
            } => {
                let d2 = sq_dist(a, b);
                variance * (-d2 / (2.0 * length_scale * length_scale)).exp()
            }
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let d = sq_dist(a, b).sqrt();
                let s = 5f64.sqrt() * d / length_scale;
                variance * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }

    /// Kernel self-covariance `k(x, x)` (the signal variance for stationary kernels).
    pub fn diag(&self) -> f64 {
        match *self {
            Kernel::Rbf { variance, .. } | Kernel::Matern52 { variance, .. } => variance,
        }
    }

    /// Gram matrix `K[i][j] = k(xs[i], xs[j])`.
    pub fn gram(&self, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&xs[i], &xs[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Cross-covariance vector `k(x, xs[i])` for all `i`.
    pub fn cross(&self, x: &[f64], xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|xi| self.eval(x, xi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_is_one_at_zero_distance() {
        let k = Kernel::rbf(1.0);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::rbf(1.0);
        let near = k.eval(&[0.0], &[0.5]);
        let far = k.eval(&[0.0], &[3.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn matern_is_one_at_zero_and_decays() {
        let k = Kernel::matern52(1.0);
        assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!(k.eval(&[0.0], &[1.0]) > k.eval(&[0.0], &[2.0]));
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal() {
        let k = Kernel::rbf(2.0);
        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![-1.0, 3.0]];
        let g = k.gram(&xs);
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn longer_length_scale_means_slower_decay() {
        let short = Kernel::rbf(0.5);
        let long = Kernel::rbf(5.0);
        assert!(long.eval(&[0.0], &[1.0]) > short.eval(&[0.0], &[1.0]));
    }
}
