//! RH026 fixture: allocations sized by raw wire bytes.
//!
//! Two positives — a direct `Vec::with_capacity(len)` on an unchecked wire
//! length, and the same length handed to a helper that allocates (caught
//! through the parameter-sink summary). One negative: the length is checked
//! against `MAX_PAYLOAD_BYTES` first, so the dominating-bound sanitizer
//! clears the taint's hazard.

const MAX_PAYLOAD_BYTES: usize = 1048576;

fn read_len_unchecked(hdr: [u8; 4]) -> Vec<u8> {
    let len = u32::from_le_bytes(hdr) as usize;
    Vec::with_capacity(len)
}

fn read_len_indirect(hdr: [u8; 4]) -> Vec<u8> {
    let len = u32::from_le_bytes(hdr) as usize;
    alloc_buf(len)
}

fn alloc_buf(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

fn read_vec_macro_unchecked(hdr: [u8; 4]) -> Vec<u8> {
    let len = u32::from_le_bytes(hdr) as usize;
    vec![0u8; len]
}

fn read_len_checked(hdr: [u8; 4]) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return None;
    }
    Some(Vec::with_capacity(len))
}
