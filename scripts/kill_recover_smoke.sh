#!/usr/bin/env bash
# Kill-and-recover smoke: start a durable rockserve, load it, SIGKILL it
# (no drain, no final fsync barrier), restart on the same state dir, and
# require that the second boot actually replayed WAL records before
# accepting traffic. The log file is the uploadable artifact: both servers'
# stdout plus the durability counters and the verdict.
# Usage: scripts/kill_recover_smoke.sh [SHARDS]
#   SHARDS (default 1) runs the same smoke against a sharded server — one
#   WAL/snapshot lineage per shard-NNNN/ directory, recovered independently.
#   Sharded runs log to recovery-shardsN.log so runs don't clobber each other.
# Expects ./target/release/{rockserve,serve_loadgen} to exist
# (scripts/ci.sh builds them first).
set -euo pipefail

cd "$(dirname "$0")/.."

SHARDS="${1:-1}"
PORT_A=$((7161 + SHARDS * 10))
PORT_B=$((PORT_A + 1))
if [ "$SHARDS" -gt 1 ]; then
  LOG="recovery-shards${SHARDS}.log"
else
  LOG="recovery.log"
fi

STATE_DIR="$(mktemp -d)"
trap 'rm -rf "$STATE_DIR"' EXIT
rm -f "$LOG"

wait_for_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- || true
      return 0
    fi
    sleep 0.2
  done
  echo "server on port $1 never came up" >> "$LOG"
  return 1
}

./target/release/rockserve --addr "127.0.0.1:$PORT_A" --seed 77 \
  --state-dir "$STATE_DIR" --shards "$SHARDS" >> "$LOG" 2>&1 &
SERVE_PID=$!
wait_for_port "$PORT_A"
./target/release/serve_loadgen --quick --seed 77 \
  --addr "127.0.0.1:$PORT_A" --out "$STATE_DIR/phase_a.json"

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

./target/release/rockserve --addr "127.0.0.1:$PORT_B" --seed 77 \
  --state-dir "$STATE_DIR" --shards "$SHARDS" >> "$LOG" 2>&1 &
SERVE_PID=$!
wait_for_port "$PORT_B"
./target/release/serve_loadgen --quick --seed 78 \
  --addr "127.0.0.1:$PORT_B" --out "$STATE_DIR/phase_b.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

grep -o '"durability": {[^}]*}' "$STATE_DIR/phase_b.json" >> "$LOG"
REPLAYED="$(grep -o '"recovery_replayed": [0-9]*' "$STATE_DIR/phase_b.json" \
  | grep -o '[0-9]*$' || echo 0)"
if [ "${REPLAYED:-0}" -gt 0 ] && grep -q "rockserve recovered:" "$LOG"; then
  echo "kill-and-recover (${SHARDS} shard(s)): OK (${REPLAYED} record(s) replayed after SIGKILL)" \
    | tee -a "$LOG"
else
  echo "kill-and-recover (${SHARDS} shard(s)): FAILED (recovery_replayed=${REPLAYED:-0})" \
    | tee -a "$LOG"
  exit 1
fi
