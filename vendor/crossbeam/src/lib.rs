//! Offline shim of the `crossbeam` API surface this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`. Implemented as an
//! MPMC queue over `std::sync::{Mutex, Condvar}` — not as fast as the real
//! crate, but semantically equivalent for the service-thread request/reply
//! pattern in `pipeline::service`.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned when the channel is disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // No T: Debug bound, matching upstream crossbeam.
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = lock_state(&self.shared);
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock_state(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = lock_state(&self.shared);
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock_state(&self.shared);
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock_state(&self.shared);
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = lock_state(&self.shared);
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Drain-style blocking iterator, ends when all senders hang up.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock_state(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock_state(&self.shared).receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    fn lock_state<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn request_reply_round_trip() {
            let (tx, rx) = unbounded::<(u64, Sender<u64>)>();
            let worker = thread::spawn(move || {
                while let Ok((n, reply)) = rx.recv() {
                    let _ = reply.send(n * 2);
                }
            });
            let (reply_tx, reply_rx) = unbounded();
            tx.send((21, reply_tx)).expect("worker alive");
            assert_eq!(reply_rx.recv(), Ok(42));
            drop(tx);
            worker.join().expect("worker exits cleanly");
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).expect("receiver alive");
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
