//! Runtime determinism gate: the same seed must reproduce the same
//! simulation, bit for bit. This is the dynamic counterpart of rhlint's
//! static determinism rules — if an unseeded RNG, wall-clock read, or
//! hash-ordered iteration ever sneaks past the static pass, the serialized
//! traces diverge here.

use sparksim::config::SparkConf;
use sparksim::fault::FaultSpec;
use sparksim::simulator::Simulator;
use workloads::notebook::{generate_population, PopulationConfig};

/// Run the whole population once: every query of every notebook executes
/// under the default configuration, and both the metrics and the serialized
/// event trace are captured.
fn run_once(seed: u64) -> Vec<String> {
    let population = generate_population(&PopulationConfig::default(), seed);
    let conf = SparkConf::default();
    let mut trace = Vec::new();
    for (nb_idx, notebook) in population.iter().enumerate() {
        for query in &notebook.queries {
            let sim = Simulator::default_pool(query.noise.clone());
            let run = sim.execute(&query.plan, &conf, seed ^ query.signature);
            trace.push(format!(
                "{nb_idx} {} {} {:.9} {:.9} {} {}",
                notebook.artifact_id,
                query.signature,
                run.metrics.elapsed_ms,
                run.metrics.true_ms,
                run.metrics.num_tasks,
                run.metrics.num_stages,
            ));
            let events = sim.events_for_run(
                "app-determinism",
                &notebook.artifact_id,
                query.signature,
                &query.plan,
                &conf,
                Vec::new(),
                &run,
            );
            for event in &events {
                trace.push(serde_json::to_string(event).expect("events serialize to JSON"));
            }
        }
    }
    trace
}

#[test]
fn same_seed_reproduces_identical_metrics_and_event_traces() {
    let first = run_once(0xB0BA_FE77);
    let second = run_once(0xB0BA_FE77);
    assert_eq!(first.len(), second.len(), "trace lengths diverged");
    for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert_eq!(a, b, "trace line {i} diverged");
    }
}

/// The same property under injected faults: every fault decision is drawn
/// from the salted run-seed RNG, so the full outcome sequence — OOM kills,
/// executor-loss aborts, partial times, censored completions — replays
/// bit-for-bit.
fn run_once_faulty(seed: u64) -> Vec<String> {
    let population = generate_population(&PopulationConfig::default(), seed);
    let conf = SparkConf::default();
    let spec = FaultSpec::chaos();
    let mut trace = Vec::new();
    for notebook in &population {
        for query in &notebook.queries {
            let sim = Simulator::default_pool(query.noise.clone());
            let outcome = sim.execute_outcome(&query.plan, &conf, seed ^ query.signature, &spec);
            trace.push(serde_json::to_string(&outcome).expect("outcomes serialize to JSON"));
        }
    }
    trace
}

#[test]
fn same_seed_replays_the_same_fault_sequence() {
    let first = run_once_faulty(0xFA17_0001);
    let second = run_once_faulty(0xFA17_0001);
    assert_eq!(first, second, "fault sequences diverged across replays");
    // The chaos regime must actually produce non-Success outcomes, or the
    // equality above says nothing about fault determinism.
    assert!(
        first
            .iter()
            .any(|line| line.contains("Failed") || line.contains("Censored")),
        "chaos spec produced no faults across the population"
    );
}

#[test]
fn different_seeds_change_the_population() {
    // Sanity check that the trace actually depends on the seed (i.e. the
    // equality above is not vacuous).
    assert_ne!(run_once(1), run_once(2));
}
