//! Long-form rule documentation backing `rhlint explain RH0NN`.
//!
//! Each rule gets a rationale (why the workspace bans the pattern), a
//! minimal example violation, and the sanctioned fix. Text is static and
//! append-only like the rule codes themselves, so `explain` output is
//! stable across runs and suitable for CI links.

use crate::Rule;

/// One rule's long-form documentation.
pub struct Explanation {
    /// Why the pattern is banned in this workspace.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
    /// The sanctioned fix.
    pub fix: &'static str,
}

pub(crate) fn explanation(rule: Rule) -> Explanation {
    match rule {
        Rule::Unwrap => Explanation {
            rationale: "A panicking `.unwrap()` in library code turns a recoverable error into \
                        a crashed evaluation worker. The tuner's parallel engine treats worker \
                        panics as poisoned runs, so one bad trial aborts a whole batch.",
            example: "let conf = space.to_conf(&point).unwrap();",
            fix: "Return the error (`?`) or provide a total alternative such as \
                  `unwrap_or`/`match`. Tests (`#[cfg(test)]`) are exempt.",
        },
        Rule::Expect => Explanation {
            rationale: "`.expect(..)` is `.unwrap()` with a nicer epitaph — it still panics in \
                        production and aborts the evaluation batch.",
            example: "let v = env_budget.expect(\"budget must be set\");",
            fix: "Propagate the error with `?` or handle the `None`/`Err` arm explicitly.",
        },
        Rule::Panic => Explanation {
            rationale: "`panic!`, `todo!`, `unimplemented!`, and `unreachable!` are control flow \
                        by crashing. The optimizer must degrade gracefully when a trial fails.",
            example: "_ => panic!(\"unknown knob {k:?}\"),",
            fix: "Return an `Err` or a documented default; reserve panics for `#[cfg(test)]`.",
        },
        Rule::SliceIndex => Explanation {
            rationale: "A literal index like `xs[0]` panics on an empty slice. History replays \
                        and wire payloads are attacker- or operator-shaped, so emptiness is a \
                        reachable state, not a bug in the caller.",
            example: "let best = sorted_trials[0];",
            fix: "Use `.first()`, `.get(i)`, or a slice pattern and handle the `None` arm.",
        },
        Rule::WallClock => Explanation {
            rationale: "`Instant::now`/`SystemTime::now` make runs time-dependent. The \
                        simulator and optimizers must be bit-reproducible given a seed, or \
                        regression gates cannot distinguish a perf change from noise.",
            example: "let t0 = Instant::now();",
            fix: "Thread a logical clock or take durations from the simulator; wall-clock \
                  timing belongs in the bench harness, not library crates.",
        },
        Rule::AmbientRng => Explanation {
            rationale: "`thread_rng()` and OS-entropy constructors draw from ambient state, so \
                        two runs with the same seed diverge. Every stochastic component must \
                        consume an explicit seeded `StdRng`.",
            example: "let mut rng = rand::thread_rng();",
            fix: "Accept a `&mut StdRng` (or a seed) from the caller; derive child seeds with \
                  `SeedableRng::seed_from_u64`.",
        },
        Rule::HashIter => Explanation {
            rationale: "`HashMap`/`HashSet` iteration order changes run to run (SipHash keys \
                        are randomized), which leaks nondeterminism into anything that iterates.",
            example: "let mut knobs: HashMap<Knob, f64> = HashMap::new();",
            fix: "Use `BTreeMap`/`BTreeSet` in deterministic crates; ordering is part of the \
                  contract.",
        },
        Rule::PartialCmpUnwrap => Explanation {
            rationale: "`partial_cmp(..).unwrap()` panics the first time a NaN reaches a sort — \
                        typically deep inside a tuning run where the backtrace is useless.",
            example: "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            fix: "Use `f64::total_cmp` (or the workspace's total-order helpers).",
        },
        Rule::FloatSort => Explanation {
            rationale: "Float sorts/min/max built on `partial_cmp` silently misorder or drop \
                        NaN values, corrupting surrogate-model rankings.",
            example: "let best = costs.iter().cloned().fold(f64::MAX, f64::min);",
            fix: "Sort with `total_cmp`; represent missing data as `Option<f64>`, not NaN.",
        },
        Rule::NanLiteral => Explanation {
            rationale: "A bare `f64::NAN` sentinel poisons every comparison it touches and \
                        defeats the float-safety rules above.",
            example: "let mut best = f64::NAN;",
            fix: "Model absence with `Option<f64>` and make the empty case explicit.",
        },
        Rule::ConfigSpace => Explanation {
            rationale: "The tuned Spark parameters are declared twice — as simulator knobs in \
                        `config.rs` and as search dimensions in `space.rs`. If the two drift, \
                        the optimizer tunes a knob the simulator ignores (or vice versa).",
            example: "space.rs declares `Knob::ShufflePartitions` but config.rs has no \
                      matching knob entry.",
            fix: "Add the knob to both declarations with consistent bounds, or remove it from \
                  both.",
        },
        Rule::BadSuppression => Explanation {
            rationale: "An `rhlint:allow` with an unknown rule id or no justification is an \
                        unauditable hole in the lint gate.",
            example: "// rhlint:allow(unwrpa)",
            fix: "Use `// rhlint:allow(rule-id): reason` with a real rule id and a reason.",
        },
        Rule::DeterminismTaint => Explanation {
            rationale: "A deterministic entry point (optimizer step, simulator run) that \
                        *transitively* reaches ambient RNG, wall-clock, or hash iteration is \
                        just as nondeterministic as calling them directly; the callgraph pass \
                        closes that loophole.",
            example: "fn suggest(..) { helper() }  // helper() calls Instant::now()",
            fix: "Push the ambient effect out to the caller or replace it with a seeded/logical \
                  source, then re-run the taint pass.",
        },
        Rule::IgnoredResult => Explanation {
            rationale: "Dropping a workspace function's `Result`/`Option` on the floor silently \
                        swallows trial failures, so the tuner keeps optimizing against stale \
                        state.",
            example: "record_outcome(run);  // returns Result<(), HistoryError>",
            fix: "Handle the value: `?`, `match`, or an explicit `let _ =` with an \
                  `rhlint:allow` justifying why dropping is sound.",
        },
        Rule::LossyCast => Explanation {
            rationale: "`as` casts saturate floats and wrap integers silently. A budget of \
                        `u64::MAX as f64 as usize` is a very different budget on 32-bit.",
            example: "let n = total_bytes as u32;",
            fix: "Use `TryFrom`/`try_into` and handle the error, or prove the range and clamp \
                  first.",
        },
        Rule::DeadPub => Explanation {
            rationale: "`pub` items nobody references outside their file expand the API the \
                        workspace must keep stable and hide real dead code.",
            example: "pub fn legacy_score(..) { .. }  // no external references",
            fix: "Demote to `pub(crate)`/private, or delete the item.",
        },
        Rule::OutcomeMatch => Explanation {
            rationale: "`RunOutcome` grows new failure modes (`Failed`, `Censored`) as the \
                        robust-tuning work lands. A `_` arm silently treats new failures as \
                        successes.",
            example: "match outcome { RunOutcome::Ok(v) => v, _ => 0.0 }",
            fix: "Match `Failed` and `Censored` explicitly so new variants are compile-time \
                  visible.",
        },
        Rule::ThreadSpawn => Explanation {
            rationale: "Raw `thread::spawn` bypasses `rockpool::Pool`, which is where seeds \
                        split deterministically on task index and results reduce in submission \
                        order. Ad-hoc threads reintroduce scheduling nondeterminism.",
            example: "std::thread::spawn(move || evaluate(conf));",
            fix: "Fan out through `rockpool::Pool`; only rockpool, `pipeline::service`, and \
                  rockserve own threads.",
        },
        Rule::RawSocket => Explanation {
            rationale: "Sockets constructed outside `rockserve` bypass the serving layer's \
                        framing, admission control, and drain contract — the tested path for \
                        every byte on the wire.",
            example: "let l = TcpListener::bind((\"0.0.0.0\", port))?;",
            fix: "Route networking through rockserve; other crates talk to it via its client \
                  API.",
        },
        Rule::LockOrderCycle => Explanation {
            rationale: "Two locks taken in opposite orders on different paths deadlock the \
                        first time both paths race. The CFG pass proves the cycle, including \
                        through callees.",
            example: "thread A: history.lock() then model.lock(); thread B: model.lock() then \
                      history.lock()",
            fix: "Pick one global acquisition order and restructure the losing path, or merge \
                  the two locks.",
        },
        Rule::BlockingUnderLock => Explanation {
            rationale: "Blocking (channel `recv`, `join()`, socket I/O, `sleep`) while holding \
                        a guard serializes every other thread behind the wait and can deadlock \
                        against the thing being waited on.",
            example: "let g = state.lock().unwrap(); let msg = rx.recv();",
            fix: "Drop the guard before blocking: clone what you need, `drop(g)`, then wait.",
        },
        Rule::UnboundedGrowth => Explanation {
            rationale: "A collection owned by long-lived service state that only ever grows is \
                        a slow OOM in a serving process that runs for weeks.",
            example: "self.history.push(trial);  // no eviction anywhere",
            fix: "Add an eviction policy (ring buffer, LRU, cap + drain) or document the bound \
                  with an allow.",
        },
        Rule::PanicUnderLock => Explanation {
            rationale: "Panicking while holding a `Mutex` poisons it; every later `lock()` \
                        returns `Err` and the service limps or crashes long after the root \
                        cause.",
            example: "let g = state.lock().unwrap(); g.best = trials[0];  // [0] can panic",
            fix: "Do fallible work before acquiring, or handle the fallible case so the \
                  critical section cannot panic.",
        },
        Rule::HotPathAlloc => Explanation {
            rationale: "Functions tagged `rhlint:hot` sit on the per-request or per-trial path; \
                        a fresh `Vec`/`String`/`Box` per call is avoidable allocator pressure \
                        exactly where latency matters.",
            example: "// rhlint:hot\nfn score(..) { let mut buf = Vec::new(); .. }",
            fix: "Preallocate outside the hot path, reuse a scratch buffer, or take the \
                  allocation as a parameter.",
        },
        Rule::StaleAllow => Explanation {
            rationale: "An `rhlint:allow` that no longer suppresses anything is audit noise and \
                        hides the next real violation added on that line.",
            example: "// rhlint:allow(unwrap): legacy  ← but the unwrap was removed",
            fix: "Delete the stale comment; `rhlint fix --stale-allows --write` does it \
                  mechanically.",
        },
        Rule::UnvalidatedLengthAlloc => Explanation {
            rationale: "An allocation sized by an untrusted value — wire bytes, an env var, a \
                        file read — lets a hostile peer request gigabytes with four bytes. The \
                        taint pass requires a dominating bound check between source and \
                        allocation.",
            example: "let len = u32::from_le_bytes(hdr) as usize;\nlet buf = vec![0u8; len];",
            fix: "Bound first: `if len > MAX_PAYLOAD_BYTES { return Err(..) }` before \
                  allocating, or clamp/`min` against a trusted cap.",
        },
        Rule::TaintedIndex => Explanation {
            rationale: "Indexing a slice with an untrusted value panics the serving thread on \
                        the first out-of-range input; that is a remote denial of service, not a \
                        bug report.",
            example: "let idx = u16::from_le_bytes(w) as usize;\nlet knob = dims[idx];",
            fix: "Use `.get(idx)` and handle `None`, or check `idx < dims.len()` first (the \
                  guard sanitizes the taint).",
        },
        Rule::ConfigOutOfRange => Explanation {
            rationale: "The interval pass derives value ranges for every config write. A \
                        suggested or clamped parameter whose derived interval escapes the \
                        declared `SearchSpace` bounds ships a configuration Spark may reject — \
                        or silently misbehave on.",
            example: "conf.set(Knob::ShufflePartitions, 8192.0);  // Dim is [8, 4096]",
            fix: "Clamp to the declared `Dim` range (`v.clamp(d.lo, d.hi)`) or fix the \
                  declaration so bounds and writes agree.",
        },
        Rule::UncheckedArithUntrusted => Explanation {
            rationale: "`+`/`-`/`*`/`<<` on an untrusted integer can overflow: wrapping in \
                        release builds (silent corruption) or panicking in debug. Frame-length \
                        math is the classic case.",
            example: "let total = len + HEADER_BYTES;  // len from the wire",
            fix: "Use `checked_add`/`saturating_add` (which the pass treats as sanitizing), or \
                  bound-check the value first.",
        },
        Rule::UntrustedDivisor => Explanation {
            rationale: "`/` or `%` by an untrusted value panics on zero — and zero is always in \
                        a hostile input's repertoire. The pass accepts either a dominating \
                        guard or interval evidence excluding zero.",
            example: "let per = budget / workers;  // workers parsed from an env var",
            fix: "Guard with `if workers == 0 { return Err(..) }` or floor with \
                  `.max(1)` before dividing.",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_nonempty_explanation() {
        for rule in Rule::ALL {
            let e = explanation(rule);
            assert!(!e.rationale.is_empty(), "{} rationale", rule.code());
            assert!(!e.example.is_empty(), "{} example", rule.code());
            assert!(!e.fix.is_empty(), "{} fix", rule.code());
        }
    }
}
