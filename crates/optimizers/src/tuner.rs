//! The online-tuning interface every optimizer implements, plus shared observation
//! bookkeeping.

use serde::{Deserialize, Serialize};

/// Compile-time context available when a configuration must be suggested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningContext {
    /// Workload embedding of the submitted query (may be empty when no embedder is
    /// configured, e.g. for the synthetic function).
    pub embedding: Vec<f64>,
    /// Expected input data size for this run (the optimizer's estimate `p`; the
    /// paper notes it "is often unknown at the start" — environments expose their
    /// best compile-time estimate here and the true size in the outcome).
    pub expected_data_size: f64,
    /// Tuning iteration (0-based).
    pub iteration: u32,
}

/// What came back from executing a suggested configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Observed (noisy) execution time, ms.
    pub elapsed_ms: f64,
    /// Actual input data size of the run (the `p` recorded with each observation).
    pub data_size: f64,
}

/// An online configuration tuner: suggest a point, observe its outcome, repeat.
/// Points are raw-unit vectors over the tuner's [`crate::space::ConfigSpace`].
pub trait Tuner {
    /// Propose the configuration for the next run.
    fn suggest(&mut self, ctx: &TuningContext) -> Vec<f64>;

    /// Record the outcome of running `point`.
    fn observe(&mut self, point: &[f64], outcome: &Outcome);

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// One recorded observation — the paper's `(c_i, p_i, r_i)` triple of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration point (raw units).
    pub point: Vec<f64>,
    /// The data size `p` of that run.
    pub data_size: f64,
    /// The observed performance `r` (elapsed ms; lower is better).
    pub elapsed_ms: f64,
}

/// An append-only observation history with the sliding-window view `Ω(t, N)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// All observations, oldest first.
    pub all: Vec<Observation>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Record one observation.
    pub fn push(&mut self, point: Vec<f64>, data_size: f64, elapsed_ms: f64) {
        self.all.push(Observation {
            point,
            data_size,
            elapsed_ms,
        });
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether no observations exist.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The latest `n` observations — `Ω(t, N)`.
    pub fn window(&self, n: usize) -> &[Observation] {
        let start = self.all.len().saturating_sub(n);
        &self.all[start..]
    }

    /// The observation with the smallest raw elapsed time (FIND_BEST v1).
    pub fn best_raw(&self) -> Option<&Observation> {
        self.all
            .iter()
            .min_by(|a, b| a.elapsed_ms.total_cmp(&b.elapsed_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: f64) -> (Vec<f64>, f64, f64) {
        (vec![t], 1.0, t)
    }

    #[test]
    fn window_returns_latest_n() {
        let mut h = History::new();
        for i in 0..10 {
            let (p, d, r) = obs(i as f64);
            h.push(p, d, r);
        }
        let w = h.window(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].elapsed_ms, 7.0);
        assert_eq!(h.window(100).len(), 10);
    }

    #[test]
    fn best_raw_finds_minimum() {
        let mut h = History::new();
        for t in [5.0, 2.0, 9.0] {
            let (p, d, r) = obs(t);
            h.push(p, d, r);
        }
        assert_eq!(h.best_raw().unwrap().elapsed_ms, 2.0);
    }

    #[test]
    fn empty_history_has_no_best() {
        assert!(History::new().best_raw().is_none());
        assert!(History::new().window(5).is_empty());
    }
}
