//! Backend storage (§5, "Autotune Backend").
//!
//! "Each Spark application is assigned a dedicated folder for event files, organized
//! by its job ID, and another folder for its artifact_id … Restricted access is
//! enforced through SAS URLs … A Storage Manager oversees the cleanup of outdated
//! event files to maintain GDPR compliance."
//!
//! The reproduction keeps the same shape: a thread-safe, path-addressed object store
//! with *capability tokens* (prefix-scoped, read/write-scoped, expiring) standing in
//! for SAS URLs, and a retention sweep driven by logical time (a monotone run
//! counter, keeping everything deterministic).

use std::collections::BTreeMap;
use std::path::Path;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::PipelineError;

/// A prefix-scoped, expiring capability — the SAS-URL stand-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessToken {
    /// Paths this token may touch must start with this prefix.
    pub prefix: String,
    /// Whether writes are allowed (reads always are, within the prefix).
    pub can_write: bool,
    /// Logical expiry tick (inclusive).
    pub expires_at: u64,
}

impl AccessToken {
    fn permits(&self, path: &str, write: bool, now: u64) -> bool {
        path.starts_with(&self.prefix) && now <= self.expires_at && (self.can_write || !write)
    }
}

#[derive(Debug)]
struct Object {
    bytes: Vec<u8>,
    written_at: u64,
}

/// Thread-safe path-addressed object store with logical time.
#[derive(Debug, Default)]
pub struct Storage {
    inner: RwLock<StorageInner>,
}

#[derive(Debug, Default)]
struct StorageInner {
    objects: BTreeMap<String, Object>,
    clock: u64,
    /// Writes left to reject with [`PipelineError::Unavailable`] — the
    /// deterministic outage-injection hook used by fault experiments.
    failing_puts: u64,
}

/// Conventional path layout (one place to keep the folder scheme consistent).
pub mod paths {
    /// Event file for one application run.
    pub fn events(app_id: &str) -> String {
        format!("events/{app_id}/events.jsonl")
    }

    /// Model file for one query signature (scoped per user for privacy: "models are
    /// trained exclusively with … query traces originating from the same user").
    pub fn model(user: &str, signature: u64) -> String {
        format!("models/{user}/{signature:016x}.json")
    }

    /// App-cache entry for one artifact.
    pub fn app_cache(artifact_id: &str) -> String {
        format!("app_cache/{artifact_id}.json")
    }

    /// Baseline model for one region.
    pub fn baseline(region: &str) -> String {
        format!("baseline/{region}.json")
    }
}

impl Storage {
    /// Empty store at tick 0.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Advance logical time by one tick and return the new value. The service calls
    /// this once per application run.
    pub fn tick(&self) -> u64 {
        let mut g = self.inner.write();
        g.clock += 1;
        g.clock
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.inner.read().clock
    }

    /// Issue a token. (In production the Autotune Manager authenticates the caller
    /// first; the reproduction trusts its single tenant.)
    pub fn issue_token(&self, prefix: &str, can_write: bool, ttl_ticks: u64) -> AccessToken {
        let now = self.now();
        AccessToken {
            prefix: prefix.to_string(),
            can_write,
            expires_at: now.saturating_add(ttl_ticks),
        }
    }

    /// Make the next `n` writes fail with [`PipelineError::Unavailable`] — a
    /// deterministic stand-in for a storage outage. Each rejected write consumes
    /// one unit, so recovery is exact and reproducible.
    pub fn inject_put_failures(&self, n: u64) {
        self.inner.write().failing_puts = n;
    }

    /// Write an object through a token.
    pub fn put(
        &self,
        token: &AccessToken,
        path: &str,
        bytes: Vec<u8>,
    ) -> Result<(), PipelineError> {
        let mut g = self.inner.write();
        if !token.permits(path, true, g.clock) {
            return Err(PipelineError::AccessDenied {
                path: path.to_string(),
            });
        }
        if g.failing_puts > 0 {
            g.failing_puts -= 1;
            return Err(PipelineError::Unavailable {
                path: path.to_string(),
            });
        }
        let written_at = g.clock;
        g.objects
            .insert(path.to_string(), Object { bytes, written_at });
        Ok(())
    }

    /// Read an object through a token.
    pub fn get(&self, token: &AccessToken, path: &str) -> Result<Vec<u8>, PipelineError> {
        let g = self.inner.read();
        if !token.permits(path, false, g.clock) {
            return Err(PipelineError::AccessDenied {
                path: path.to_string(),
            });
        }
        g.objects
            .get(path)
            .map(|o| o.bytes.clone())
            .ok_or_else(|| PipelineError::NotFound {
                path: path.to_string(),
            })
    }

    /// List paths under a prefix (token must cover the prefix).
    pub fn list(&self, token: &AccessToken, prefix: &str) -> Result<Vec<String>, PipelineError> {
        let g = self.inner.read();
        if !token.permits(prefix, false, g.clock) {
            return Err(PipelineError::AccessDenied {
                path: prefix.to_string(),
            });
        }
        Ok(g.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    /// Delete one object.
    // rhlint:allow(dead-pub): artifact-store management API
    pub fn delete(&self, token: &AccessToken, path: &str) -> Result<(), PipelineError> {
        let mut g = self.inner.write();
        if !token.permits(path, true, g.clock) {
            return Err(PipelineError::AccessDenied {
                path: path.to_string(),
            });
        }
        g.objects
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| PipelineError::NotFound {
                path: path.to_string(),
            })
    }

    /// The Storage Manager's retention sweep: drop every object under `prefix` older
    /// than `retention_ticks`. Returns the number of objects removed.
    pub fn cleanup(&self, prefix: &str, retention_ticks: u64) -> usize {
        let mut g = self.inner.write();
        let cutoff = g.clock.saturating_sub(retention_ticks);
        let stale: Vec<String> = g
            .objects
            .iter()
            .filter(|(k, o)| k.starts_with(prefix) && o.written_at < cutoff)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &stale {
            g.objects.remove(k);
        }
        stale.len()
    }

    /// Total stored objects (monitoring).
    pub fn object_count(&self) -> usize {
        self.inner.read().objects.len()
    }

    /// Persist the whole store to a directory (one file per object, the path layout
    /// mirrored on disk, plus a `_meta` file carrying logical timestamps). Gives the
    /// backend durability across process restarts without a database.
    // rhlint:allow(dead-pub): artifact-store management API
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        let g = self.inner.read();
        std::fs::create_dir_all(dir)?;
        let mut meta = String::new();
        meta.push_str(&format!("clock {}\n", g.clock));
        for (path, obj) in &g.objects {
            let file = dir.join(path);
            if let Some(parent) = file.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&file, &obj.bytes)?;
            meta.push_str(&format!("{} {}\n", obj.written_at, path));
        }
        std::fs::write(dir.join("_meta"), meta)?;
        Ok(())
    }

    /// Load a store previously written by [`Storage::save_to_dir`]. Objects listed
    /// in `_meta` but missing on disk are skipped.
    // rhlint:allow(dead-pub): artifact-store management API
    pub fn load_from_dir(dir: &Path) -> std::io::Result<Storage> {
        let meta = std::fs::read_to_string(dir.join("_meta"))?;
        let mut inner = StorageInner::default();
        for line in meta.lines() {
            let mut parts = line.splitn(2, ' ');
            let (Some(first), Some(rest)) = (parts.next(), parts.next()) else {
                continue;
            };
            if first == "clock" {
                inner.clock = rest.parse().unwrap_or(0);
                continue;
            }
            let Ok(written_at) = first.parse::<u64>() else {
                continue;
            };
            let Ok(bytes) = std::fs::read(dir.join(rest)) else {
                continue;
            };
            inner
                .objects
                .insert(rest.to_string(), Object { bytes, written_at });
        }
        Ok(Storage {
            inner: RwLock::new(inner),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_token(s: &Storage) -> AccessToken {
        s.issue_token("", true, u64::MAX)
    }

    #[test]
    fn put_get_roundtrip() {
        let s = Storage::new();
        let t = root_token(&s);
        s.put(&t, "events/app-1/events.jsonl", b"hello".to_vec())
            .unwrap();
        assert_eq!(s.get(&t, "events/app-1/events.jsonl").unwrap(), b"hello");
    }

    #[test]
    fn token_prefix_is_enforced() {
        let s = Storage::new();
        let scoped = s.issue_token("events/app-1/", true, 100);
        s.put(&scoped, "events/app-1/events.jsonl", vec![1])
            .unwrap();
        let err = s.put(&scoped, "events/app-2/events.jsonl", vec![2]);
        assert!(matches!(err, Err(PipelineError::AccessDenied { .. })));
        let err = s.get(&scoped, "models/u/0000000000000001.json");
        assert!(matches!(err, Err(PipelineError::AccessDenied { .. })));
    }

    #[test]
    fn read_only_token_cannot_write() {
        let s = Storage::new();
        let rw = root_token(&s);
        s.put(&rw, "models/u/a.json", vec![1]).unwrap();
        let ro = s.issue_token("models/", false, 100);
        assert!(s.get(&ro, "models/u/a.json").is_ok());
        assert!(matches!(
            s.put(&ro, "models/u/a.json", vec![2]),
            Err(PipelineError::AccessDenied { .. })
        ));
    }

    #[test]
    fn expired_token_is_rejected() {
        let s = Storage::new();
        let t = s.issue_token("", true, 1);
        s.put(&t, "x", vec![1]).unwrap();
        s.tick();
        s.tick(); // now = 2 > expires_at = 1
        assert!(matches!(
            s.get(&t, "x"),
            Err(PipelineError::AccessDenied { .. })
        ));
    }

    #[test]
    fn list_scopes_to_prefix() {
        let s = Storage::new();
        let t = root_token(&s);
        s.put(&t, "events/a/1", vec![]).unwrap();
        s.put(&t, "events/b/1", vec![]).unwrap();
        s.put(&t, "models/x", vec![]).unwrap();
        assert_eq!(s.list(&t, "events/").unwrap().len(), 2);
        assert_eq!(s.list(&t, "events/a/").unwrap(), vec!["events/a/1"]);
    }

    #[test]
    fn cleanup_removes_only_stale_objects_under_prefix() {
        let s = Storage::new();
        let t = root_token(&s);
        s.put(&t, "events/old/1", vec![]).unwrap(); // written at tick 0
        s.put(&t, "models/old", vec![]).unwrap();
        for _ in 0..10 {
            s.tick();
        }
        s.put(&t, "events/new/1", vec![]).unwrap(); // written at tick 10
        let removed = s.cleanup("events/", 5);
        assert_eq!(removed, 1);
        assert!(matches!(
            s.get(&t, "events/old/1"),
            Err(PipelineError::NotFound { .. })
        ));
        assert!(s.get(&t, "events/new/1").is_ok());
        assert!(s.get(&t, "models/old").is_ok(), "other prefixes untouched");
    }

    #[test]
    fn injected_put_failures_are_exactly_counted() {
        let s = Storage::new();
        let t = root_token(&s);
        s.inject_put_failures(2);
        assert!(matches!(
            s.put(&t, "events/x", vec![1]),
            Err(PipelineError::Unavailable { .. })
        ));
        assert!(matches!(
            s.put(&t, "events/x", vec![1]),
            Err(PipelineError::Unavailable { .. })
        ));
        // Third attempt succeeds: the outage is consumed write-by-write.
        assert!(s.put(&t, "events/x", vec![1]).is_ok());
        // A denied write does not consume outage units.
        s.inject_put_failures(1);
        let scoped = s.issue_token("models/", true, 100);
        assert!(matches!(
            s.put(&scoped, "events/y", vec![1]),
            Err(PipelineError::AccessDenied { .. })
        ));
        assert!(matches!(
            s.put(&t, "events/y", vec![1]),
            Err(PipelineError::Unavailable { .. })
        ));
    }

    #[test]
    fn delete_missing_is_not_found() {
        let s = Storage::new();
        let t = root_token(&s);
        assert!(matches!(
            s.delete(&t, "nope"),
            Err(PipelineError::NotFound { .. })
        ));
    }

    #[test]
    fn paths_layout_is_stable() {
        assert_eq!(paths::events("app-1"), "events/app-1/events.jsonl");
        assert_eq!(paths::model("u1", 0xab), "models/u1/00000000000000ab.json");
        assert_eq!(paths::app_cache("art-1"), "app_cache/art-1.json");
        assert_eq!(paths::baseline("westus"), "baseline/westus.json");
    }

    #[test]
    fn save_load_roundtrips_with_timestamps() {
        let dir = std::env::temp_dir().join("rockhopper-storage-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = Storage::new();
        let t = root_token(&s);
        s.put(&t, "events/a/1", b"one".to_vec()).unwrap();
        for _ in 0..5 {
            s.tick();
        }
        s.put(&t, "models/u/x.json", b"two".to_vec()).unwrap();
        s.save_to_dir(&dir).unwrap();

        let loaded = Storage::load_from_dir(&dir).unwrap();
        let t2 = loaded.issue_token("", true, u64::MAX);
        assert_eq!(loaded.get(&t2, "events/a/1").unwrap(), b"one");
        assert_eq!(loaded.get(&t2, "models/u/x.json").unwrap(), b"two");
        assert_eq!(loaded.now(), 5);
        // Retention still works off the restored timestamps: the old event file is
        // stale relative to the restored clock, the fresh model is not.
        assert_eq!(loaded.cleanup("events/", 2), 1);
        assert_eq!(loaded.cleanup("models/", 2), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_from_missing_dir_errors() {
        assert!(Storage::load_from_dir(std::path::Path::new("/nonexistent/xyz")).is_err());
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let s = Arc::new(Storage::new());
        let t = s.issue_token("", true, u64::MAX);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let s = Arc::clone(&s);
                let t = t.clone();
                scope.spawn(move || {
                    for j in 0..50 {
                        s.put(&t, &format!("events/t{i}/{j}"), vec![i as u8])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.object_count(), 400);
    }
}
