#![forbid(unsafe_code)]

//! `rhlint` — workspace-native static analysis for the Rockhopper reproduction.
//!
//! The Centroid Learning loop (paper Eq (8)) is only trustworthy in production
//! because every decision it makes is reproducible and auditable: a single
//! NaN-poisoned comparison, ambient-RNG call, or panic on the serving path
//! silently invalidates the convergence experiments (fig09–fig13) and the
//! guardrail's regression detection. `rhlint` is the compile-time half of that
//! safety rail: a dependency-free static-analysis engine that lexes and parses
//! every workspace source into an AST ([`lexer`], [`parser`]), builds a
//! workspace-wide symbol table and call graph ([`symbols`], [`callgraph`]),
//! lowers function bodies to per-function control-flow graphs with a forward
//! dataflow solver over them ([`cfg`], [`dataflow`], [`locks`]) plus two
//! environment lattices — value intervals and untrusted-input taint
//! (`intervals`, `taint`, DESIGN.md §5) — and enforces eight rule
//! families:
//!
//! * **panic-freedom** — no `unwrap()`, `expect()`, `panic!`-style macros, or
//!   literal slice indexing in library code of the production crates.
//! * **determinism** — no wall-clock reads, ambient RNGs, or hash-ordered
//!   collections in the simulator and optimizer crates; randomness must flow
//!   through seeded `StdRng`s. Beyond the token scan, a call-graph taint walk
//!   ([`callgraph::determinism_taint`], RH013) follows calls out of the scoped
//!   crates through `use ... as` aliases and helper fns to sinks the lexical
//!   pass never sees. Raw `thread::spawn` (RH018) is confined to the three
//!   sanctioned sites — the `rockpool` work pool, the `pipeline::service`
//!   backend worker, and the `rockserve` serving edge — everything else must
//!   fan out through `rockpool::Pool`, which splits seeds on stable task
//!   indices and reduces in index order (DESIGN.md §7). Raw socket
//!   construction (RH019) is likewise confined to `rockserve`: every other
//!   crate talks to the network through its tested protocol and client.
//! * **float-safety** — no `partial_cmp(..).unwrap()`, no float sorts via
//!   `partial_cmp`, no bare `f64::NAN` literals; comparisons go through
//!   `ml::stats::total_cmp_f64` and friends.
//! * **config-space** — the tuned Spark parameters must be declared
//!   consistently across `sparksim/src/config.rs` (knob enum, spark property
//!   names, `get`/`set` arms, serde'd `SparkConf` fields) and
//!   `optimizers/src/space.rs` (search dimensions), checked on the parsed AST.
//!   On top of the declarations, the interval analysis proves every config
//!   *write* stays inside its declared `Dim` bounds: a `set(Knob::K, v)`
//!   whose derived value range escapes the declared search space, or a `Dim`
//!   default outside its own `[lo, hi]`, is RH028.
//! * **input-validation** — an interprocedural taint analysis tracks bytes
//!   from the wire (`rockserve` frame decoding), environment variables, and
//!   ETL file reads (`pipeline`) through assignments, adapters, and calls.
//!   Untrusted values must pass a dominating sanitizer — a bound check
//!   against a trusted cap, `clamp`/`min`, a narrowing `try_from`, checked
//!   or saturating arithmetic, or a non-zero guard — before they size an
//!   allocation (RH026), index a slice (RH027), feed raw `+ - * <<`
//!   arithmetic (RH029), or appear as a divisor (RH030, which also accepts
//!   interval evidence that zero is impossible).
//! * **semantic hygiene** — ignored `Result`/`Option` returns (RH014), lossy
//!   `as` casts (RH015), `pub` items no other file references (RH016), and
//!   `RunOutcome` matches that hide `Failed`/`Censored` behind a wildcard
//!   (RH017), all driven by the symbol table and a local type environment.
//! * **concurrency** — lock-discipline rules over the CFG/dataflow layer
//!   ([`locks`]): lock-order cycles that can deadlock (RH020), blocking calls
//!   — channel `recv`, `join()`, socket I/O, sleeps — while a `Mutex`/`RwLock`
//!   guard is live, including through interprocedural call summaries (RH021),
//!   collections on long-lived service state that grow without any eviction or
//!   bound (RH022), and potential panics inside a critical section that would
//!   poison the lock (RH023).
//! * **hot-path** — functions tagged `// rhlint:hot` (candidate scoring, wire
//!   encode/decode, per-sample metrics) must not heap-allocate (RH024).
//!
//! The suppression audit itself is linted: an `rhlint:allow` that no longer
//! suppresses anything is flagged as stale (RH025), so the allow inventory
//! shrinks when the code it excused improves.
//!
//! Every rule carries a stable `RH001`–`RH030` code (`rhlint rules` lists
//! them, `rhlint explain RH0NN` gives the rationale, an example violation,
//! and the sanctioned fix); `rhlint check --format json` emits the findings as a byte-stable
//! JSON array for tooling (`--format sarif` renders the same findings as a
//! SARIF 2.1.0 log for code-scanning UIs). Diagnostics are
//! `file:line`-addressed. A finding
//! can be suppressed inline with a justification, by rule id or RH code:
//!
//! ```text
//! let v = known_nonempty[0]; // rhlint:allow(slice-index): guarded by the len check above
//! ```
//!
//! The suppression comment may sit on the flagged line or the line above it.
//! A suppression without a justification (no `: reason` after the rule list)
//! is itself a diagnostic — the audit trail is the point.
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`, `examples/`) and
//! the `experiments`/`workloads`/`bench` crates are exempt: panicking fast in
//! a test or a figure harness is fine; panicking in the serving path is not.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod cfg;
mod config_space;
pub mod dataflow;
mod explain;
mod intervals;
pub mod lexer;
pub mod locks;
mod lower;
mod mask;
pub mod parser;
mod rules;
pub mod semantic;
pub mod symbols;
mod taint;

pub use config_space::check_config_space;
pub use explain::Explanation;
pub use mask::MaskedSource;
pub use rules::scan_source;

/// Every rule rhlint can emit, addressable in `rhlint:allow(<id>)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` in library code (panic-freedom family).
    Unwrap,
    /// `.expect(...)` in library code (panic-freedom family).
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!` (panic-freedom).
    Panic,
    /// Literal integer slice/array indexing like `xs[0]` (panic-freedom).
    SliceIndex,
    /// `SystemTime::now` / `Instant::now` (determinism family).
    WallClock,
    /// `thread_rng` / `rand::rng()` / OS-entropy RNG construction (determinism).
    AmbientRng,
    /// `HashMap` / `HashSet` in deterministic crates (determinism): iteration
    /// order varies run-to-run; use `BTreeMap`/`BTreeSet`/`Vec` instead.
    HashIter,
    /// `partial_cmp(..).unwrap()` — NaN panics (float-safety family).
    PartialCmpUnwrap,
    /// Float sort/min/max via `partial_cmp` instead of `total_cmp` (float-safety).
    FloatSort,
    /// Bare `f64::NAN` / `f32::NAN` literal in library code (float-safety).
    NanLiteral,
    /// Cross-file Spark parameter declaration mismatch (config-space family).
    ConfigSpace,
    /// Malformed `rhlint:allow` — unknown rule id or missing justification.
    BadSuppression,
    /// A function reachable from deterministic entry points touches ambient
    /// RNG, wall-clock, or hash-ordered iteration (semantic/call-graph).
    DeterminismTaint,
    /// A statement discards a workspace function's `Result`/`Option` return.
    IgnoredResult,
    /// An `as` cast that can silently lose information (semantic).
    LossyCast,
    /// A `pub` item never referenced outside its defining file (semantic).
    DeadPub,
    /// A `match` on [`RunOutcome`] in production code that does not handle
    /// `Failed` and `Censored` explicitly, or hides them behind `_`.
    OutcomeMatch,
    /// Raw `thread::spawn` outside the sanctioned sites (`rockpool`, the
    /// `pipeline::service` worker, the `rockserve` serving edge): ad-hoc
    /// threads bypass the pool's seed-splitting and ordered-reduction
    /// contract (DESIGN.md §7) and detach instead of joining.
    ThreadSpawn,
    /// Raw socket construction (`TcpListener`/`TcpStream`/`UdpSocket`/...)
    /// outside the `rockserve` crate: networking must stay behind the one
    /// serving subsystem whose wire protocol, admission control, and drain
    /// contract are tested — an ad-hoc socket elsewhere is an untested I/O
    /// path with unbounded buffering and no shutdown story.
    RawSocket,
    /// Two locks acquired in opposite orders on different code paths — a
    /// potential deadlock (CFG + interprocedural lock-acquisition graph).
    LockOrderCycle,
    /// A blocking operation (channel recv, `join()`, socket I/O, sleep, or a
    /// call that transitively blocks) while a `Mutex`/`RwLock` guard is held:
    /// every other thread queues behind the lock for the full wait — the
    /// exact shape behind a serving p99 tail.
    BlockingUnderLock,
    /// Growth (`push`/`insert`/...) of a collection owned by long-lived
    /// service state with no eviction, shrink, or bound anywhere in
    /// production code.
    UnboundedGrowth,
    /// A potential panic (`unwrap`, `panic!`, a transitively panicking call)
    /// while holding a guard: the panic poisons the lock for everyone else.
    PanicUnderLock,
    /// Heap allocation inside a function tagged `rhlint:hot`.
    HotPathAlloc,
    /// A well-formed `rhlint:allow` that suppresses nothing on its line or
    /// the next — stale suppressions rot the audit trail.
    StaleAllow,
    /// An allocation (`with_capacity`, `resize`, `reserve`, `vec![_; n]`)
    /// sized by an untrusted value — wire bytes, env var, ETL file read —
    /// with no dominating bound check between source and sink.
    UnvalidatedLengthAlloc,
    /// Slice/array indexing with an untrusted index and no dominating bound
    /// check.
    TaintedIndex,
    /// A config parameter whose derived value interval escapes its declared
    /// `SearchSpace` bounds (or a `Dim` whose default lies outside its own
    /// `[lo, hi]`).
    ConfigOutOfRange,
    /// Unchecked `+`/`-`/`*`/`<<` on an untrusted integer (e.g. a wire `u32`
    /// length); use `checked_*`/`saturating_*` or bound-check first.
    UncheckedArithUntrusted,
    /// `/` or `%` whose divisor is untrusted and not proven non-zero.
    UntrustedDivisor,
}

impl Rule {
    pub const ALL: [Rule; 30] = [
        Rule::Unwrap,
        Rule::Expect,
        Rule::Panic,
        Rule::SliceIndex,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::HashIter,
        Rule::PartialCmpUnwrap,
        Rule::FloatSort,
        Rule::NanLiteral,
        Rule::ConfigSpace,
        Rule::BadSuppression,
        Rule::DeterminismTaint,
        Rule::IgnoredResult,
        Rule::LossyCast,
        Rule::DeadPub,
        Rule::OutcomeMatch,
        Rule::ThreadSpawn,
        Rule::RawSocket,
        Rule::LockOrderCycle,
        Rule::BlockingUnderLock,
        Rule::UnboundedGrowth,
        Rule::PanicUnderLock,
        Rule::HotPathAlloc,
        Rule::StaleAllow,
        Rule::UnvalidatedLengthAlloc,
        Rule::TaintedIndex,
        Rule::ConfigOutOfRange,
        Rule::UncheckedArithUntrusted,
        Rule::UntrustedDivisor,
    ];

    /// Stable kebab-case id used in diagnostics and `rhlint:allow(...)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Panic => "panic",
            Rule::SliceIndex => "slice-index",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashIter => "hash-iter",
            Rule::PartialCmpUnwrap => "partial-cmp-unwrap",
            Rule::FloatSort => "float-sort",
            Rule::NanLiteral => "nan-literal",
            Rule::ConfigSpace => "config-space",
            Rule::BadSuppression => "bad-suppression",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::IgnoredResult => "ignored-result",
            Rule::LossyCast => "lossy-cast",
            Rule::DeadPub => "dead-pub",
            Rule::OutcomeMatch => "outcome-match",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::RawSocket => "raw-socket",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::UnboundedGrowth => "unbounded-growth",
            Rule::PanicUnderLock => "panic-under-lock",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::StaleAllow => "stale-allow",
            Rule::UnvalidatedLengthAlloc => "unvalidated-length-alloc",
            Rule::TaintedIndex => "tainted-index",
            Rule::ConfigOutOfRange => "config-out-of-range",
            Rule::UncheckedArithUntrusted => "unchecked-arith-untrusted",
            Rule::UntrustedDivisor => "untrusted-divisor",
        }
    }

    /// Stable machine-readable diagnostic code (`RH001`–`RH018`). Codes are
    /// append-only: a rule keeps its code forever, new rules take the next
    /// free number.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Unwrap => "RH001",
            Rule::Expect => "RH002",
            Rule::Panic => "RH003",
            Rule::SliceIndex => "RH004",
            Rule::WallClock => "RH005",
            Rule::AmbientRng => "RH006",
            Rule::HashIter => "RH007",
            Rule::PartialCmpUnwrap => "RH008",
            Rule::FloatSort => "RH009",
            Rule::NanLiteral => "RH010",
            Rule::ConfigSpace => "RH011",
            Rule::BadSuppression => "RH012",
            Rule::DeterminismTaint => "RH013",
            Rule::IgnoredResult => "RH014",
            Rule::LossyCast => "RH015",
            Rule::DeadPub => "RH016",
            Rule::OutcomeMatch => "RH017",
            Rule::ThreadSpawn => "RH018",
            Rule::RawSocket => "RH019",
            Rule::LockOrderCycle => "RH020",
            Rule::BlockingUnderLock => "RH021",
            Rule::UnboundedGrowth => "RH022",
            Rule::PanicUnderLock => "RH023",
            Rule::HotPathAlloc => "RH024",
            Rule::StaleAllow => "RH025",
            Rule::UnvalidatedLengthAlloc => "RH026",
            Rule::TaintedIndex => "RH027",
            Rule::ConfigOutOfRange => "RH028",
            Rule::UncheckedArithUntrusted => "RH029",
            Rule::UntrustedDivisor => "RH030",
        }
    }

    /// One-line documentation shown by `rhlint rules`.
    pub fn doc(self) -> &'static str {
        match self {
            Rule::Unwrap => "`.unwrap()` in production library code can panic; return an error or use a total alternative",
            Rule::Expect => "`.expect(..)` in production library code can panic; return an error instead",
            Rule::Panic => "`panic!`/`todo!`/`unimplemented!`/`unreachable!` in production library code",
            Rule::SliceIndex => "literal slice/array index like `xs[0]` can panic; use `.get(..)` or slice patterns",
            Rule::WallClock => "`Instant::now`/`SystemTime::now` in a deterministic crate breaks reproducibility",
            Rule::AmbientRng => "`thread_rng`/`from_entropy`/OS-entropy RNG in a deterministic crate; use a seeded `StdRng`",
            Rule::HashIter => "`HashMap`/`HashSet` in a deterministic crate has run-to-run iteration order; use `BTreeMap`/`BTreeSet`",
            Rule::PartialCmpUnwrap => "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`",
            Rule::FloatSort => "float sort/min/max via `partial_cmp`; use `total_cmp`-based helpers",
            Rule::NanLiteral => "bare `f64::NAN` literal in library code; prefer `Option` to NaN sentinels",
            Rule::ConfigSpace => "tuned Spark parameter declared inconsistently across config.rs and space.rs",
            Rule::BadSuppression => "malformed `rhlint:allow` comment (unknown rule or missing justification)",
            Rule::DeterminismTaint => "function reachable from deterministic entry points touches ambient RNG, wall-clock, or hash iteration",
            Rule::IgnoredResult => "statement discards a workspace function's `Result`/`Option` return value",
            Rule::LossyCast => "`as` cast can silently truncate, wrap, or lose precision; guard or convert explicitly",
            Rule::DeadPub => "`pub` item is never referenced outside its defining file; remove or demote visibility",
            Rule::OutcomeMatch => "`match` on `RunOutcome` must handle `Failed` and `Censored` explicitly — a wildcard arm silently swallows new failure modes",
            Rule::ThreadSpawn => "raw `thread::spawn` outside rockpool/`pipeline::service`/rockserve; fan out through `rockpool::Pool` so seeds split on task index and results reduce in order",
            Rule::RawSocket => "raw socket construction outside `rockserve`; all networking goes through the serving layer's tested protocol, admission control, and drain contract",
            Rule::LockOrderCycle => "two locks acquired in opposite orders on different paths can deadlock; acquire locks in one global order",
            Rule::BlockingUnderLock => "blocking operation (channel recv, `join()`, socket I/O, sleep) while holding a `Mutex`/`RwLock` guard serializes every other thread behind the wait",
            Rule::UnboundedGrowth => "collection owned by long-lived service state grows with no eviction, shrink, or bound anywhere in production code",
            Rule::PanicUnderLock => "potential panic while holding a guard poisons the lock; move fallible work outside the critical section",
            Rule::HotPathAlloc => "heap allocation in a `rhlint:hot` function; preallocate outside the hot path or reuse buffers",
            Rule::StaleAllow => "`rhlint:allow` that suppresses nothing on its line or the next; remove stale suppressions to keep the audit trail honest",
            Rule::UnvalidatedLengthAlloc => "allocation sized by an untrusted value (wire bytes, env var, file read) with no dominating bound check — a hostile length is an OOM",
            Rule::TaintedIndex => "slice indexing with an untrusted index and no dominating bound check can panic the serving thread",
            Rule::ConfigOutOfRange => "config value's derived interval escapes its declared `SearchSpace` bounds; clamp to the declared `Dim` range",
            Rule::UncheckedArithUntrusted => "unchecked arithmetic on an untrusted integer can overflow; use `checked_*`/`saturating_*` or bound-check first",
            Rule::UntrustedDivisor => "division/modulo by an untrusted value not proven non-zero panics on a hostile zero",
        }
    }

    /// The rule family, for grouping in reports.
    pub fn family(self) -> &'static str {
        match self {
            Rule::Unwrap | Rule::Expect | Rule::Panic | Rule::SliceIndex => "panic-freedom",
            Rule::WallClock
            | Rule::AmbientRng
            | Rule::HashIter
            | Rule::DeterminismTaint
            | Rule::ThreadSpawn
            | Rule::RawSocket => "determinism",
            Rule::PartialCmpUnwrap | Rule::FloatSort | Rule::NanLiteral => "float-safety",
            Rule::ConfigSpace => "config-space",
            Rule::BadSuppression | Rule::StaleAllow => "suppression",
            Rule::IgnoredResult | Rule::LossyCast | Rule::DeadPub | Rule::OutcomeMatch => {
                "semantic"
            }
            Rule::LockOrderCycle
            | Rule::BlockingUnderLock
            | Rule::UnboundedGrowth
            | Rule::PanicUnderLock => "concurrency",
            Rule::HotPathAlloc => "hot-path",
            Rule::UnvalidatedLengthAlloc
            | Rule::TaintedIndex
            | Rule::UncheckedArithUntrusted
            | Rule::UntrustedDivisor => "input-validation",
            Rule::ConfigOutOfRange => "config-space",
        }
    }

    /// Long-form explanation for `rhlint explain <rule>`: why the rule
    /// exists, an example violation, and the sanctioned fix.
    pub fn explain(self) -> explain::Explanation {
        explain::explanation(self)
    }

    /// Look a rule up by kebab-case id or by `RHnnn` code (codes are accepted
    /// as aliases everywhere a rule id is, including `rhlint:allow(...)`).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.id() == id || r.code() == id)
    }
}

/// A single `file:line` finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}/{}] {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.rule.family(),
            self.rule.id(),
            self.message
        )
    }
}

/// Engine errors (I/O and layout problems, not findings).
#[derive(Debug)]
pub enum LintError {
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    MissingFile {
        path: PathBuf,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "rhlint: cannot read {}: {source}", path.display())
            }
            LintError::MissingFile { path } => {
                write!(f, "rhlint: expected file missing: {}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose library code must be panic-free and float-safe.
pub const PANIC_SCOPE: [&str; 9] = [
    "embedding",
    "ml",
    "optimizers",
    "pipeline",
    "rockdur",
    "rockhopper",
    "rockindex",
    "rockserve",
    "sparksim",
];

/// Crates where all randomness must be seeded and iteration deterministic.
pub const DETERMINISM_SCOPE: [&str; 4] = ["optimizers", "rockhopper", "rockindex", "sparksim"];

/// Scope membership for one scanned file, derived from its crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanScope {
    pub panic_freedom: bool,
    pub determinism: bool,
    pub float_safety: bool,
}

impl ScanScope {
    pub fn for_crate(crate_name: &str) -> ScanScope {
        ScanScope {
            panic_freedom: PANIC_SCOPE.contains(&crate_name),
            determinism: DETERMINISM_SCOPE.contains(&crate_name),
            // Float-safety rides with panic-freedom: same production crates.
            float_safety: PANIC_SCOPE.contains(&crate_name),
        }
    }
}

/// The result of a full workspace pass: sorted diagnostics plus scan stats
/// for the CLI summary.
#[derive(Debug)]
pub struct CheckReport {
    /// Diagnostics sorted by `(file, line, rule)` — byte-stable across runs.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files parsed and indexed (one walk; the lexical,
    /// call-graph, and semantic passes all share the cached sources).
    pub files_scanned: usize,
}

/// Run the full lint pass over a workspace checkout.
///
/// The workspace is walked **once** ([`symbols::Workspace::load`]): every
/// pass — lexical line rules, config-space consistency, call-graph
/// determinism taint, and the expression-level semantic rules — runs over the
/// same cached sources and [`MaskedSource`]s. Inline `rhlint:allow`
/// suppressions are applied centrally, so they cover semantic diagnostics at
/// their `(file, line)` exactly like lexical ones.
pub fn run_check(root: &Path) -> Result<CheckReport, LintError> {
    let ws = symbols::Workspace::load(root)?;
    let mut raw = Vec::new();

    for file in ws.files() {
        let scope = ScanScope::for_crate(&file.krate);
        if scope.panic_freedom || scope.determinism || scope.float_safety {
            raw.extend(rules::raw_findings(
                &file.krate,
                &file.rel,
                &file.masked,
                scope,
            ));
        }
    }

    raw.extend(check_config_space(root)?);
    raw.extend(callgraph::determinism_taint(&ws));
    raw.extend(semantic::check(&ws));

    // Every non-test fn is lowered once; the lock-discipline, interval, and
    // taint passes share the models.
    let models = lower::lower_all(&ws);
    raw.extend(locks::check(&ws, &models));
    raw.extend(locks::check_growth(&ws));
    raw.extend(locks::check_hot_paths(&ws));
    let ranges = intervals::check(&ws, &models, &mut raw);
    raw.extend(taint::check(&ws, &models, &ranges));

    // RH025 compares every well-formed allow against the full
    // pre-suppression finding set: an allow that matches nothing on its line
    // or the next is stale. Its own diagnostics join `raw` so they can be
    // suppressed (and thereby justified) like any other rule.
    raw.extend(stale_allows(&ws, &raw));

    // Central suppression filter: an allow on the flagged line (or the line
    // above) covers any rule, lexical or semantic.
    let mut diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            ws.files()
                .iter()
                .find(|f| f.rel == d.file)
                .map(|f| !rules::allowed_rules_at(&f.masked, d.line).contains(&d.rule))
                .unwrap_or(true)
        })
        .collect();

    // Malformed suppressions fire everywhere in scoped crates, even on
    // finding-free and test lines.
    for file in ws.files() {
        if ScanScope::for_crate(&file.krate) != ScanScope::default() {
            diagnostics.extend(rules::bad_suppressions(&file.rel, &file.masked));
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(CheckReport {
        diagnostics,
        files_scanned: ws.files().len(),
    })
}

/// RH025: well-formed, justified `rhlint:allow`s (outside test code, in
/// crates any rule family scans) that suppress no finding on their own line
/// or the next. `raw` is the complete pre-suppression finding set.
fn stale_allows(ws: &symbols::Workspace, raw: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in ws.files() {
        let scoped = ScanScope::for_crate(&file.krate) != ScanScope::default()
            || locks::concurrency_scoped(&file.krate);
        if !scoped {
            continue;
        }
        for (line, rules) in rules::well_formed_allows(&file.masked) {
            if file.masked.in_test.get(line - 1).copied().unwrap_or(false) {
                continue;
            }
            let used = raw.iter().any(|d| {
                d.file == file.rel
                    && (d.line == line || d.line == line + 1)
                    && rules.contains(&d.rule)
            });
            if !used {
                let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: Rule::StaleAllow,
                    message: format!(
                        "stale `rhlint:allow({})` — no matching finding on this line or the next; remove it",
                        ids.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// [`run_check`], diagnostics only. The tier-1 gate and tests use this.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    run_check(root).map(|report| report.diagnostics)
}

/// Result of `rhlint fix --stale-allows`.
#[derive(Debug)]
pub struct FixReport {
    /// `(file, line)` of every stale allow removed (or, in a dry run, that
    /// would be removed), sorted.
    pub removed: Vec<(PathBuf, usize)>,
    /// Whether the edits were written back to disk.
    pub written: bool,
}

/// Mechanically delete RH025 stale `rhlint:allow` comments.
///
/// Runs the full check, takes the surviving [`Rule::StaleAllow`] findings
/// (post-suppression, so a *justified* stale allow is left alone), and
/// removes each one: a line that holds nothing but the allow comment is
/// deleted outright, while a trailing `code(); // rhlint:allow(..)` comment
/// is truncated at the `//`. With `write` false (the dry run, and the CLI
/// default) nothing touches disk — the report lists what would change.
pub fn fix_stale_allows(root: &Path, write: bool) -> Result<FixReport, LintError> {
    let report = run_check(root)?;
    let mut by_file: BTreeMap<PathBuf, Vec<usize>> = BTreeMap::new();
    for d in &report.diagnostics {
        if d.rule == Rule::StaleAllow {
            by_file.entry(d.file.clone()).or_default().push(d.line);
        }
    }

    let mut removed = Vec::new();
    for (rel, mut lines) in by_file {
        let path = root.join(&rel);
        let text = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        lines.sort_unstable();
        lines.dedup();
        let mut kept: Vec<&str> = Vec::new();
        for (i, line_text) in text.lines().enumerate() {
            let lineno = i + 1;
            if lines.contains(&lineno) {
                if let Some(pos) = line_text.find("//") {
                    removed.push((rel.clone(), lineno));
                    let head = line_text[..pos].trim_end();
                    if head.is_empty() {
                        continue;
                    }
                    kept.push(head);
                    continue;
                }
            }
            kept.push(line_text);
        }
        if write {
            let mut new_text = kept.join("\n");
            if text.ends_with('\n') {
                new_text.push('\n');
            }
            std::fs::write(&path, new_text).map_err(|source| LintError::Io { path, source })?;
        }
    }
    removed.sort();
    Ok(FixReport {
        removed,
        written: write,
    })
}

/// Render diagnostics as a JSON array of `{code, file, line, message}`
/// objects, sorted exactly as the input (the engine sorts by
/// `(file, line, rule)`), with no timing or environment data — two runs over
/// the same tree produce byte-identical output.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            d.rule.code(),
            json_escape(&d.file.display().to_string()),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Render diagnostics as a SARIF 2.1.0 log. Like [`render_json`] the output
/// is byte-stable: no timestamps, absolute paths, or environment data — two
/// runs over the same tree produce byte-identical SARIF, so the CI artifact
/// diffs cleanly between commits.
pub fn render_sarif(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"rhlint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"properties\":{{\"family\":\"{}\"}}}}{}\n",
            rule.code(),
            json_escape(rule.id()),
            json_escape(rule.doc()),
            rule.family(),
            if i + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diagnostics.iter().enumerate() {
        let uri = d.file.display().to_string().replace('\\', "/");
        out.push_str(&format!(
            "        {{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}{}\n",
            d.rule.code(),
            json_escape(&d.message),
            json_escape(&uri),
            d.line,
            if i + 1 < diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report to a string (one diagnostic per line plus a summary).
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diagnostics.is_empty() {
        out.push_str("rhlint: clean — no violations\n");
    } else {
        let mut per_family: BTreeMap<&str, usize> = BTreeMap::new();
        for d in diagnostics {
            *per_family.entry(d.rule.family()).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = per_family
            .iter()
            .map(|(family, n)| format!("{family}: {n}"))
            .collect();
        out.push_str(&format!(
            "rhlint: {} violation(s) ({})\n",
            diagnostics.len(),
            breakdown.join(", ")
        ));
    }
    out
}
