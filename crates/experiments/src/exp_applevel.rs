//! **Extension: end-to-end app-level optimization (§4.4 / Algorithm 2).** The paper
//! deploys query-level tuning and pre-computes app-level configurations into the
//! `app_cache`, but reports no isolated app-level numbers. This experiment evaluates
//! Algorithm 2's output on the application simulator (executor acquisition + query
//! sequence): per recurrent application, compare end-to-end wall time under
//! (a) all defaults, (b) tuned query-level knobs only, and (c) the full app_cache
//! (joint app + query configuration).

use std::sync::Arc;

use optimizers::env::Environment;
use optimizers::space::ConfigSpace;
use optimizers::QueryEnv;
use pipeline::flighting::{run_flight, Benchmark, FlightPlan, PoolId, Strategy};
use pipeline::service::AutotuneBackend;
use pipeline::storage::Storage;
use pipeline::trainer::train_baseline;
use sparksim::app::{run_app, StartupCosts};
use sparksim::config::SparkConf;
use sparksim::noise::NoiseSpec;
use sparksim::simulator::Simulator;
use workloads::notebook::{generate_population, PopulationConfig};

use crate::harness::{write_csv, Scale, Summary};

/// Run the app-level evaluation.
pub fn run(scale: Scale) -> Summary {
    let n_notebooks = scale.pick(12, 3);
    let tuning_runs = scale.pick(30, 8);
    let seed = 44u64;

    // Offline baseline so Algorithm 2's scorer is informed.
    let space = ConfigSpace::query_level();
    let flight = FlightPlan {
        benchmark: Benchmark::TpcDs,
        // Pinned to the original 24 templates so recorded results stay stable as the
        // workloads crate grows.
        queries: (1..=24).collect(),
        scale_factor: scale.pick(5, 1) as f64,
        runs_per_query: scale.pick(20, 4),
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: NoiseSpec::low(),
        seed,
    };
    let rows = run_flight(&flight, &space, &Storage::new());
    let baseline = train_baseline(&space, &rows, None, seed).expect("flighting rows");

    let population = generate_population(
        &PopulationConfig {
            notebooks: n_notebooks,
            queries_per_notebook: (2, 5),
            pathological_fraction: 0.0,
        },
        seed,
    );

    let mut backend = AutotuneBackend::new(Arc::new(Storage::new()), Some(baseline), seed);
    let startup = StartupCosts::default();
    let eval_sim = Simulator::default_pool(NoiseSpec::none());

    let mut csv = Vec::new();
    let (mut sum_default, mut sum_query_only, mut sum_joint) = (0.0, 0.0, 0.0);

    for (ni, nb) in population.iter().enumerate() {
        let user = format!("tenant-{}", nb.artifact_id);
        // Online query-level tuning through the backend.
        let mut final_query_confs = Vec::new();
        for q in &nb.queries {
            let mut env = QueryEnv::new(
                q.plan.clone(),
                q.noise,
                q.schedule.clone(),
                seed ^ q.signature,
            );
            let mut last_point = env.space().default_point();
            for t in 0..tuning_runs {
                let ctx = env.context();
                let point = backend.suggest(&user, q.signature, &ctx);
                let conf = env.space().to_conf(&point);
                let plan = env.plan.clone().scaled(q.schedule.size_at(t as u32));
                let run = env.sim.execute(&plan, &conf, seed ^ q.signature ^ t as u64);
                let app_id = format!("{}-q{}-r{t}", nb.artifact_id, q.signature);
                let events = env.sim.events_for_run(
                    &app_id,
                    &nb.artifact_id,
                    q.signature,
                    &plan,
                    &conf,
                    ctx.embedding,
                    &run,
                );
                backend.ingest(&user, &app_id, &events);
                last_point = point;
                let _ = env.run(&last_point);
            }
            final_query_confs.push((q.plan.clone(), env.space().to_conf(&last_point)));
        }
        // Algorithm 2: pre-compute the app-level configuration.
        let sigs: Vec<u64> = nb.queries.iter().map(|q| q.signature).collect();
        backend.update_app_cache_forecast(&user, &nb.artifact_id, &sigs);
        let app_point = backend
            .app_conf(&nb.artifact_id)
            .expect("cache computed after tuning");
        let mut joint_app_conf = SparkConf::default();
        joint_app_conf.executor_instances = app_point[0];
        joint_app_conf.executor_memory_mb = app_point[1];

        // Evaluate the three deployment states on the noise-free app simulator.
        let default_queries: Vec<(sparksim::plan::PlanNode, SparkConf)> = nb
            .queries
            .iter()
            .map(|q| (q.plan.clone(), SparkConf::default()))
            .collect();
        let default_app = SparkConf::default();
        let a = run_app(&eval_sim, &startup, &default_app, &default_queries, 9).total_ms;
        let b = run_app(&eval_sim, &startup, &default_app, &final_query_confs, 9).total_ms;
        let c = run_app(&eval_sim, &startup, &joint_app_conf, &final_query_confs, 9).total_ms;
        sum_default += a;
        sum_query_only += b;
        sum_joint += c;
        csv.push(vec![ni as f64, a, b, c]);
    }

    let mut summary = Summary::new("exp_applevel");
    summary.row("applications", n_notebooks);
    summary.row(
        "total wall time, all defaults",
        format!("{sum_default:.0} ms"),
    );
    summary.row(
        "total wall time, query-level tuning only",
        format!(
            "{sum_query_only:.0} ms ({:+.1}%)",
            100.0 * (sum_query_only - sum_default) / sum_default
        ),
    );
    summary.row(
        "total wall time, joint app + query (Algorithm 2)",
        format!(
            "{sum_joint:.0} ms ({:+.1}%)",
            100.0 * (sum_joint - sum_default) / sum_default
        ),
    );
    summary.row(
        "expectation",
        "query-level tuning improves over defaults; Algorithm 2's app_cache adds \
         further gains by right-sizing the executor fleet per application",
    );
    summary.files.push(write_csv(
        "exp_applevel",
        "app_idx,default_ms,query_tuned_ms,joint_ms",
        &csv,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_config_is_not_catastrophically_worse() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        let grab = |key: &str| -> f64 {
            s.rows
                .iter()
                .find(|(k, _)| k.starts_with(key))
                .and_then(|(_, v)| v.split(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let default = grab("total wall time, all defaults");
        let joint = grab("total wall time, joint app + query");
        assert!(
            joint < default * 1.2,
            "Algorithm 2 should not blow up: {joint} vs {default}"
        );
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
