//! Cluster/pool specifications. The paper's flighting pipeline sweeps "pool IDs linked
//! to node configurations"; a pool here fixes the per-executor core count and caps the
//! executor fleet the `spark.executor.instances` knob can actually obtain.

use serde::{Deserialize, Serialize};

/// A Spark pool: the hardware envelope a job runs in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Maximum executors the pool can grant.
    pub max_executors: usize,
    /// Cores per executor (task slots per executor).
    pub cores_per_executor: usize,
    /// Maximum memory per executor the pool's node size allows (MiB).
    pub max_executor_memory_mb: f64,
}

impl ClusterSpec {
    /// Small pool: 8 × 4-core executors, 16 GiB nodes.
    pub fn small() -> ClusterSpec {
        ClusterSpec {
            max_executors: 8,
            cores_per_executor: 4,
            max_executor_memory_mb: 16.0 * 1024.0,
        }
    }

    /// Medium pool: 16 × 8-core executors, 64 GiB nodes — the default everywhere.
    pub fn medium() -> ClusterSpec {
        ClusterSpec {
            max_executors: 16,
            cores_per_executor: 8,
            max_executor_memory_mb: 64.0 * 1024.0,
        }
    }

    /// Large pool: 64 × 16-core executors, 256 GiB nodes.
    pub fn large() -> ClusterSpec {
        ClusterSpec {
            max_executors: 64,
            cores_per_executor: 16,
            max_executor_memory_mb: 256.0 * 1024.0,
        }
    }

    /// Executors actually granted for a request (the pool caps the knob).
    pub fn granted_executors(&self, requested: usize) -> usize {
        requested.clamp(1, self.max_executors)
    }

    /// Total task slots for a granted executor count.
    pub fn slots(&self, executors: usize) -> usize {
        (executors * self.cores_per_executor).max(1)
    }

    /// Executor memory actually granted (MiB), capped by node size.
    pub fn granted_memory_mb(&self, requested: f64) -> f64 {
        requested.clamp(512.0, self.max_executor_memory_mb)
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_grow_monotonically() {
        let s = ClusterSpec::small();
        let m = ClusterSpec::medium();
        let l = ClusterSpec::large();
        assert!(s.max_executors < m.max_executors && m.max_executors < l.max_executors);
        assert!(s.slots(s.max_executors) < l.slots(l.max_executors));
    }

    #[test]
    fn granted_executors_clamps() {
        let m = ClusterSpec::medium();
        assert_eq!(m.granted_executors(0), 1);
        assert_eq!(m.granted_executors(9999), m.max_executors);
        assert_eq!(m.granted_executors(4), 4);
    }

    #[test]
    fn granted_memory_respects_node_size() {
        let s = ClusterSpec::small();
        assert_eq!(s.granted_memory_mb(1e9), s.max_executor_memory_mb);
        assert_eq!(s.granted_memory_mb(0.0), 512.0);
    }

    #[test]
    fn slots_never_zero() {
        let m = ClusterSpec::medium();
        assert!(m.slots(0) >= 1);
    }
}
