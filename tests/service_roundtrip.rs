//! Integration: the online service path — client/backend threads, event-log
//! persistence, ETL round-trips, retention cleanup and the app cache.

use std::sync::Arc;
use std::time::Duration;

use optimizers::env::Environment;
use pipeline::service::{AutotuneBackend, AutotuneService};
use pipeline::storage::{paths, Storage};
use rockhopper_repro::prelude::*;

#[test]
fn full_service_loop_persists_and_learns() {
    let storage = Arc::new(Storage::new());
    let backend = AutotuneBackend::new(Arc::clone(&storage), None, 1);
    let (service, client) = AutotuneService::spawn(backend);

    let mut env = QueryEnv::tpch(6, 0.5, NoiseSpec::low(), 2);
    let sig = env.signature();
    for run in 0..10 {
        let ctx = env.context();
        let point = client
            .suggest("tenant-a", sig, &ctx, Duration::from_secs(5))
            .expect("backend alive");
        assert_eq!(point.len(), 3);
        let conf = env.space().to_conf(&point);
        let plan = env.plan.clone();
        let sim_run = env.sim.execute(&plan, &conf, run);
        let app_id = format!("app-{run}");
        let events = env.sim.events_for_run(
            &app_id,
            "artifact-7",
            sig,
            &plan,
            &conf,
            ctx.embedding.clone(),
            &sim_run,
        );
        client.ingest("tenant-a", &app_id, events);
        let _ = env.run(&point);
    }
    client.update_app_cache("tenant-a", "artifact-7", vec![sig], 1e6);
    // The channel is asynchronous for ingest; shutting down drains it.
    let backend = service.shutdown().expect("backend exits cleanly");

    // Event files persisted, one per application run.
    let token = storage.issue_token("", false, u64::MAX);
    let files = storage.list(&token, "events/").unwrap();
    assert_eq!(files.len(), 10);

    // Stored logs ETL back into valid training rows.
    let doc = String::from_utf8(storage.get(&token, &files[0]).unwrap()).unwrap();
    let rows = pipeline::etl::extract_rows_from_jsonl(&doc);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].signature, sig);

    // The tuner accumulated all ten observations and the app cache exists.
    assert_eq!(backend.tuner_count(), 1);
    assert!(backend.app_conf("artifact-7").is_some());
    assert!(storage.get(&token, &paths::app_cache("artifact-7")).is_ok());
}

#[test]
fn retention_sweep_cleans_old_event_files_only() {
    let storage = Arc::new(Storage::new());
    let mut backend = AutotuneBackend::new(Arc::clone(&storage), None, 3);
    let mut env = QueryEnv::tpch(1, 0.5, NoiseSpec::none(), 3);
    let sig = env.signature();
    for run in 0..6 {
        let ctx = env.context();
        let point = backend.suggest("t", sig, &ctx);
        let conf = env.space().to_conf(&point);
        let plan = env.plan.clone();
        let sim_run = env.sim.execute(&plan, &conf, run);
        let events = env.sim.events_for_run(
            &format!("app-{run}"),
            "a",
            sig,
            &plan,
            &conf,
            vec![],
            &sim_run,
        );
        backend.ingest("t", &format!("app-{run}"), &events);
        let _ = env.run(&point);
    }
    // Each ingest ticked the logical clock once; retain only the last 2 ticks.
    let removed = storage.cleanup("events/", 2);
    assert!(removed >= 3, "removed {removed}");
    let token = storage.issue_token("", false, u64::MAX);
    let remaining = storage.list(&token, "events/").unwrap();
    assert!(!remaining.is_empty(), "recent files must survive");
    assert!(remaining.len() < 6);
}

#[test]
fn concurrent_tenants_do_not_interfere() {
    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, 5);
    let (service, client) = AutotuneService::spawn(backend);
    let env = QueryEnv::tpch(3, 0.5, NoiseSpec::none(), 5);
    let ctx = env.context();
    std::thread::scope(|s| {
        for t in 0..6 {
            let c = client.clone();
            let ctx = ctx.clone();
            s.spawn(move || {
                for i in 0..10u64 {
                    let p = c
                        .suggest(&format!("tenant-{t}"), 42, &ctx, Duration::from_secs(5))
                        .expect("backend alive");
                    assert_eq!(p.len(), 3, "tenant {t} iter {i}");
                }
            });
        }
    });
    let backend = service.shutdown().expect("backend exits cleanly");
    assert_eq!(
        backend.tuner_count(),
        6,
        "one tuner per tenant for the signature"
    );
}
