//! The config-space consistency check: the tuned Spark parameters must be
//! declared identically across the knob enum (`sparksim/src/config.rs`) and
//! the search space (`optimizers/src/space.rs`).
//!
//! Invariants enforced (now against the parsed AST — enum variants, match
//! arms, const initializers, and struct literals — instead of line patterns):
//!
//! 1. every `Knob` variant has a `spark_name` arm, and the property names are
//!    pairwise distinct;
//! 2. every variant has a `SparkConf::get` arm and a `SparkConf::set` arm
//!    (explicit arms — a `_` wildcard does not count as handling a knob);
//! 3. every `Knob::X` referenced by a `Dim` in `space.rs` is a declared variant;
//! 4. every knob in `QUERY_LEVEL` ∪ `APP_LEVEL` is covered by some search
//!    space dimension, and that tuned set has exactly the paper's 7 knobs;
//! 5. every backticked `spark.*` property mentioned in doc comments of the
//!    `Knob` variants and the serde'd `SparkConf` fields is one of the
//!    declared `spark_name` values.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::parser::{
    parse_file, walk_expr, Arm, Block, Expr, Item, ItemKind, LitKind, SourceFile, Stmt,
};
use crate::{Diagnostic, LintError, Rule};

const CONFIG_RS: &str = "crates/sparksim/src/config.rs";
const SPACE_RS: &str = "crates/optimizers/src/space.rs";

/// The number of tuned knobs the paper's user study covers (§2.2).
const TUNED_KNOBS: usize = 7;

pub fn check_config_space(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let config_path = root.join(CONFIG_RS);
    let space_path = root.join(SPACE_RS);
    for path in [&config_path, &space_path] {
        if !path.exists() {
            return Err(LintError::MissingFile { path: path.clone() });
        }
    }
    let config_text = read(&config_path)?;
    let space_text = read(&space_path)?;
    Ok(check_sources(&config_text, &space_text))
}

/// Pure core, separated so tests can feed synthetic sources.
pub fn check_sources(config_text: &str, space_text: &str) -> Vec<Diagnostic> {
    let config = parse_file(config_text);
    let space = parse_file(space_text);
    let mut diags = Vec::new();

    // Declared variants, with lines and doc comments.
    let variants = knob_variants(&config);
    let variant_set: BTreeSet<&str> = variants.iter().map(|v| v.name.as_str()).collect();

    // 1. spark_name coverage + pairwise-distinct property names.
    let spark_names = spark_name_arms(&config);
    for v in &variants {
        if !spark_names.contains_key(v.name.as_str()) {
            diags.push(config_diag(
                v.line,
                format!("Knob::{} has no spark_name() arm", v.name),
            ));
        }
    }
    let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (variant, (name, _)) in &spark_names {
        by_name.entry(name.as_str()).or_default().push(variant);
    }
    for (name, owners) in &by_name {
        if owners.len() > 1 {
            let (_, line) = spark_names[owners[1]];
            diags.push(config_diag(
                line,
                format!(
                    "spark property `{name}` mapped by multiple knobs: {}",
                    owners
                        .iter()
                        .map(|v| format!("Knob::{v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }

    // 2. get/set coverage via explicit match arms.
    for fn_name in ["get", "set"] {
        let covered = match_arm_knobs(&config, "SparkConf", fn_name);
        for v in &variants {
            if !covered.contains_key(v.name.as_str()) {
                diags.push(config_diag(
                    v.line,
                    format!("Knob::{} not handled in SparkConf::{fn_name}", v.name),
                ));
            }
        }
    }

    // 3. every `Dim { knob: Knob::X, .. }` in space.rs names a declared variant.
    let dims = dim_knobs(&space);
    let mut dim_set: BTreeSet<String> = BTreeSet::new();
    for (variant, line) in &dims {
        if !variant_set.contains(variant.as_str()) {
            diags.push(Diagnostic {
                file: PathBuf::from(SPACE_RS),
                line: *line,
                rule: Rule::ConfigSpace,
                message: format!(
                    "dimension references Knob::{variant}, not a declared Knob variant"
                ),
            });
        }
        dim_set.insert(variant.clone());
    }

    // 4. the tuned set (QUERY_LEVEL ∪ APP_LEVEL) has exactly 7 knobs, all
    // declared, all covered by a search-space dimension.
    let mut tuned: BTreeSet<String> = BTreeSet::new();
    for const_name in ["QUERY_LEVEL", "APP_LEVEL"] {
        for (variant, line) in const_array_knobs(&config, const_name) {
            if !variant_set.contains(variant.as_str()) {
                diags.push(config_diag(
                    line,
                    format!("{const_name} lists Knob::{variant}, not a declared variant"),
                ));
            }
            tuned.insert(variant);
        }
    }
    if tuned.len() != TUNED_KNOBS {
        diags.push(config_diag(
            1,
            format!(
                "QUERY_LEVEL ∪ APP_LEVEL has {} knobs; the paper tunes {TUNED_KNOBS}",
                tuned.len()
            ),
        ));
    }
    for variant in &tuned {
        if !dim_set.contains(variant) {
            diags.push(Diagnostic {
                file: PathBuf::from(SPACE_RS),
                line: 1,
                rule: Rule::ConfigSpace,
                message: format!(
                    "tuned knob Knob::{variant} has no search-space dimension in space.rs"
                ),
            });
        }
    }

    // 5. doc comments on Knob variants and SparkConf fields name only
    // declared spark properties.
    let declared_names: BTreeSet<&str> = spark_names.values().map(|(n, _)| n.as_str()).collect();
    for (owner, name, line) in documented_spark_props(&config) {
        if !declared_names.contains(name.as_str()) {
            diags.push(config_diag(
                line,
                format!("{owner} doc names `{name}`, which is not a spark_name() value"),
            ));
        }
    }

    diags
}

fn config_diag(line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: PathBuf::from(CONFIG_RS),
        line,
        rule: Rule::ConfigSpace,
        message,
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

// ---- AST extraction ----

struct VariantDecl {
    name: String,
    line: usize,
}

/// All items, flattened through inline modules.
fn all_items(file: &SourceFile) -> Vec<&Item> {
    fn push<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
        for item in items {
            out.push(item);
            if let ItemKind::Mod {
                inline: Some(inner),
            } = &item.kind
            {
                push(inner, out);
            }
        }
    }
    let mut out = Vec::new();
    push(&file.items, &mut out);
    out
}

fn knob_variants(file: &SourceFile) -> Vec<VariantDecl> {
    for item in all_items(file) {
        if item.name == "Knob" {
            if let ItemKind::Enum { variants } = &item.kind {
                return variants
                    .iter()
                    .map(|v| VariantDecl {
                        name: v.name.clone(),
                        line: v.line as usize,
                    })
                    .collect();
            }
        }
    }
    Vec::new()
}

/// The body of `impl <self_ty> { fn <name> }`, wherever it appears.
fn impl_fn_body<'a>(file: &'a SourceFile, self_ty: &str, name: &str) -> Option<&'a Block> {
    for item in all_items(file) {
        if let ItemKind::Impl(imp) = &item.kind {
            if imp.self_ty == self_ty {
                for sub in &imp.items {
                    if sub.name == name {
                        if let ItemKind::Fn(f) = &sub.kind {
                            return f.body.as_ref();
                        }
                    }
                }
            }
        }
    }
    None
}

/// Match arms of the first `match` expression in the named method.
fn method_match_arms(file: &SourceFile, self_ty: &str, name: &str) -> Vec<Arm> {
    let Some(body) = impl_fn_body(file, self_ty, name) else {
        return Vec::new();
    };
    let mut arms: Vec<Arm> = Vec::new();
    let mut found = false;
    crate::parser::walk_block(body, &mut |e| {
        if let Expr::Match { arms: a, .. } = e {
            if !found {
                found = true;
                arms = a.clone();
            }
        }
    });
    arms
}

/// `Knob::X` names bound by an arm's patterns.
fn arm_knobs(arm: &Arm) -> Vec<String> {
    arm.pat_paths
        .iter()
        .filter(|p| p.len() >= 2 && p[p.len() - 2] == "Knob")
        .map(|p| p[p.len() - 1].clone())
        .collect()
}

/// `variant -> (spark property, line)` from the `spark_name` match: each
/// arm's pattern knobs map to the arm body's string literal (directly or as a
/// block tail).
fn spark_name_arms(file: &SourceFile) -> BTreeMap<String, (String, usize)> {
    let mut map = BTreeMap::new();
    for arm in &method_match_arms(file, "Knob", "spark_name") {
        let Some(value) = arm_string_value(&arm.body) else {
            continue;
        };
        for variant in arm_knobs(arm) {
            map.entry(variant)
                .or_insert_with(|| (value.clone(), arm.line as usize));
        }
    }
    map
}

fn arm_string_value(body: &Expr) -> Option<String> {
    match body {
        Expr::Lit {
            kind: LitKind::Str,
            text,
            ..
        } => Some(text.clone()),
        Expr::Block { block, .. } => match block.stmts.last() {
            Some(Stmt::Expr { expr, semi: false }) => arm_string_value(expr),
            _ => None,
        },
        _ => None,
    }
}

/// `variant -> line` for every explicit `Knob::X` arm in the named method.
fn match_arm_knobs(file: &SourceFile, self_ty: &str, name: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for arm in &method_match_arms(file, self_ty, name) {
        for variant in arm_knobs(arm) {
            map.entry(variant).or_insert(arm.line as usize);
        }
    }
    map
}

/// `Knob::X` elements of `const <name>: [Knob; N] = [...]`.
fn const_array_knobs(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for item in all_items(file) {
        let init = match &item.kind {
            ItemKind::Const { init: Some(e), .. } if item.name == name => Some(e),
            ItemKind::Impl(imp) => {
                let mut found = None;
                for sub in &imp.items {
                    if sub.name == name {
                        if let ItemKind::Const { init: Some(e), .. } = &sub.kind {
                            found = Some(e);
                        }
                    }
                }
                found
            }
            _ => None,
        };
        let Some(init) = init else { continue };
        walk_expr(init, &mut |e| {
            if let Expr::Path { segs, line } = e {
                if segs.len() >= 2 && segs[segs.len() - 2] == "Knob" {
                    out.push((segs[segs.len() - 1].clone(), *line as usize));
                }
            }
        });
    }
    out
}

/// `(variant, line)` for the `knob:` field of every `Dim { .. }` struct
/// literal anywhere in the space file.
fn dim_knobs(file: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for item in all_items(file) {
        crate::parser::walk_item(item, &mut |e| {
            if let Expr::StructLit { path, fields, .. } = e {
                if path.last().map(String::as_str) == Some("Dim") {
                    for (fname, value) in fields {
                        if fname == "knob" {
                            if let Expr::Path { segs, line } = value {
                                if segs.len() >= 2 && segs[segs.len() - 2] == "Knob" {
                                    out.push((segs[segs.len() - 1].clone(), *line as usize));
                                }
                            }
                        }
                    }
                }
            }
        });
    }
    out
}

/// Backticked `spark.*` names in doc comments of `Knob` variants and
/// `SparkConf` fields: `(owner description, property, line)`.
fn documented_spark_props(file: &SourceFile) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for item in all_items(file) {
        match &item.kind {
            ItemKind::Enum { variants } if item.name == "Knob" => {
                for v in variants {
                    for doc in &v.docs {
                        for prop in backticked_props(doc) {
                            out.push((format!("Knob::{}", v.name), prop, v.line as usize));
                        }
                    }
                }
            }
            ItemKind::Struct { fields } if item.name == "SparkConf" => {
                for f in fields {
                    for doc in &f.docs {
                        for prop in backticked_props(doc) {
                            out.push((format!("SparkConf::{}", f.name), prop, f.line as usize));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn backticked_props(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(open) = rest.find("`spark.") {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::check_sources;

    const GOOD_CONFIG: &str = r#"
pub enum Knob {
    /// `spark.a.one`
    One,
    /// `spark.a.two`
    Two,
    Three,
    Four,
    Five,
    Six,
    Seven,
}

impl Knob {
    pub fn spark_name(self) -> &'static str {
        match self {
            Knob::One => "spark.a.one",
            Knob::Two => "spark.a.two",
            Knob::Three => "spark.a.three",
            Knob::Four => "spark.a.four",
            Knob::Five => "spark.a.five",
            Knob::Six => "spark.a.six",
            Knob::Seven => {
                "spark.a.seven"
            }
        }
    }

    pub const QUERY_LEVEL: [Knob; 3] = [Knob::One, Knob::Two, Knob::Three];
    pub const APP_LEVEL: [Knob; 4] = [Knob::Four, Knob::Five, Knob::Six, Knob::Seven];
}

pub struct SparkConf {
    /// `spark.a.one` in bytes.
    pub one: f64,
    /// `spark.a.two`.
    pub two: f64,
}

impl SparkConf {
    pub fn get(&self, knob: Knob) -> f64 {
        match knob {
            Knob::One => 0.0,
            Knob::Two => 0.0,
            Knob::Three => 0.0,
            Knob::Four => 0.0,
            Knob::Five => 0.0,
            Knob::Six => 0.0,
            Knob::Seven => 0.0,
        }
    }

    pub fn set(&mut self, knob: Knob, value: f64) {
        match knob {
            Knob::One => {}
            Knob::Two => {}
            Knob::Three => {}
            Knob::Four => {}
            Knob::Five => {}
            Knob::Six => {}
            Knob::Seven => {}
        }
    }
}
"#;

    const GOOD_SPACE: &str = r#"
impl ConfigSpace {
    pub fn query_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim { knob: Knob::One, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Two, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Three, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
            ],
        }
    }
    pub fn app_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim { knob: Knob::Four, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Five, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Six, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
                Dim { knob: Knob::Seven, lo: 0.0, hi: 1.0, log_scale: false, default: 0.5 },
            ],
        }
    }
}
"#;

    #[test]
    fn consistent_sources_are_clean() {
        assert!(check_sources(GOOD_CONFIG, GOOD_SPACE).is_empty());
    }

    #[test]
    fn missing_spark_name_arm_is_flagged() {
        let config = GOOD_CONFIG.replace(
            "Knob::Seven => {\n                \"spark.a.seven\"\n            }",
            "",
        );
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no spark_name() arm")),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_spark_property_is_flagged() {
        let config = GOOD_CONFIG.replace("\"spark.a.two\",", "\"spark.a.one\",");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d.message.contains("multiple knobs")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_get_arm_is_flagged() {
        let config = GOOD_CONFIG.replace("            Knob::Seven => 0.0,\n", "");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("not handled in SparkConf::get")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_knob_in_space_is_flagged() {
        let space = GOOD_SPACE.replace("knob: Knob::Seven", "knob: Knob::Eight");
        let diags = check_sources(GOOD_CONFIG, &space);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("Knob::Eight, not a declared")),
            "{diags:?}"
        );
        // Seven is tuned but now has no dimension.
        assert!(
            diags.iter().any(|d| d
                .message
                .contains("Knob::Seven has no search-space dimension")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_doc_property_is_flagged() {
        let config = GOOD_CONFIG.replace(
            "/// `spark.a.one` in bytes.",
            "/// `spark.a.renamed` in bytes.",
        );
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("`spark.a.renamed`")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_variant_doc_property_is_flagged() {
        // v1's line heuristics only checked SparkConf field docs; the AST
        // pass also validates the enum variants' own doc comments.
        let config =
            GOOD_CONFIG.replace("/// `spark.a.two`\n    Two,", "/// `spark.a.old`\n    Two,");
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d.message.contains("`spark.a.old`")),
            "{diags:?}"
        );
    }

    #[test]
    fn tuned_set_must_have_seven_knobs() {
        let config = GOOD_CONFIG.replace(
            "pub const APP_LEVEL: [Knob; 4] = [Knob::Four, Knob::Five, Knob::Six, Knob::Seven];",
            "pub const APP_LEVEL: [Knob; 3] = [Knob::Four, Knob::Five, Knob::Six];",
        );
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("the paper tunes 7")),
            "{diags:?}"
        );
    }

    #[test]
    fn wildcard_arm_does_not_count_as_coverage() {
        let config = GOOD_CONFIG.replace(
            "            Knob::Six => 0.0,\n            Knob::Seven => 0.0,\n",
            "            _ => 0.0,\n",
        );
        let diags = check_sources(&config, GOOD_SPACE);
        assert!(
            diags.iter().any(|d| d
                .message
                .contains("Knob::Six not handled in SparkConf::get")),
            "{diags:?}"
        );
    }
}
