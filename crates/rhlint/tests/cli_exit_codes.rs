//! The CLI's exit-code contract, which CI scripts key off:
//! `0` = clean, `1` = violations found, `2` = could not run (bad usage or
//! unreadable workspace). A gate that conflates 1 and 2 would wave through
//! runs where the linter never actually looked at the code.

mod common;

use std::process::Command;

fn rhlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rhlint"))
}

#[test]
fn clean_workspace_exits_zero() {
    let scaffold = common::scaffold("clean");
    let out = rhlint()
        .args(["check"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violations_exit_one() {
    let scaffold = common::scaffold("lock_order");
    let out = rhlint()
        .args(["check"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RH020"), "{text}");
}

#[test]
fn unreadable_workspace_exits_two() {
    let out = rhlint()
        .args(["check", "/nonexistent/rhlint-no-such-root"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.is_empty(), "engine errors are reported on stderr");
}

#[test]
fn bad_usage_exits_two() {
    let out = rhlint()
        .args(["check", "--format", "yaml"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(out.status.code(), Some(2));
}

/// `rhlint explain` works for every rule in the catalog, by code and by id,
/// and prints the three documented sections.
#[test]
fn explain_covers_every_rule() {
    for rule in rhlint::Rule::ALL {
        let out = rhlint()
            .args(["explain", rule.code()])
            .output()
            .expect("spawn rhlint");
        assert_eq!(out.status.code(), Some(0), "{}", rule.code());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(rule.code()), "{text}");
        assert!(text.contains(rule.id()), "{text}");
        assert!(text.contains("why:"), "{text}");
        assert!(text.contains("example violation:"), "{text}");
        assert!(text.contains("fix:"), "{text}");
    }
    // The kebab-case id is accepted as an alias for the code.
    let out = rhlint()
        .args(["explain", "tainted-index"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(out.status.code(), Some(0));
}

/// An unknown rule is a usage error (exit 2), not a silent success.
#[test]
fn explain_unknown_rule_exits_two() {
    let out = rhlint()
        .args(["explain", "RH999"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown rule"), "{err}");
}

/// `fix --stale-allows` round trip on the stale_allow fixture: the dry run
/// reports the pending fix without touching the file and exits 1; `--write`
/// deletes exactly the stale allow line (the justified lossy-cast allow
/// survives); afterwards both `fix` and `check` come back clean.
#[test]
fn fix_stale_allows_round_trip() {
    let scaffold = common::scaffold("stale_allow");
    let target = scaffold.root.join("crates/optimizers/src/tuning.rs");
    let before = std::fs::read_to_string(&target).expect("fixture file");
    assert!(before.contains("rhlint:allow(unwrap)"), "{before}");

    // Dry run: pending fix, exit 1, file untouched.
    let out = rhlint()
        .args(["fix", "--stale-allows"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("would fix"), "{text}");
    assert!(text.contains("tuning.rs"), "{text}");
    assert_eq!(
        std::fs::read_to_string(&target).expect("fixture file"),
        before,
        "dry run must not modify the workspace"
    );

    // --write: applies the deletion and exits 0.
    let out = rhlint()
        .args(["fix", "--stale-allows", "--write"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = std::fs::read_to_string(&target).expect("fixture file");
    assert!(!after.contains("rhlint:allow(unwrap)"), "{after}");
    assert!(
        after.contains("rhlint:allow(lossy-cast)"),
        "the justified allow must survive: {after}"
    );

    // The workspace is now clean: no pending fixes, no findings at all.
    let out = rhlint()
        .args(["fix", "--stale-allows"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(out.status.code(), Some(0));
    let out = rhlint()
        .args(["check"])
        .arg(&scaffold.root)
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn sarif_format_is_accepted_and_stable() {
    let scaffold = common::scaffold("lock_order");
    let run = || {
        let out = rhlint()
            .args(["check"])
            .arg(&scaffold.root)
            .args(["--format", "sarif"])
            .output()
            .expect("spawn rhlint");
        assert_eq!(out.status.code(), Some(1));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "SARIF output must be byte-stable across runs");
    assert!(a.contains("\"$schema\""), "{a}");
}
