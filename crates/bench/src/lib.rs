#![forbid(unsafe_code)]

//! Criterion micro-benchmarks live under `benches/`; this lib hosts the
//! parallel-scaling harness behind `cargo run -p bench`: it times the three
//! pool-backed hot paths (tuner candidate batch, app-cache build, experiment
//! fan-out) serially and at 2/4/8 workers, checks that every width produced
//! bit-identical results, and emits the machine-readable `BENCH_parallel.json`
//! baseline consumed by the tier-1 regression gate (`tests/bench_gate.rs`) and
//! the CI artifact upload. The [`serve`] module is the companion load
//! generator for the `rockserve` serving layer, emitting `BENCH_serve.json`
//! through the same gate.

pub mod serve;

use std::sync::Arc;
use std::time::Instant;

use optimizers::env::Environment;
use optimizers::tuner::{Outcome, Tuner};
use optimizers::{ConfigSpace, QueryEnv};
use pipeline::service::AutotuneBackend;
use pipeline::storage::Storage;
use rockhopper::baseline::{BaselineModel, BaselineRow};
use sparksim::noise::NoiseSpec;

/// Schema tag stamped into the JSON so downstream parsers can reject
/// incompatible layouts instead of misreading them.
pub const SCHEMA: &str = "rockhopper-bench-parallel/v1";

/// Default output path, relative to the invoking directory (the workspace
/// root under `cargo run -p bench`). Overridable via `ROCKHOPPER_BENCH_OUT`.
pub const DEFAULT_OUT: &str = "BENCH_parallel.json";

/// The parallel widths swept against the serial baseline.
pub const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

/// How much work each timed workload does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// The baseline emitted by `cargo run -p bench` (seconds).
    Full,
    /// Down-scaled run used by the tier-1 gate (sub-second).
    Quick,
}

impl BenchScale {
    fn pick(self, full: usize, quick: usize) -> usize {
        match self {
            BenchScale::Full => full,
            BenchScale::Quick => quick,
        }
    }
}

/// One workload's serial-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct WorkloadTiming {
    /// Stable workload key (`tuner_batch`, `app_cache_build`, `experiment_fanout`).
    pub name: &'static str,
    /// Wall time of the `RH_THREADS=1` run, milliseconds.
    pub serial_ms: f64,
    /// Wall time per swept width, milliseconds, in [`THREAD_SWEEP`] order.
    pub parallel_ms: Vec<(usize, f64)>,
    /// Whether every width produced a bit-identical result fingerprint —
    /// the DESIGN.md §7 contract, re-verified on every bench run.
    pub deterministic: bool,
}

impl WorkloadTiming {
    /// Speedup of the `threads`-wide run over serial (>1 means faster).
    pub fn speedup(&self, threads: usize) -> Option<f64> {
        let (_, ms) = self.parallel_ms.iter().find(|(t, _)| *t == threads)?;
        if *ms > 0.0 && self.serial_ms.is_finite() {
            Some(self.serial_ms / ms)
        } else {
            None
        }
    }
}

/// The whole baseline: one timing block per pool-backed hot path.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `std::thread::available_parallelism` on the measuring host — readers
    /// must interpret speedups relative to this (an 8-wide pool cannot beat
    /// serial on a 1-core container).
    pub host_threads: usize,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadTiming>,
}

impl BenchReport {
    /// Look up one workload's timings by key.
    pub fn workload(&self, name: &str) -> Option<&WorkloadTiming> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// Render as the `BENCH_parallel.json` document (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str("  \"workloads\": {\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{\n", w.name));
            out.push_str(&format!("      \"serial_ms\": {:.3},\n", w.serial_ms));
            out.push_str("      \"parallel_ms\": {");
            for (i, (t, ms)) in w.parallel_ms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{t}\": {ms:.3}"));
            }
            out.push_str("},\n");
            out.push_str(&format!("      \"deterministic\": {}\n", w.deterministic));
            out.push_str(if wi + 1 < self.workloads.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Time `work` at width 1 and every width in [`THREAD_SWEEP`], checking the
/// result fingerprint never moves. `work(threads)` must set up its own state,
/// run the workload under `RH_THREADS=threads`, and return a fingerprint of
/// everything the workload computed.
fn sweep(name: &'static str, work: impl Fn(usize) -> u64) -> WorkloadTiming {
    let time_one = |threads: usize| -> (f64, u64) {
        std::env::set_var(rockpool::THREADS_ENV, threads.to_string());
        let start = Instant::now();
        let fp = work(threads);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        std::env::remove_var(rockpool::THREADS_ENV);
        (elapsed, fp)
    };
    // Warm-up (untimed): touches lazily-initialized state and page cache.
    let _ = time_one(1);
    let (serial_ms, serial_fp) = time_one(1);
    let mut parallel_ms = Vec::with_capacity(THREAD_SWEEP.len());
    let mut deterministic = true;
    for &threads in &THREAD_SWEEP {
        let (ms, fp) = time_one(threads);
        deterministic &= fp == serial_fp;
        parallel_ms.push((threads, ms));
    }
    WorkloadTiming {
        name,
        serial_ms,
        parallel_ms,
        deterministic,
    }
}

/// Fold a float sequence into an order-sensitive bit fingerprint.
fn fold_bits(acc: u64, xs: &[f64]) -> u64 {
    let mut h = acc;
    for x in xs {
        h = rockpool::split_seed(h, x.to_bits());
    }
    h
}

/// Workload 1 — the BO/CBO acquisition batch: a GP fitted on a warmed history
/// scores a 256-candidate pool per suggest (the `optimizers::batch` path).
fn tuner_batch(scale: BenchScale) -> WorkloadTiming {
    let suggests = scale.pick(24, 3);
    sweep("tuner_batch", move |_| {
        let space = ConfigSpace::query_level();
        let mut bo = optimizers::bo::BayesOpt::new(space.clone(), 0x0BEC);
        // Warm the history past n_init so every timed suggest runs the GP path.
        let mut seed_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for i in 0..60u64 {
            let p = space.random_point(&mut seed_rng);
            let elapsed = 100.0 + (i % 17) as f64 * 9.0;
            bo.observe(&p, &Outcome::measured(elapsed, 1.0));
        }
        let ctx = optimizers::TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let mut fp = 0u64;
        for _ in 0..suggests {
            let p = bo.suggest(&ctx);
            fp = fold_bits(fp, &p);
        }
        fp
    })
}

/// Workload 2 — the App Cache Generator sweep: Algorithm 2 over many
/// artifacts with a trained baseline model (`update_app_cache_batch`).
fn app_cache_build(scale: BenchScale) -> WorkloadTiming {
    let artifacts = scale.pick(16, 3);
    let sigs_per_artifact = scale.pick(6, 3);
    sweep("app_cache_build", move |_| {
        let space = ConfigSpace::query_level();
        let mut rows_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let rows: Vec<BaselineRow> = (0..80)
            .map(|i| {
                let point = space.random_point(&mut rows_rng);
                BaselineRow {
                    embedding: vec![0.4, 0.7],
                    point,
                    data_size: 1.0,
                    elapsed_ms: 120.0 + (i % 13) as f64 * 20.0,
                }
            })
            .collect();
        let baseline = BaselineModel::train(&space, &rows, 5);
        let mut backend = AutotuneBackend::new(Arc::new(Storage::new()), baseline, 0xCAC8E);
        let ctx = optimizers::TuningContext {
            embedding: vec![0.4, 0.7],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let mut batch: Vec<(String, Vec<u64>, f64)> = Vec::with_capacity(artifacts);
        for a in 0..artifacts as u64 {
            let sigs: Vec<u64> = (0..sigs_per_artifact as u64)
                .map(|q| a * 100 + q + 1)
                .collect();
            for &sig in &sigs {
                let _ = backend.suggest("bench", sig, &ctx);
            }
            batch.push((format!("artifact-{a}"), sigs, 1.0));
        }
        let installed = backend.update_app_cache_batch("bench", &batch);
        let mut fp = installed as u64;
        for (artifact, _, _) in &batch {
            if let Some(conf) = backend.app_conf(artifact) {
                fp = fold_bits(fp, &conf);
            }
        }
        fp
    })
}

/// Workload 3 — the experiment fan-out: independent seeded replications of a
/// small simulated tuning run (`experiments::replicate_raw`).
fn experiment_fanout(scale: BenchScale) -> WorkloadTiming {
    let runs = scale.pick(24, 4);
    let iters = scale.pick(12, 4);
    sweep("experiment_fanout", move |_| {
        let traces = experiments::harness::replicate_raw(runs, |seed| {
            let mut env = QueryEnv::tpch(6, 0.1, NoiseSpec::high(), seed);
            let mut tuner = optimizers::random::RandomSearch::new(env.space().clone(), seed);
            (0..iters)
                .map(|_| {
                    let p = tuner.suggest(&env.context());
                    let o = env.run(&p);
                    tuner.observe(&p, &o);
                    o.elapsed_ms
                })
                .collect()
        });
        let mut fp = 0u64;
        for t in &traces {
            fp = fold_bits(fp, t);
        }
        fp
    })
}

/// Run the full serial-vs-parallel sweep.
pub fn run_parallel_bench(scale: BenchScale) -> BenchReport {
    BenchReport {
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workloads: vec![
            tuner_batch(scale),
            app_cache_build(scale),
            experiment_fanout(scale),
        ],
    }
}

/// Where `BENCH_parallel.json` goes: `$ROCKHOPPER_BENCH_OUT` or [`DEFAULT_OUT`].
pub fn out_path() -> std::path::PathBuf {
    std::env::var("ROCKHOPPER_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from(DEFAULT_OUT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_every_workload_and_roundtrips() {
        let report = run_parallel_bench(BenchScale::Quick);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.serial_ms >= 0.0);
            assert_eq!(w.parallel_ms.len(), THREAD_SWEEP.len());
            assert!(
                w.deterministic,
                "{} fingerprint moved across widths",
                w.name
            );
        }
        let json = report.to_json();
        let value = serde_json::value_from_str(&json).expect("valid JSON");
        match value.get_field("schema") {
            serde::Value::Str(s) => assert_eq!(s, SCHEMA),
            other => panic!("schema field: {other:?}"),
        }
        for name in ["tuner_batch", "app_cache_build", "experiment_fanout"] {
            let w = value.get_field("workloads").get_field(name);
            assert!(
                matches!(w.get_field("serial_ms"), serde::Value::Float(_)),
                "{name} serial_ms missing"
            );
            assert!(
                matches!(w.get_field("deterministic"), serde::Value::Bool(true)),
                "{name} not flagged deterministic"
            );
        }
    }

    #[test]
    fn speedup_lookup() {
        let w = WorkloadTiming {
            name: "x",
            serial_ms: 100.0,
            parallel_ms: vec![(2, 50.0), (8, 25.0)],
            deterministic: true,
        };
        assert_eq!(w.speedup(8), Some(4.0));
        assert_eq!(w.speedup(2), Some(2.0));
        assert_eq!(w.speedup(4), None);
    }
}
