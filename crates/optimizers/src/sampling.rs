//! Offline sampling strategies for the flighting pipeline (§4.2): random sweeps, full
//! factorial grids and Latin-hypercube designs over a [`ConfigSpace`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::space::ConfigSpace;

/// How the flighting pipeline generates configuration candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Independent uniform draws in the normalized cube (the paper's current setting).
    Random,
    /// Full factorial grid with the given levels per dimension.
    Grid(usize),
    /// Latin hypercube: stratified one-dimensional coverage.
    LatinHypercube,
}

/// Generate `n` raw-unit points using `strategy`. Grid sampling ignores `n` beyond
/// truncation (it produces its full factorial, truncated/cycled to `n`).
pub fn sample(
    space: &ConfigSpace,
    strategy: SamplingStrategy,
    n: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        SamplingStrategy::Random => (0..n).map(|_| space.random_point(&mut rng)).collect(),
        SamplingStrategy::Grid(k) => {
            let g = space.grid(k);
            g.into_iter().cycle().take(n).collect()
        }
        SamplingStrategy::LatinHypercube => latin_hypercube(space, n, &mut rng),
    }
}

/// Latin-hypercube sample: each dimension's `[0,1]` range is cut into `n` strata, one
/// sample per stratum, strata order shuffled independently per dimension.
fn latin_hypercube(space: &ConfigSpace, n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    if n == 0 {
        return Vec::new();
    }
    let d = space.len();
    // perms[j] is the stratum assignment of each sample along dimension j.
    let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            p.swap(i, j);
        }
        perms.push(p);
    }
    (0..n)
        .map(|i| {
            let x: Vec<f64> = (0..d)
                .map(|j| {
                    let stratum = perms[j][i] as f64;
                    (stratum + rng.random_range(0.0..1.0)) / n as f64
                })
                .collect();
            space.denormalize(&x)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_and_lhs_produce_n_in_bounds() {
        let space = ConfigSpace::query_level();
        for strat in [SamplingStrategy::Random, SamplingStrategy::LatinHypercube] {
            let pts = sample(&space, strat, 40, 1);
            assert_eq!(pts.len(), 40);
            for p in &pts {
                for (v, d) in p.iter().zip(&space.dims) {
                    assert!(*v >= d.lo - 1e-9 && *v <= d.hi + 1e-9);
                }
            }
        }
    }

    #[test]
    fn lhs_stratifies_each_dimension() {
        let space = ConfigSpace::query_level();
        let n = 20;
        let pts = sample(&space, SamplingStrategy::LatinHypercube, n, 3);
        // Every stratum of every dimension must contain exactly one sample.
        for j in 0..space.len() {
            let mut strata = vec![0usize; n];
            for p in &pts {
                let x = space.dims[j].normalize(p[j]);
                let s = ((x * n as f64).floor() as usize).min(n - 1);
                strata[s] += 1;
            }
            assert!(
                strata.iter().all(|&c| c == 1),
                "dim {j} strata counts {strata:?}"
            );
        }
    }

    #[test]
    fn grid_sampling_cycles_to_n() {
        let space = ConfigSpace::query_level();
        let pts = sample(&space, SamplingStrategy::Grid(2), 10, 0);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0], pts[8]); // 2^3 = 8 grid points, then cycles
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = ConfigSpace::query_level();
        let a = sample(&space, SamplingStrategy::Random, 5, 9);
        let b = sample(&space, SamplingStrategy::Random, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_is_empty() {
        let space = ConfigSpace::query_level();
        assert!(sample(&space, SamplingStrategy::LatinHypercube, 0, 1).is_empty());
    }
}
