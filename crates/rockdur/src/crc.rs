//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), the same
//! checksum gzip/zip use. Table-driven, one lookup per byte; the table is
//! built at compile time so the hot append path pays no init cost.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
}

/// Checksum of `data`, init and final-xor `0xFFFF_FFFF` (standard CRC-32).
// rhlint:hot — runs on every WAL append and every recovered record; table
// lookups and bit math only, no allocation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        // The mask proves idx < 256; `.get` keeps the path panic-free anyway.
        let entry = TABLE.get(idx).copied().unwrap_or(0);
        c = entry ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"rockhopper");
        let mut flipped = b"rockhopper".to_vec();
        if let Some(b) = flipped.get_mut(3) {
            *b ^= 0x10;
        }
        assert_ne!(crc32(&flipped), base);
    }
}
