//! Fixture optimizers crate: one raw `thread::spawn` in a scoped crate —
//! the RH018 violation this fixture exists to trigger.

pub mod space;

use space::{app_level, query_level};

fn dims() -> usize {
    query_level().len() + app_level().len()
}

fn fan_out() -> usize {
    let worker = std::thread::spawn(dims);
    worker.join().unwrap_or(0)
}
