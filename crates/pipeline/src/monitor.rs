//! The monitoring dashboard (§6.3, "posterior analysis").
//!
//! "A key component of Rockhopper is the monitoring dashboard, which facilitates
//! real-time analysis of query tuning performance": visualization of configuration
//! changes across iterations, performance trends, and the metrics directly influenced
//! by configuration suggestions — "(1) partitions, (2) physical plans, (3) task
//! numbers, and (4) input data sizes" — supporting Root Cause Analysis (RCA) for
//! performance variations.
//!
//! [`QueryMonitor`] accumulates per-iteration records from event logs; [`Dashboard`]
//! aggregates monitors per query signature and renders text reports.

use std::collections::HashMap;

use ml::{Regressor, Ridge};
use serde::{Deserialize, Serialize};
use sparksim::config::{Knob, SparkConf};
use sparksim::event::SparkEvent;

/// One iteration's record: the suggested configuration and what it did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorRecord {
    /// Iteration index (order of arrival).
    pub iteration: u32,
    /// Configuration the run used.
    pub conf: SparkConf,
    /// Observed elapsed time, ms.
    pub elapsed_ms: f64,
    /// Input rows (data size).
    pub input_rows: f64,
    /// Total tasks.
    pub num_tasks: usize,
    /// Stage count (physical-plan shape proxy).
    pub num_stages: usize,
    /// Broadcast-hash joins in the physical plan.
    pub broadcast_joins: usize,
    /// Sort-merge joins in the physical plan.
    pub sort_merge_joins: usize,
    /// Bytes spilled.
    pub spilled_bytes: f64,
}

/// The attributed cause of an iteration-to-iteration performance change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RootCause {
    /// Input size moved enough to explain the change.
    DataSizeChange {
        /// `p_t / p_{t-1}`.
        ratio: f64,
    },
    /// The physical plan changed shape (join strategy flipped, task count jumped).
    PlanChange {
        /// Broadcast-join delta.
        broadcast_delta: i64,
        /// Relative task-count change.
        task_ratio: f64,
    },
    /// Tuned knobs moved and the plan stayed comparable — the tuner's doing.
    ConfigChange {
        /// The knobs that moved, with (from, to) values.
        knobs: Vec<(Knob, f64, f64)>,
    },
    /// Nothing observable changed: fluctuation noise or an external spike.
    LikelyNoiseOrExternal,
}

/// A fitted performance trend over iterations (data size controlled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct TrendReport {
    /// Estimated ms change per iteration at fixed data size.
    pub slope_ms_per_iteration: f64,
    /// Whether performance is improving (negative slope beyond noise).
    pub improving: bool,
}

/// Per-signature monitor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryMonitor {
    /// Chronological records.
    pub records: Vec<MonitorRecord>,
    /// Runs that started but never completed (failed or censored).
    pub failed_runs: usize,
    pending_conf: Option<SparkConf>,
}

impl QueryMonitor {
    /// Empty monitor.
    pub fn new() -> QueryMonitor {
        QueryMonitor::default()
    }

    /// Feed one event; `QueryStart`/`QueryEnd` pairs become records. Returns
    /// `true` when the event completed a record (a matched `QueryEnd`).
    pub fn ingest(&mut self, event: &SparkEvent) -> bool {
        match event {
            SparkEvent::QueryStart { conf, .. } => self.pending_conf = Some(conf.clone()),
            SparkEvent::QueryEnd { metrics, .. } => {
                let Some(conf) = self.pending_conf.take() else {
                    return false;
                };
                self.records.push(MonitorRecord {
                    iteration: u32::try_from(self.records.len()).unwrap_or(u32::MAX),
                    conf,
                    elapsed_ms: metrics.elapsed_ms,
                    input_rows: metrics.input_rows,
                    num_tasks: metrics.num_tasks,
                    num_stages: metrics.num_stages,
                    broadcast_joins: metrics.broadcast_joins,
                    sort_merge_joins: metrics.sort_merge_joins,
                    spilled_bytes: metrics.spilled_bytes,
                });
                return true;
            }
            _ => {}
        }
        false
    }

    /// Record one failed run (a start whose end never arrived).
    pub fn record_failure(&mut self) {
        self.failed_runs += 1;
    }

    /// Knob changes between consecutive iterations:
    /// `(iteration, knob, previous, new)` — the dashboard's "configuration changes
    /// across iterations" view.
    // rhlint:allow(dead-pub): monitor introspection for guardrail experiments
    pub fn config_changes(&self) -> Vec<(u32, Knob, f64, f64)> {
        let mut out = Vec::new();
        for w in self.records.windows(2) {
            let [prev, cur] = w else { continue };
            for knob in Knob::QUERY_LEVEL.iter().chain(Knob::APP_LEVEL.iter()) {
                let (a, b) = (prev.conf.get(*knob), cur.conf.get(*knob));
                if relative_change(a, b) > 1e-9 {
                    out.push((cur.iteration, *knob, a, b));
                }
            }
        }
        out
    }

    /// Fit the performance trend (`elapsed ~ iteration + ln input_rows`).
    /// Returns `None` with fewer than 5 records.
    pub(crate) fn trend(&self) -> Option<TrendReport> {
        if self.records.len() < 5 {
            return None;
        }
        let x: Vec<Vec<f64>> = self
            .records
            .iter()
            .map(|r| vec![r.iteration as f64, r.input_rows.max(1e-9).ln()])
            .collect();
        let y: Vec<f64> = self.records.iter().map(|r| r.elapsed_ms).collect();
        let mut m = Ridge::new(1.0);
        m.fit(&x, &y).ok()?;
        let slope = m.weights().first().copied()?;
        Some(TrendReport {
            slope_ms_per_iteration: slope,
            improving: slope < 0.0,
        })
    }

    /// Attribute the performance change at `iteration` (vs the previous one).
    /// Returns `None` for iteration 0 or out-of-range.
    pub fn rca(&self, iteration: u32) -> Option<RootCause> {
        let i = iteration as usize;
        if i == 0 || i >= self.records.len() {
            return None;
        }
        let (prev, cur) = (&self.records[i - 1], &self.records[i]);

        // 1. Data-size movement explains most production variance; check it first
        //    ("we attempt to exclude external impacts such as changes in data size").
        let p_ratio = cur.input_rows.max(1e-9) / prev.input_rows.max(1e-9);
        if !(0.9..=1.1).contains(&p_ratio) {
            return Some(RootCause::DataSizeChange { ratio: p_ratio });
        }

        // 2. Physical-plan shape changes (join strategy flips, task-count jumps).
        let broadcast_delta = cur.broadcast_joins as i64 - prev.broadcast_joins as i64;
        let task_ratio = cur.num_tasks.max(1) as f64 / prev.num_tasks.max(1) as f64;
        if broadcast_delta != 0 || !(0.8..=1.25).contains(&task_ratio) {
            return Some(RootCause::PlanChange {
                broadcast_delta,
                task_ratio,
            });
        }

        // 3. Knob movement without a plan-shape change.
        let knobs: Vec<(Knob, f64, f64)> = Knob::QUERY_LEVEL
            .iter()
            .chain(Knob::APP_LEVEL.iter())
            .filter_map(|k| {
                let (a, b) = (prev.conf.get(*k), cur.conf.get(*k));
                (relative_change(a, b) > 0.01).then_some((*k, a, b))
            })
            .collect();
        if !knobs.is_empty() {
            return Some(RootCause::ConfigChange { knobs });
        }
        Some(RootCause::LikelyNoiseOrExternal)
    }

    /// Render the per-query dashboard: a sparkline of elapsed times, the fitted
    /// trend, and the latest record's key metrics.
    pub fn render(&self, signature: u64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query {signature:016x}: {} iterations{}\n",
            self.records.len(),
            if self.failed_runs > 0 {
                format!(", {} failed runs", self.failed_runs)
            } else {
                String::new()
            }
        ));
        let times: Vec<f64> = self.records.iter().map(|r| r.elapsed_ms).collect();
        out.push_str(&format!("  elapsed  {}\n", sparkline(&times)));
        if let Some(t) = self.trend() {
            out.push_str(&format!(
                "  trend    {:+.1} ms/iteration ({})\n",
                t.slope_ms_per_iteration,
                if t.improving {
                    "improving"
                } else {
                    "regressing"
                }
            ));
        }
        if let Some(last) = self.records.last() {
            out.push_str(&format!(
                "  latest   {:.0} ms | partitions {} | tasks {} | stages {} | \
                 bc/smj joins {}/{} | input {:.2e} rows | spill {:.1} MiB\n",
                last.elapsed_ms,
                last.conf.shuffle_partition_count(),
                last.num_tasks,
                last.num_stages,
                last.broadcast_joins,
                last.sort_merge_joins,
                last.input_rows,
                last.spilled_bytes / (1024.0 * 1024.0),
            ));
        }
        out
    }
}

/// Cheaply snapshot-able dashboard counters: one `Copy` struct instead of
/// per-field getters, maintained incrementally on every mutation so a snapshot
/// never walks the per-signature monitors. `rockserve` exports this struct
/// verbatim through its `Metrics` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DashboardCounters {
    /// Completed `QueryStart`/`QueryEnd` record pairs ingested.
    pub ingested_records: u64,
    /// Runs that started but never completed (failed or censored).
    pub failed_runs: u64,
    /// Corrupt/truncated event-log lines quarantined during ingest.
    pub quarantined_lines: u64,
    /// Distinct query signatures with a monitor.
    pub tracked_signatures: u64,
    /// WAL records durably appended by the backend (lifetime, carried across
    /// restarts inside the snapshot).
    pub wal_records_written: u64,
    /// Corrupt WAL/snapshot artifacts quarantined during recovery.
    pub wal_records_quarantined: u64,
    /// Compacted state snapshots written.
    pub snapshot_writes: u64,
    /// WAL records replayed into the backend by recovery.
    pub recovery_replayed: u64,
    /// Tuners evicted from the bounded per-shard state map (LRU capacity).
    pub tuner_evictions: u64,
    /// Evicted tuners restored bit-identically from their durable sidecar.
    pub evicted_restored: u64,
    /// Cold suggests answered from the retrieval corpus (zero-execution
    /// transfer, DESIGN.md §12).
    pub cold_hits: u64,
    /// Cold suggests with no close-enough corpus neighbor (fell through to
    /// normal exploration).
    pub cold_misses: u64,
    /// Tuners warm-started from a transferred prior on their first real
    /// report (trust-discounted handoff).
    pub transfer_seeded: u64,
}

impl DashboardCounters {
    /// Field-wise sum — how a sharded deployment merges per-shard counters
    /// into the single frame the wire protocol reports.
    pub fn merged_with(self, other: DashboardCounters) -> DashboardCounters {
        DashboardCounters {
            ingested_records: self.ingested_records.saturating_add(other.ingested_records),
            failed_runs: self.failed_runs.saturating_add(other.failed_runs),
            quarantined_lines: self
                .quarantined_lines
                .saturating_add(other.quarantined_lines),
            tracked_signatures: self
                .tracked_signatures
                .saturating_add(other.tracked_signatures),
            wal_records_written: self
                .wal_records_written
                .saturating_add(other.wal_records_written),
            wal_records_quarantined: self
                .wal_records_quarantined
                .saturating_add(other.wal_records_quarantined),
            snapshot_writes: self.snapshot_writes.saturating_add(other.snapshot_writes),
            recovery_replayed: self
                .recovery_replayed
                .saturating_add(other.recovery_replayed),
            tuner_evictions: self.tuner_evictions.saturating_add(other.tuner_evictions),
            evicted_restored: self.evicted_restored.saturating_add(other.evicted_restored),
            cold_hits: self.cold_hits.saturating_add(other.cold_hits),
            cold_misses: self.cold_misses.saturating_add(other.cold_misses),
            transfer_seeded: self.transfer_seeded.saturating_add(other.transfer_seeded),
        }
    }
}

/// Workspace-wide dashboard: one monitor per query signature.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dashboard {
    monitors: HashMap<u64, QueryMonitor>,
    counters: DashboardCounters,
}

impl Dashboard {
    /// Empty dashboard.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// Feed a stream of events, routing them to per-signature monitors.
    pub fn ingest(&mut self, events: &[SparkEvent]) {
        for e in events {
            let sig = match e {
                SparkEvent::QueryStart {
                    query_signature, ..
                }
                | SparkEvent::QueryEnd {
                    query_signature, ..
                } => *query_signature,
                _ => continue,
            };
            if self.monitors.entry(sig).or_default().ingest(e) {
                self.counters.ingested_records = self.counters.ingested_records.saturating_add(1);
            }
        }
        self.counters.tracked_signatures = u64::try_from(self.monitors.len()).unwrap_or(u64::MAX);
    }

    /// Count corrupt/truncated event-log lines quarantined during ingest.
    pub fn record_quarantined(&mut self, lines: usize) {
        self.counters.quarantined_lines = self
            .counters
            .quarantined_lines
            .saturating_add(u64::try_from(lines).unwrap_or(u64::MAX));
    }

    /// Record one failed run against a signature's monitor.
    pub fn record_failure(&mut self, signature: u64) {
        self.monitors.entry(signature).or_default().record_failure();
        self.counters.failed_runs = self.counters.failed_runs.saturating_add(1);
        self.counters.tracked_signatures = u64::try_from(self.monitors.len()).unwrap_or(u64::MAX);
    }

    /// Count one durably appended WAL record.
    pub fn record_wal_write(&mut self) {
        self.counters.wal_records_written = self.counters.wal_records_written.saturating_add(1);
    }

    /// Count one compacted snapshot write.
    pub fn record_snapshot_write(&mut self) {
        self.counters.snapshot_writes = self.counters.snapshot_writes.saturating_add(1);
    }

    /// Fold one recovery's outcome into the counters: `replayed` WAL records
    /// re-applied to the backend, `quarantined` corrupt artifacts set aside.
    pub fn record_recovery(&mut self, replayed: u64, quarantined: u64) {
        self.counters.recovery_replayed = self.counters.recovery_replayed.saturating_add(replayed);
        self.counters.wal_records_quarantined = self
            .counters
            .wal_records_quarantined
            .saturating_add(quarantined);
    }

    /// Count one tuner evicted by the bounded state map.
    pub fn record_tuner_eviction(&mut self) {
        self.counters.tuner_evictions = self.counters.tuner_evictions.saturating_add(1);
    }

    /// Count one evicted tuner restored from its durable sidecar.
    pub fn record_evicted_restored(&mut self) {
        self.counters.evicted_restored = self.counters.evicted_restored.saturating_add(1);
    }

    /// Count one cold suggest served from the retrieval corpus.
    pub fn record_cold_hit(&mut self) {
        self.counters.cold_hits = self.counters.cold_hits.saturating_add(1);
    }

    /// Count one cold suggest with no close-enough corpus neighbor.
    pub fn record_cold_miss(&mut self) {
        self.counters.cold_misses = self.counters.cold_misses.saturating_add(1);
    }

    /// Count one tuner warm-started from a transferred prior.
    pub fn record_transfer_seeded(&mut self) {
        self.counters.transfer_seeded = self.counters.transfer_seeded.saturating_add(1);
    }

    /// One-copy snapshot of the aggregate counters.
    pub fn counters(&self) -> DashboardCounters {
        self.counters
    }

    /// The monitor for a signature, if any.
    pub fn monitor(&self, signature: u64) -> Option<&QueryMonitor> {
        self.monitors.get(&signature)
    }

    /// Signatures tracked.
    pub fn signatures(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.monitors.keys().copied().collect();
        sigs.sort_unstable();
        sigs
    }

    /// Signatures whose trend regresses — the operator's attention list.
    pub fn regressing_signatures(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .monitors
            .iter()
            .filter(|(_, m)| m.trend().map(|t| !t.improving).unwrap_or(false))
            .map(|(s, _)| *s)
            .collect();
        out.sort_unstable();
        out
    }

    /// Render every tracked query.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for sig in self.signatures() {
            out.push_str(&self.monitors[&sig].render(sig));
        }
        if self.counters.quarantined_lines > 0 {
            out.push_str(&format!(
                "telemetry: {} quarantined event-log lines\n",
                self.counters.quarantined_lines
            ));
        }
        out
    }
}

/// Relative change `|b − a| / max(|a|, |b|, ε)`.
fn relative_change(a: f64, b: f64) -> f64 {
    (b - a).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// Unicode sparkline of a series (▁▂▃▄▅▆▇█), capped at 60 points (tail).
fn sparkline(xs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &xs[xs.len().saturating_sub(60)..];
    if tail.is_empty() {
        return String::new();
    }
    let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    tail.iter()
        .map(|&x| {
            let idx = (((x - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::metrics::QueryMetrics;

    fn start(conf: SparkConf) -> SparkEvent {
        SparkEvent::QueryStart {
            app_id: "a".into(),
            query_signature: 9,
            conf,
            plan_summary: vec![],
            embedding: vec![],
        }
    }

    fn end(elapsed: f64, rows: f64, tasks: usize, bc: usize) -> SparkEvent {
        SparkEvent::QueryEnd {
            app_id: "a".into(),
            query_signature: 9,
            metrics: QueryMetrics {
                elapsed_ms: elapsed,
                true_ms: elapsed,
                num_stages: 3,
                num_tasks: tasks,
                input_bytes: rows * 100.0,
                input_rows: rows,
                root_rows: 1.0,
                shuffle_bytes: 0.0,
                spilled_bytes: 0.0,
                broadcast_joins: bc,
                sort_merge_joins: 1 - bc.min(1),
            },
        }
    }

    fn feed(
        monitor: &mut QueryMonitor,
        conf: SparkConf,
        elapsed: f64,
        rows: f64,
        tasks: usize,
        bc: usize,
    ) {
        monitor.ingest(&start(conf));
        monitor.ingest(&end(elapsed, rows, tasks, bc));
    }

    #[test]
    fn records_accumulate_from_event_pairs() {
        let mut m = QueryMonitor::new();
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        feed(&mut m, SparkConf::default(), 90.0, 1e6, 50, 0);
        assert_eq!(m.records.len(), 2);
        assert_eq!(m.records[1].iteration, 1);
    }

    #[test]
    fn orphan_end_is_ignored() {
        let mut m = QueryMonitor::new();
        m.ingest(&end(100.0, 1.0, 1, 0));
        assert!(m.records.is_empty());
    }

    #[test]
    fn config_changes_are_detected_per_knob() {
        let mut m = QueryMonitor::new();
        let mut c2 = SparkConf::default();
        c2.shuffle_partitions = 400.0;
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        feed(&mut m, c2, 95.0, 1e6, 50, 0);
        let changes = m.config_changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, Knob::ShufflePartitions);
        assert_eq!(changes[0].2, 200.0);
        assert_eq!(changes[0].3, 400.0);
    }

    #[test]
    fn trend_detects_improvement_and_regression() {
        let mut improving = QueryMonitor::new();
        let mut regressing = QueryMonitor::new();
        for i in 0..10 {
            feed(
                &mut improving,
                SparkConf::default(),
                200.0 - 10.0 * i as f64,
                1e6,
                50,
                0,
            );
            feed(
                &mut regressing,
                SparkConf::default(),
                100.0 + 10.0 * i as f64,
                1e6,
                50,
                0,
            );
        }
        assert!(improving.trend().unwrap().improving);
        assert!(!regressing.trend().unwrap().improving);
        assert!(QueryMonitor::new().trend().is_none());
    }

    #[test]
    fn rca_attributes_data_size_first() {
        let mut m = QueryMonitor::new();
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        let mut c2 = SparkConf::default();
        c2.shuffle_partitions = 400.0; // conf also changed, but data doubled
        feed(&mut m, c2, 220.0, 2e6, 80, 0);
        assert!(matches!(
            m.rca(1),
            Some(RootCause::DataSizeChange { ratio }) if (ratio - 2.0).abs() < 1e-9
        ));
    }

    #[test]
    fn rca_attributes_plan_flip() {
        let mut m = QueryMonitor::new();
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        feed(&mut m, SparkConf::default(), 60.0, 1e6, 48, 1); // join went broadcast
        assert!(matches!(
            m.rca(1),
            Some(RootCause::PlanChange {
                broadcast_delta: 1,
                ..
            })
        ));
    }

    #[test]
    fn rca_attributes_config_change() {
        let mut m = QueryMonitor::new();
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        let mut c2 = SparkConf::default();
        c2.max_partition_bytes *= 2.0;
        feed(&mut m, c2, 95.0, 1.02e6, 52, 0);
        match m.rca(1) {
            Some(RootCause::ConfigChange { knobs }) => {
                assert_eq!(knobs.len(), 1);
                assert_eq!(knobs[0].0, Knob::MaxPartitionBytes);
            }
            other => panic!("expected ConfigChange, got {other:?}"),
        }
    }

    #[test]
    fn rca_falls_back_to_noise() {
        let mut m = QueryMonitor::new();
        feed(&mut m, SparkConf::default(), 100.0, 1e6, 50, 0);
        feed(&mut m, SparkConf::default(), 210.0, 1e6, 50, 0); // 2.1x, nothing changed
        assert_eq!(m.rca(1), Some(RootCause::LikelyNoiseOrExternal));
        assert_eq!(m.rca(0), None);
        assert_eq!(m.rca(99), None);
    }

    #[test]
    fn dashboard_routes_by_signature_and_renders() {
        let mut d = Dashboard::new();
        let mut events = Vec::new();
        for sig in [1u64, 2] {
            for i in 0..6 {
                events.push(SparkEvent::QueryStart {
                    app_id: "a".into(),
                    query_signature: sig,
                    conf: SparkConf::default(),
                    plan_summary: vec![],
                    embedding: vec![],
                });
                let elapsed = if sig == 1 {
                    100.0 - 5.0 * i as f64
                } else {
                    100.0 + 20.0 * i as f64
                };
                events.push(SparkEvent::QueryEnd {
                    app_id: "a".into(),
                    query_signature: sig,
                    metrics: QueryMetrics {
                        elapsed_ms: elapsed,
                        true_ms: elapsed,
                        num_stages: 1,
                        num_tasks: 10,
                        input_bytes: 1.0,
                        input_rows: 1.0,
                        root_rows: 1.0,
                        shuffle_bytes: 0.0,
                        spilled_bytes: 0.0,
                        broadcast_joins: 0,
                        sort_merge_joins: 0,
                    },
                });
            }
        }
        d.ingest(&events);
        assert_eq!(d.signatures(), vec![1, 2]);
        assert_eq!(d.regressing_signatures(), vec![2]);
        assert_eq!(d.counters().ingested_records, 12);
        assert_eq!(d.counters().tracked_signatures, 2);
        let text = d.render();
        assert!(text.contains("0000000000000001"));
        assert!(text.contains("regressing"));
    }

    #[test]
    fn quarantine_and_failure_counters_render() {
        let mut d = Dashboard::new();
        assert_eq!(d.counters(), DashboardCounters::default());
        d.record_quarantined(3);
        d.record_quarantined(2);
        d.record_failure(9);
        d.record_failure(9);
        let snap = d.counters();
        assert_eq!(snap.quarantined_lines, 5);
        assert_eq!(snap.failed_runs, 2);
        assert_eq!(snap.tracked_signatures, 1);
        assert_eq!(snap.ingested_records, 0);
        let text = d.render();
        assert!(text.contains("5 quarantined event-log lines"), "{text}");
        assert!(text.contains("2 failed runs"), "{text}");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
