#![forbid(unsafe_code)]

//! The Rockhopper offline/online pipeline (paper §4.2 and §5, Figure 7).
//!
//! - [`storage`] — the Autotune Backend's storage: per-application event folders,
//!   model files, the `app_cache`, capability tokens standing in for SAS URLs, and a
//!   Storage Manager retention sweep (GDPR cleanup).
//! - [`flighting`] — the offline experiment platform: execute open-source benchmark
//!   queries under sampled configurations and pools, emitting event logs.
//! - [`etl`] — the Embedding ETL streaming job: event logs → training rows.
//! - [`trainer`] — the ML training pipeline producing the per-region baseline model.
//! - [`service`] — the online phase: Autotune Client (config inference at query
//!   start) and Autotune Backend (model updates after completion) joined by
//!   crossbeam channels, mirroring the architecture in Figure 7.
//! - [`durability`] — the backend's durable-state layer: every state-mutating
//!   request is logged to a `rockdur` WAL before it is applied, with periodic
//!   compacted snapshots, so a crashed backend recovers bit-identically.
//! - [`sharding`] — the multi-tenant state engine: N signature-hash shards,
//!   each a full backend on its own worker thread with a split seed stream and
//!   a memory-bounded LRU over per-signature state (DESIGN.md §11).
//! - [`lru`] — the deterministic bounded LRU map the shards build on.
//!
//! Cold-start serving (DESIGN.md §12) plugs a `rockindex` retrieval index into
//! the backend: a cold Suggest with no tuner state consults the warm-signature
//! corpus and serves a transferred config tagged [`rockindex::Provenance`],
//! then hands off to the normal tuning loop when real reports arrive.

pub mod durability;
pub mod etl;
pub mod flighting;
pub mod lru;
pub mod monitor;
pub mod service;
pub mod sharding;
pub mod storage;
pub mod trainer;

pub use durability::{report_signatures, RecoveryReport, ReplayedOp};
pub use etl::TrainingRow;
pub use lru::LruMap;
pub use monitor::DashboardCounters;
pub use rockindex::{Corpus, CorpusEntry, KnnIndex, Provenance, TransferPolicy};
pub use service::{AutotuneBackend, AutotuneClient, AutotuneService, SuggestFallback};
pub use sharding::{shard_of, ShardedAutotuneClient, ShardedAutotuneService};
pub use storage::{AccessToken, Storage};

/// Errors surfaced by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A storage access was attempted with a token lacking the required rights.
    AccessDenied {
        /// The path that was touched.
        path: String,
    },
    /// The requested object does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// Not enough training rows to build a model.
    InsufficientData,
    /// The storage backend transiently refused the operation (injected fault or
    /// simulated outage); the caller may retry with backoff.
    Unavailable {
        /// The path that was touched.
        path: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::AccessDenied { path } => write!(f, "access denied: {path}"),
            PipelineError::NotFound { path } => write!(f, "not found: {path}"),
            PipelineError::InsufficientData => write!(f, "insufficient training data"),
            PipelineError::Unavailable { path } => write!(f, "transiently unavailable: {path}"),
        }
    }
}

impl std::error::Error for PipelineError {}
