//! Integration tests for the `rockhopper` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rockhopper"))
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("tune"));
    assert!(text.contains("flight"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = cli().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn list_names_both_benchmarks() {
    let out = cli().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tpch"));
    assert!(text.contains("tpcds"));
}

#[test]
fn tune_produces_a_recommendation() {
    let out = cli()
        .args([
            "tune", "--bench", "tpch", "--query", "6", "--sf", "0.5", "--iters", "8", "--noise",
            "none",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recommended configuration"));
    assert!(text.contains("spark.sql.shuffle.partitions"));
}

#[test]
fn tune_rejects_out_of_range_query() {
    let out = cli()
        .args(["tune", "--bench", "tpch", "--query", "99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--query must be"));
}

#[test]
fn flight_reports_row_counts() {
    let out = cli()
        .args(["flight", "--bench", "tpch", "--sf", "0.2", "--runs", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("flighting complete: 44 training rows"),
        "{text}"
    );
}

#[test]
fn compare_lists_all_three_tuners() {
    let out = cli()
        .args([
            "compare", "--bench", "tpcds", "--query", "24", "--sf", "0.5", "--iters", "6",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["rockhopper", "bayesopt", "flow2"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}
