//! Regenerates the paper's `fig15_16_customer_workloads` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig15_16_customer_workloads::run(scale).print();
}
