//! Workspace loader and symbol table.
//!
//! Loads every crate's sources in ONE walk (caching the [`MaskedSource`] and
//! parsed AST per file — the line rules, the config-space check, and the
//! semantic passes all reuse the same loaded data), then indexes items,
//! impls, use-aliases, and re-exports so paths can be resolved at the
//! type/path level instead of by substring.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::mask::MaskedSource;
use crate::parser::{parse_file, FnItem, Item, ItemKind, SourceFile, Type, UseBinding, Vis};
use crate::LintError;

/// One parsed crate source file.
pub struct LoadedFile {
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// Crate identifier (directory name with `-` normalized to `_`).
    pub krate: String,
    /// Module path from the file's location under `src/`.
    pub module: Vec<String>,
    pub text: String,
    pub masked: MaskedSource,
    pub ast: SourceFile,
}

/// A function or method known to the workspace.
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    pub krate: String,
    pub module: Vec<String>,
    /// `Some(type name)` for methods defined in an `impl` block.
    pub self_ty: Option<String>,
    /// `Some(trait path)` when defined in a trait impl.
    pub trait_impl: Option<String>,
    /// Declared inside a `trait` block (default or required method).
    pub trait_decl: bool,
    pub name: String,
    pub line: u32,
    pub vis: Vis,
    pub cfg_test: bool,
    pub item: FnItem,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeKind {
    Struct,
    Enum,
    Alias,
}

/// A nominal type (struct/enum/alias) known to the workspace.
pub struct TypeInfo {
    pub file: usize,
    pub krate: String,
    pub module: Vec<String>,
    pub name: String,
    pub line: u32,
    pub vis: Vis,
    pub cfg_test: bool,
    pub kind: TypeKind,
    pub fields: Vec<(String, Type)>,
    pub variants: Vec<String>,
    /// Alias target head name, for `type X = Y<..>`.
    pub alias_head: Option<String>,
}

/// Any named item, recorded for reference counting (dead-pub analysis).
pub struct ItemRec {
    pub file: usize,
    pub krate: String,
    pub name: String,
    pub line: u32,
    pub vis: Vis,
    pub cfg_test: bool,
    /// Method in an `impl Trait for ..` block or declared in a `trait`.
    pub trait_associated: bool,
    /// Human tag for messages: "fn", "struct", "enum", ...
    pub tag: &'static str,
}

/// Result of resolving a path in some module context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Workspace function candidates (indexes into [`Workspace::fns`]).
    Fns(Vec<usize>),
    /// A workspace type.
    Type(String),
    /// A path rooted in an external crate or `std`, fully alias-expanded.
    External(Vec<String>),
    Unknown,
}

/// Crate roots that are NOT part of this workspace.
const EXTERNAL_ROOTS: [&str; 12] = [
    "std",
    "core",
    "alloc",
    "rand",
    "rand_distr",
    "serde",
    "serde_json",
    "crossbeam",
    "crossbeam_channel",
    "parking_lot",
    "proptest",
    "criterion",
];

pub struct Workspace {
    pub root: PathBuf,
    files: Vec<LoadedFile>,
    fns: Vec<FnInfo>,
    types: Vec<TypeInfo>,
    items: Vec<ItemRec>,
    crate_names: BTreeSet<String>,
    /// `(krate, module_join)` of every module that exists.
    modules: BTreeSet<(String, String)>,
    /// `(krate, module_join)` → use bindings declared there.
    uses: BTreeMap<(String, String), Vec<UseBinding>>,
    /// `(krate, module_join, name)` → free fns with that name in that module.
    free_fns: BTreeMap<(String, String, String), Vec<usize>>,
    /// `(type name, method name)` → methods.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// fn name → all fns with that name anywhere.
    by_name: BTreeMap<String, Vec<usize>>,
    /// type name → index into `types` (first definition wins).
    type_by_name: BTreeMap<String, usize>,
    /// Identifier occurrence counts per file, crate sources first then
    /// reference-only files (tests/, examples/, benches/).
    counts: Vec<(PathBuf, BTreeMap<String, usize>)>,
}

impl Workspace {
    pub fn load(root: &Path) -> Result<Workspace, LintError> {
        let mut ws = Workspace {
            root: root.to_path_buf(),
            files: Vec::new(),
            fns: Vec::new(),
            types: Vec::new(),
            items: Vec::new(),
            crate_names: BTreeSet::new(),
            modules: BTreeSet::new(),
            uses: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            methods: BTreeMap::new(),
            by_name: BTreeMap::new(),
            type_by_name: BTreeMap::new(),
            counts: Vec::new(),
        };

        // Crate sources: crates/*/src/**/*.rs (tests/benches/examples inside
        // src/ are skipped by the walker below).
        let crates_dir = root.join("crates");
        for crate_dir in sorted_dirs(&crates_dir)? {
            let dir_name = file_name(&crate_dir);
            let krate = dir_name.replace('-', "_");
            let src = crate_dir.join("src");
            if src.is_dir() {
                ws.crate_names.insert(krate.clone());
                for file in rust_files(&src, true)? {
                    ws.load_file(root, &krate, &src, &file)?;
                }
            }
        }
        // Root package sources (src/), named after the root Cargo.toml.
        let root_src = root.join("src");
        if root_src.is_dir() {
            let krate = root_package_name(root);
            ws.crate_names.insert(krate.clone());
            for file in rust_files(&root_src, true)? {
                ws.load_file(root, &krate, &root_src, &file)?;
            }
        }

        // Index items from every loaded file.
        for idx in 0..ws.files.len() {
            let base_module = ws.files[idx].module.clone();
            let krate = ws.files[idx].krate.clone();
            // Every ancestor of the file module exists as a module.
            for k in 0..=base_module.len() {
                ws.modules
                    .insert((krate.clone(), base_module[..k].join("::")));
            }
            let ast = std::mem::take(&mut ws.files[idx].ast);
            ws.index_items(idx, &krate, &base_module, &ast.items, false);
            ws.files[idx].ast = ast;
        }

        // Identifier counts: crate sources first, then reference-only trees.
        for file in &ws.files {
            ws.counts
                .push((file.rel.clone(), ident_counts(&file.masked)));
        }
        for dir in reference_dirs(root)? {
            for file in rust_files(&dir, false)? {
                if file.components().any(|c| c.as_os_str() == "fixtures") {
                    continue;
                }
                let text = read(&file)?;
                let masked = MaskedSource::new(&text);
                let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
                ws.counts.push((rel, ident_counts(&masked)));
            }
        }

        Ok(ws)
    }

    fn load_file(
        &mut self,
        root: &Path,
        krate: &str,
        src: &Path,
        file: &Path,
    ) -> Result<(), LintError> {
        let text = read(file)?;
        let masked = MaskedSource::new(&text);
        let ast = parse_file(&text);
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        let module = module_path(src, file);
        self.files.push(LoadedFile {
            rel,
            krate: krate.to_string(),
            module,
            text,
            masked,
            ast,
        });
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn index_items(
        &mut self,
        file: usize,
        krate: &str,
        module: &[String],
        items: &[Item],
        in_trait_decl: bool,
    ) {
        for item in items {
            match &item.kind {
                ItemKind::Fn(f) => {
                    let fn_idx = self.fns.len();
                    self.fns.push(FnInfo {
                        file,
                        krate: krate.to_string(),
                        module: module.to_vec(),
                        self_ty: None,
                        trait_impl: None,
                        trait_decl: in_trait_decl,
                        name: item.name.clone(),
                        line: item.line,
                        vis: item.vis,
                        cfg_test: item.cfg_test,
                        item: f.clone(),
                    });
                    self.free_fns
                        .entry((krate.to_string(), module.join("::"), item.name.clone()))
                        .or_default()
                        .push(fn_idx);
                    self.by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(fn_idx);
                    self.push_item(file, krate, item, in_trait_decl, "fn");
                }
                ItemKind::Struct { fields } => {
                    self.push_type(
                        file,
                        krate,
                        module,
                        item,
                        TypeKind::Struct,
                        fields,
                        &[],
                        None,
                    );
                    self.push_item(file, krate, item, false, "struct");
                }
                ItemKind::Enum { variants } => {
                    let names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
                    self.push_type(file, krate, module, item, TypeKind::Enum, &[], &names, None);
                    self.push_item(file, krate, item, false, "enum");
                }
                ItemKind::TypeAlias { target } => {
                    self.push_type(
                        file,
                        krate,
                        module,
                        item,
                        TypeKind::Alias,
                        &[],
                        &[],
                        Some(target.head_name().to_string()),
                    );
                    self.push_item(file, krate, item, false, "type");
                }
                ItemKind::Impl(imp) => {
                    for sub in &imp.items {
                        if let ItemKind::Fn(f) = &sub.kind {
                            let fn_idx = self.fns.len();
                            self.fns.push(FnInfo {
                                file,
                                krate: krate.to_string(),
                                module: module.to_vec(),
                                self_ty: Some(imp.self_ty.clone()),
                                trait_impl: imp.trait_.clone(),
                                trait_decl: false,
                                name: sub.name.clone(),
                                line: sub.line,
                                vis: sub.vis,
                                cfg_test: item.cfg_test || sub.cfg_test,
                                item: f.clone(),
                            });
                            self.methods
                                .entry((imp.self_ty.clone(), sub.name.clone()))
                                .or_default()
                                .push(fn_idx);
                            self.by_name
                                .entry(sub.name.clone())
                                .or_default()
                                .push(fn_idx);
                            self.push_item(file, krate, sub, imp.trait_.is_some(), "fn");
                        } else {
                            // consts / type bindings inside impls
                            self.index_items(file, krate, module, std::slice::from_ref(sub), false);
                        }
                    }
                }
                ItemKind::Trait { items } => {
                    self.push_item(file, krate, item, false, "trait");
                    self.index_items(file, krate, module, items, true);
                }
                ItemKind::Mod { inline } => {
                    let mut sub_module = module.to_vec();
                    sub_module.push(item.name.clone());
                    self.modules
                        .insert((krate.to_string(), sub_module.join("::")));
                    if let Some(inner) = inline {
                        self.index_items(file, krate, &sub_module, inner, in_trait_decl);
                    }
                }
                ItemKind::Use { bindings } => {
                    self.uses
                        .entry((krate.to_string(), module.join("::")))
                        .or_default()
                        .extend(bindings.iter().cloned());
                }
                ItemKind::Const { .. } => {
                    self.push_item(file, krate, item, in_trait_decl, "const");
                }
                ItemKind::Static { .. } => {
                    self.push_item(file, krate, item, false, "static");
                }
                ItemKind::Other => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_type(
        &mut self,
        file: usize,
        krate: &str,
        module: &[String],
        item: &Item,
        kind: TypeKind,
        fields: &[crate::parser::Field],
        variants: &[String],
        alias_head: Option<String>,
    ) {
        let idx = self.types.len();
        self.types.push(TypeInfo {
            file,
            krate: krate.to_string(),
            module: module.to_vec(),
            name: item.name.clone(),
            line: item.line,
            vis: item.vis,
            cfg_test: item.cfg_test,
            kind,
            fields: fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect(),
            variants: variants.to_vec(),
            alias_head,
        });
        self.type_by_name.entry(item.name.clone()).or_insert(idx);
    }

    fn push_item(
        &mut self,
        file: usize,
        krate: &str,
        item: &Item,
        trait_associated: bool,
        tag: &'static str,
    ) {
        if item.name.is_empty() {
            return;
        }
        self.items.push(ItemRec {
            file,
            krate: krate.to_string(),
            name: item.name.clone(),
            line: item.line,
            vis: item.vis,
            cfg_test: item.cfg_test,
            trait_associated,
            tag,
        });
    }

    // ---- accessors ----

    pub fn files(&self) -> &[LoadedFile] {
        &self.files
    }

    pub fn fns(&self) -> &[FnInfo] {
        &self.fns
    }

    pub fn item_records(&self) -> &[ItemRec] {
        &self.items
    }

    pub fn types(&self) -> &[TypeInfo] {
        &self.types
    }

    pub fn crate_names(&self) -> &BTreeSet<String> {
        &self.crate_names
    }

    pub fn type_named(&self, name: &str) -> Option<&TypeInfo> {
        self.type_by_name.get(name).map(|&i| &self.types[i])
    }

    /// Methods named `name` on type `ty` (following one alias hop).
    pub fn methods_of(&self, ty: &str, name: &str) -> Vec<usize> {
        if let Some(v) = self.methods.get(&(ty.to_string(), name.to_string())) {
            return v.clone();
        }
        if let Some(info) = self.type_named(ty) {
            if let Some(head) = &info.alias_head {
                if head != ty {
                    return self.methods_of(head, name);
                }
            }
        }
        Vec::new()
    }

    /// Names of all inherent/impl methods declared on `ty`.
    pub fn method_names_of(&self, ty: &str) -> Vec<String> {
        self.methods
            .keys()
            .filter(|(t, _)| t == ty)
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// All methods with this name on ANY workspace type.
    pub fn methods_named(&self, name: &str) -> Vec<usize> {
        self.methods
            .iter()
            .filter(|((_, m), _)| m == name)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn field_type(&self, ty: &str, field: &str) -> Option<&Type> {
        let info = self.type_named(ty)?;
        info.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
    }

    /// How many distinct FILES (other than `defining_file`) reference `name`
    /// as an identifier token. Counts cover all crate sources plus tests/,
    /// examples/, and benches/ trees.
    pub fn external_references(&self, name: &str, defining_rel: &Path) -> usize {
        self.counts
            .iter()
            .filter(|(rel, counts)| rel != defining_rel && counts.contains_key(name))
            .count()
    }

    /// How often `name` occurs inside its own defining file.
    pub fn internal_references(&self, name: &str, defining_rel: &Path) -> usize {
        self.counts
            .iter()
            .find(|(rel, _)| rel == defining_rel)
            .and_then(|(_, counts)| counts.get(name).copied())
            .unwrap_or(0)
    }

    // ---- path resolution ----

    /// Resolve a (possibly aliased, possibly re-exported) path as seen from
    /// `module` of `krate`.
    pub fn resolve(&self, krate: &str, module: &[String], segs: &[String]) -> Target {
        self.resolve_inner(krate, module, segs, 8)
    }

    fn resolve_inner(&self, krate: &str, module: &[String], segs: &[String], fuel: u32) -> Target {
        if fuel == 0 || segs.is_empty() {
            return Target::Unknown;
        }
        let krate = krate.to_string();
        let mut module = module.to_vec();
        let mut segs = segs.to_vec();

        // Leading `crate` / `self` / `super` normalization.
        loop {
            match segs.first().map(String::as_str) {
                Some("crate") => {
                    module.clear();
                    segs.remove(0);
                }
                Some("self") => {
                    segs.remove(0);
                }
                Some("super") => {
                    module.pop();
                    segs.remove(0);
                }
                _ => break,
            }
            if segs.is_empty() {
                return Target::Unknown;
            }
        }

        let head = segs[0].clone();

        // External crate root: the path is fully expanded already.
        if EXTERNAL_ROOTS.contains(&head.as_str()) {
            return Target::External(segs);
        }

        // Another workspace crate: jump to its root module.
        if segs.len() > 1 && self.crate_names.contains(&head) && head != krate {
            return self.resolve_inner(&head, &[], &segs[1..], fuel - 1);
        }

        let mod_key = (krate.clone(), module.join("::"));

        // Item defined in this module.
        if let Some(fns) = self
            .free_fns
            .get(&(krate.clone(), module.join("::"), head.clone()))
        {
            if segs.len() == 1 {
                return Target::Fns(fns.clone());
            }
        }
        if let Some(info) = self.type_in_module(&krate, &module, &head) {
            if segs.len() == 1 {
                return Target::Type(info.name.clone());
            }
            if segs.len() == 2 {
                let methods = self.methods_of(&info.name, &segs[1]);
                if !methods.is_empty() {
                    return Target::Fns(methods);
                }
                return Target::Type(info.name.clone());
            }
        }

        // `use` alias declared in this module.
        if let Some(bindings) = self.uses.get(&mod_key) {
            for b in bindings {
                if b.alias == head {
                    let mut expanded = b.path.clone();
                    expanded.extend(segs[1..].iter().cloned());
                    let t = self.resolve_inner(&krate, &module, &expanded, fuel - 1);
                    if t != Target::Unknown {
                        return t;
                    }
                }
            }
        }

        // Child module descent.
        let mut child = module.clone();
        child.push(head.clone());
        if segs.len() > 1 && self.modules.contains(&(krate.clone(), child.join("::"))) {
            let t = self.resolve_inner(&krate, &child, &segs[1..], fuel - 1);
            if t != Target::Unknown {
                return t;
            }
        }

        // Glob imports: try each `use x::*` prefix.
        if let Some(bindings) = self.uses.get(&mod_key) {
            for b in bindings {
                if b.alias == "*" {
                    let mut expanded = b.path.clone();
                    expanded.extend(segs.iter().cloned());
                    let t = self.resolve_inner(&krate, &module, &expanded, fuel - 1);
                    if t != Target::Unknown {
                        return t;
                    }
                }
            }
        }

        // Crate-root retry (items referenced from a submodule without `crate::`
        // when the surrounding file was reached through re-exports).
        if !module.is_empty() {
            let t = self.resolve_inner(&krate, &[], &segs, fuel - 1);
            if t != Target::Unknown {
                return t;
            }
        }

        // Global fallbacks — acceptable under-approximation for a lint.
        if segs.len() == 2 {
            if self.type_by_name.contains_key(&head) {
                let methods = self.methods_of(&head, &segs[1]);
                if !methods.is_empty() {
                    return Target::Fns(methods);
                }
                return Target::Type(head);
            }
        } else if segs.len() == 1 {
            if let Some(fns) = self.by_name.get(&head) {
                let free: Vec<usize> = fns
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].self_ty.is_none())
                    .collect();
                if free.len() == 1 {
                    return Target::Fns(free);
                }
            }
        }

        Target::Unknown
    }

    fn type_in_module(&self, krate: &str, module: &[String], name: &str) -> Option<&TypeInfo> {
        self.types
            .iter()
            .find(|t| t.krate == krate && t.module == module && t.name == name)
    }
}

// ---- filesystem helpers ----

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("")
        .to_string()
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut dirs = Vec::new();
    if !dir.is_dir() {
        return Ok(dirs);
    }
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir` recursively, sorted. With `skip_test_dirs`,
/// `tests/`, `benches/`, `examples/` subtrees are excluded (crate `src/`
/// walks); without, everything is included (reference-only walks).
fn rust_files(dir: &Path, skip_test_dirs: bool) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current).map_err(|source| LintError::Io {
            path: current.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError::Io {
                path: current.clone(),
                source,
            })?;
            let path = entry.path();
            if path.is_dir() {
                let name = file_name(&path);
                if !(skip_test_dirs && matches!(name.as_str(), "tests" | "benches" | "examples")) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Directories whose files count as "references" for dead-pub analysis but
/// are not themselves linted or indexed: integration tests, examples, benches.
fn reference_dirs(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut dirs = Vec::new();
    for name in ["tests", "examples", "benches"] {
        let d = root.join(name);
        if d.is_dir() {
            dirs.push(d);
        }
    }
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        for name in ["tests", "examples", "benches"] {
            let d = crate_dir.join(name);
            if d.is_dir() {
                dirs.push(d);
            }
        }
    }
    Ok(dirs)
}

/// Module path of `file` relative to the crate source root: `lib.rs`,
/// `main.rs`, and `mod.rs` map to their directory; `foo.rs` maps to `foo`.
fn module_path(src: &Path, file: &Path) -> Vec<String> {
    let rel = file.strip_prefix(src).unwrap_or(file);
    let mut module: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = module.pop() {
        let stem = last.trim_end_matches(".rs");
        if !matches!(stem, "lib" | "main" | "mod") {
            module.push(stem.to_string());
        }
    }
    module
}

/// Count identifier occurrences over the masked source (comments and string
/// contents excluded, so a name in prose doesn't count as a reference).
fn ident_counts(masked: &MaskedSource) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for line in &masked.masked_lines {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if c == b'_' || c.is_ascii_alphabetic() {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &line[start..i];
                *counts.entry(word.to_string()).or_insert(0) += 1;
            } else {
                i += 1;
            }
        }
    }
    counts
}

/// Root package crate identifier from `Cargo.toml` (fallback: `"root"`).
fn root_package_name(root: &Path) -> String {
    let manifest = root.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
                continue;
            }
            if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(rest) = rest.strip_prefix('=') {
                        let v = rest.trim().trim_matches('"');
                        if !v.is_empty() {
                            return v.replace('-', "_");
                        }
                    }
                }
            }
        }
    }
    "root".to_string()
}
