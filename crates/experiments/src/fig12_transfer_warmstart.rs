//! **Figure 12**: Contextual BO warm-started with baseline models trained on 100,
//! 500 and 1000 benchmark samples (leave-target-out). The paper finds 500 samples
//! best (~15% gain), 1000 over-constrained (~7%), insufficient samples worst —
//! convergence measured as speedup over the manually-tuned reference configuration.

use optimizers::cbo::ContextualBO;
use optimizers::env::Environment;
use optimizers::space::ConfigSpace;
use optimizers::tuner::Tuner;
use pipeline::flighting::{run_flight, Benchmark, FlightPlan, PoolId, Strategy};
use pipeline::storage::Storage;
use pipeline::trainer::subsample;
use pipeline::TrainingRow;
use sparksim::noise::NoiseSpec;

use crate::harness::{best_so_far, write_csv, Scale, Summary};

/// Baseline sample sizes swept by the paper.
pub const SAMPLE_SIZES: [usize; 3] = [100, 500, 1000];

/// Target queries tuned (TPC-DS-style; the baseline is trained on the others).
pub const TARGETS: [usize; 4] = [1, 6, 13, 20];

/// Collect the V0-style pre-recorded sweep: ≥275 configurations per query across the
/// whole benchmark.
fn collect_rows(sf: f64, runs_per_query: usize, seed: u64) -> Vec<TrainingRow> {
    let plan = FlightPlan {
        benchmark: Benchmark::TpcDs,
        // Pinned to the original 24 templates so recorded results stay stable as the
        // workloads crate grows.
        queries: (1..=24).collect(),
        scale_factor: sf,
        runs_per_query,
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        // Flighting runs on the same shared cloud as production: its observations
        // carry real noise, which is what makes over-large baselines entrench wrong
        // beliefs (the paper's "additional samples reduce adaptability").
        noise: NoiseSpec::high(),
        seed,
    };
    run_flight(&plan, &ConfigSpace::query_level(), &Storage::new())
}

/// Run the warm-start sweep.
pub fn run(scale: Scale) -> Summary {
    let sf = match scale {
        Scale::Full => 10.0,
        Scale::Quick => 1.0,
    };
    let runs_per_query = scale.pick(50, 6); // 50 × 24 queries = 1200 rows available
    let iters = scale.pick(30, 8);
    let all_rows = collect_rows(sf, runs_per_query, 12);

    let mut summary = Summary::new("fig12_transfer_warmstart");
    let mut csv = Vec::new();
    let mut final_speedups: Vec<(usize, f64)> = Vec::new();

    let seeds_per_arm = scale.pick(3, 1);
    for &n_samples in &SAMPLE_SIZES {
        let mut per_iter_speedup = vec![0.0; iters];
        let runs = (TARGETS.len() * seeds_per_arm) as f64;
        for (ti, &target) in TARGETS.iter().enumerate() {
            let target_sig = embedding::query_signature(&workloads::tpcds::query(target, sf));
            // Leave-target-out baseline, capped at n_samples rows.
            let other: Vec<TrainingRow> = all_rows
                .iter()
                .filter(|r| r.signature != target_sig)
                .cloned()
                .collect();
            let baseline = subsample(&other, n_samples);

            // The V0 platform: ≥275 pre-recorded configurations per query; tuning
            // snaps to the recording and replays cached results (no live execution).
            let space = ConfigSpace::query_level();
            let plan = workloads::tpcds::query(target, sf);
            let sim = sparksim::simulator::Simulator::default_pool(NoiseSpec::low());
            for rep in 0..seeds_per_arm as u64 {
                let mut env = optimizers::env::CachedEnv::record(
                    &plan,
                    &sim,
                    &space,
                    space.grid(7), // 343 ≥ the paper's 275 combinations
                    &embedding::WorkloadEmbedder::virtual_ops(),
                    300 + ti as u64 + rep * 97,
                );
                let mut cbo = ContextualBO::new(space.clone(), 400 + ti as u64 + rep * 31);
                for r in &baseline {
                    cbo.add_baseline_row(&r.embedding, &r.point_in(&space), r.elapsed_ms);
                }
                // Reference: the default configuration ("manual tuning" reference).
                let reference = env.true_time(&space.default_point());
                let mut trace = Vec::with_capacity(iters);
                for _ in 0..iters {
                    let p = cbo.suggest(&env.context());
                    let snapped = env.snapped(&p).to_vec();
                    trace.push(env.true_time(&snapped));
                    let o = env.run(&snapped);
                    cbo.observe(&snapped, &o);
                }
                for (t, v) in best_so_far(&trace).iter().enumerate() {
                    per_iter_speedup[t] += reference / v / runs;
                }
            }
        }
        for (t, s) in per_iter_speedup.iter().enumerate() {
            csv.push(vec![n_samples as f64, t as f64, *s]);
        }
        let final_s = *per_iter_speedup.last().expect("non-empty trace");
        final_speedups.push((n_samples, final_s));
        summary.row(
            &format!("baseline n={n_samples}: final mean speedup"),
            format!("{final_s:.3}x"),
        );
    }
    let best = final_speedups
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    summary.row("best sample size", best.0);
    summary.row(
        "paper expectation",
        "moderate sample counts (≈500) transfer best; more samples over-constrain",
    );
    summary.files.push(write_csv(
        "fig12_transfer_warmstart",
        "baseline_samples,iteration,mean_speedup",
        &csv,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmstarted_cbo_improves_over_default() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        // At least one arm must end at speedup ≥ 1 (never worse than reference,
        // since best-so-far includes whatever the search found).
        let any_good = s.rows.iter().any(|(k, v)| {
            k.contains("final mean speedup")
                && v.trim_end_matches('x')
                    .parse::<f64>()
                    .map(|x| x >= 0.95)
                    .unwrap_or(false)
        });
        assert!(any_good, "rows: {:?}", s.rows);
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
