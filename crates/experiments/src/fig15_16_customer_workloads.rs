//! **Figures 15–16 + §6.3**: customer-workload deployment, reproduced over the
//! generated notebook population. Each query signature is tuned through the full
//! backend service path (suggest → simulate → event log → ingest) for ≥30
//! iterations. Reported: the speed-up distribution vs the default configuration,
//! the mean improvement (paper: ≈17–20%), and how many signatures the conservative
//! guardrail disables (paper: only 73/416 survive all iterations).

use std::sync::Arc;

use optimizers::env::{Environment, QueryEnv};
use pipeline::service::AutotuneBackend;
use pipeline::storage::Storage;

use crate::harness::{write_csv, Scale, Summary};
use workloads::notebook::{generate_population, PopulationConfig};

/// Per-signature outcome.
#[derive(Debug, Clone)]
pub struct SignatureOutcome {
    /// The signature id.
    pub signature: u64,
    /// Percent speed-up of the final window vs the default configuration.
    pub speedup_pct: f64,
    /// Whether the guardrail disabled this signature.
    pub disabled: bool,
}

/// Drive the whole population through the backend; returns per-signature outcomes.
/// `guardrail` selects the policy (the production deployment runs an "extremely
/// conservative" one; `None` uses the repository default).
pub fn simulate_population(
    scale: Scale,
    seed: u64,
    guardrail: Option<rockhopper::Guardrail>,
) -> Vec<SignatureOutcome> {
    let pop_cfg = PopulationConfig {
        notebooks: scale.pick(60, 6),
        ..PopulationConfig::default()
    };
    let iters = scale.pick(40, 10);
    let population = generate_population(&pop_cfg, seed);
    let mut backend = AutotuneBackend::new(Arc::new(Storage::new()), None, seed);
    if let Some(g) = guardrail {
        backend = backend.with_guardrail_policy(Some(g));
    }
    let mut outcomes = Vec::new();

    for nb in &population {
        let user = format!("customer-{}", nb.artifact_id);
        for q in &nb.queries {
            let mut env = QueryEnv::new(
                q.plan.clone(),
                q.noise,
                q.schedule.clone(),
                seed ^ q.signature,
            );
            let space = env.space().clone();
            let mut final_ratio_sum = 0.0;
            let mut final_count = 0usize;
            for t in 0..iters {
                let ctx = env.context();
                let point = backend.suggest(&user, q.signature, &ctx);
                let default_ms = env.true_time(&space.default_point());
                let tuned_ms = env.true_time(&point);
                if t >= iters.saturating_sub(5) {
                    final_ratio_sum += default_ms / tuned_ms;
                    final_count += 1;
                }
                let conf = space.to_conf(&point);
                let plan = env.plan.clone().scaled(q.schedule.size_at(t as u32));
                let run = env.sim.execute(&plan, &conf, seed ^ q.signature ^ t as u64);
                let app_id = format!("{}-run{t}", nb.artifact_id);
                let events = env.sim.events_for_run(
                    &app_id,
                    &nb.artifact_id,
                    q.signature,
                    &plan,
                    &conf,
                    ctx.embedding.clone(),
                    &run,
                );
                backend.ingest(&user, &app_id, &events);
                // Keep env's iteration counter in lockstep with the service loop.
                let _ = env.run(&point);
            }
            let speedup = final_ratio_sum / final_count.max(1) as f64;
            outcomes.push(SignatureOutcome {
                signature: q.signature,
                speedup_pct: 100.0 * (speedup - 1.0),
                disabled: backend.is_disabled(&user, q.signature),
            });
        }
        // App-level pre-compute after each application completes, with the expected
        // data size forecast from the queries' own histories.
        let sigs: Vec<u64> = nb.queries.iter().map(|q| q.signature).collect();
        backend.update_app_cache_forecast(&user, &nb.artifact_id, &sigs);
    }
    outcomes
}

/// Run the deployment reproduction.
pub fn run(scale: Scale) -> Summary {
    let outcomes = simulate_population(scale, 1516, None);
    let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup_pct).collect();
    let disabled = outcomes.iter().filter(|o| o.disabled).count();
    let improved = outcomes.iter().filter(|o| o.speedup_pct > 0.0).count();

    let mut summary = Summary::new("fig15_16_customer_workloads");
    summary.row("query signatures", outcomes.len());
    summary.row(
        "mean speed-up vs default",
        format!("{:.1}% (paper: ≈17–20%)", ml::stats::mean(&speedups)),
    );
    summary.row(
        "median speed-up",
        format!(
            "{:.1}%",
            ml::stats::median(&speedups).expect("population is non-empty")
        ),
    );
    summary.row(
        "signatures improved",
        format!("{improved}/{}", outcomes.len()),
    );
    summary.row(
        "guardrail disabled (default policy)",
        format!("{disabled}/{} signatures", outcomes.len()),
    );
    // The paper's production policy is "extremely conservative": it only keeps
    // autotuning when performance clearly improves, disabling most signatures
    // (73/416 survived all iterations). Reproduce that regime with a hair-trigger
    // guardrail.
    let conservative =
        simulate_population(scale, 1516, Some(rockhopper::Guardrail::new(10, 0.02, 1)));
    let cons_disabled = conservative.iter().filter(|o| o.disabled).count();
    let survivors = conservative.len() - cons_disabled;
    summary.row(
        "guardrail disabled (conservative policy)",
        format!(
            "{cons_disabled}/{} signatures ({survivors} survive; paper: 73/416 survive)",
            conservative.len()
        ),
    );
    let cons_speedups: Vec<f64> = conservative.iter().map(|o| o.speedup_pct).collect();
    summary.row(
        "mean speed-up under conservative policy",
        format!("{:.1}%", ml::stats::mean(&cons_speedups)),
    );
    for q in [5.0, 25.0, 50.0, 75.0, 95.0] {
        summary.row(
            &format!("speed-up P{q:.0}"),
            format!(
                "{:.1}%",
                ml::stats::percentile(&speedups, q).expect("population is non-empty")
            ),
        );
    }
    let rows: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.signature as f64,
                o.speedup_pct,
                if o.disabled { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    summary.files.push(write_csv(
        "fig15_16_customer_workloads",
        "signature,speedup_pct,guardrail_disabled",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_simulation_yields_positive_median() {
        let outcomes = simulate_population(Scale::Quick, 9, None);
        assert!(!outcomes.is_empty());
        let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup_pct).collect();
        // Tuning should help at least half the signatures even in the quick run.
        let median = ml::stats::median(&speedups).expect("population is non-empty");
        assert!(median > -5.0, "median speed-up {median:.1}%");
    }

    #[test]
    fn conservative_policy_disables_more_signatures() {
        let default_pol = simulate_population(Scale::Quick, 9, None);
        let conservative = simulate_population(
            Scale::Quick,
            9,
            Some(rockhopper::Guardrail::new(3, 0.01, 1)),
        );
        let d1 = default_pol.iter().filter(|o| o.disabled).count();
        let d2 = conservative.iter().filter(|o| o.disabled).count();
        assert!(
            d2 >= d1,
            "conservative {d2} should disable at least default {d1}"
        );
    }
}
