//! The ML training pipeline (§4.2): flighting rows in, a per-region baseline model
//! out, plus the per-signature fine-tuning data split that enforces the paper's
//! privacy rule ("models are trained exclusively with baseline data and query traces
//! originating from the same user and query signature").

use optimizers::space::ConfigSpace;
use rockhopper::baseline::{BaselineModel, BaselineRow};

use crate::etl::TrainingRow;
use crate::PipelineError;

/// Train the region baseline model from flighting rows.
///
/// `exclude_signature` implements the leave-target-out protocol of the paper's
/// transfer-learning experiment (§6.2: "trained on data sampled from all queries
/// except the optimization target").
pub fn train_baseline(
    space: &ConfigSpace,
    rows: &[TrainingRow],
    exclude_signature: Option<u64>,
    seed: u64,
) -> Result<BaselineModel, PipelineError> {
    let baseline_rows: Vec<BaselineRow> = rows
        .iter()
        .filter(|r| Some(r.signature) != exclude_signature)
        .map(|r| r.to_baseline_row(space))
        .collect();
    BaselineModel::train(space, &baseline_rows, seed).ok_or(PipelineError::InsufficientData)
}

/// Split rows into (same signature, everything else) — the fine-tune/transfer split.
// rhlint:allow(dead-pub): per-signature training split for workload-drift experiments
pub fn split_by_signature(
    rows: &[TrainingRow],
    signature: u64,
) -> (Vec<TrainingRow>, Vec<TrainingRow>) {
    let (own, other): (Vec<_>, Vec<_>) =
        rows.iter().cloned().partition(|r| r.signature == signature);
    (own, other)
}

/// Cap the training set at `n` rows, keeping a deterministic stratified subsample
/// (every k-th row). The paper's Figure 12 sweeps baseline sample sizes 100/500/1000.
pub fn subsample(rows: &[TrainingRow], n: usize) -> Vec<TrainingRow> {
    if rows.len() <= n || n == 0 {
        return rows.to_vec();
    }
    let stride = rows.len() as f64 / n as f64;
    (0..n)
        .map(|i| rows[(i as f64 * stride).floor() as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::config::SparkConf;

    fn rows(n: usize, sigs: &[u64]) -> Vec<TrainingRow> {
        (0..n)
            .map(|i| {
                let mut conf = SparkConf::default();
                conf.shuffle_partitions = 8.0 + (i % 50) as f64 * 10.0;
                TrainingRow {
                    signature: sigs[i % sigs.len()],
                    embedding: vec![i as f64 % 3.0, 1.0],
                    conf,
                    data_size: 1.0 + (i % 4) as f64,
                    elapsed_ms: 100.0 + (i % 50) as f64,
                }
            })
            .collect()
    }

    #[test]
    fn trains_a_model_from_rows() {
        let space = ConfigSpace::query_level();
        let m = train_baseline(&space, &rows(60, &[1, 2, 3]), None, 0).unwrap();
        assert!(m.predict_ms(&[1.0, 1.0], &space.default_point(), 1.0) > 0.0);
    }

    #[test]
    fn leave_target_out_excludes_the_signature() {
        let space = ConfigSpace::query_level();
        // Only signature 1 exists: excluding it leaves nothing to train on.
        let r = train_baseline(&space, &rows(20, &[1]), Some(1), 0);
        assert!(matches!(r, Err(PipelineError::InsufficientData)));
    }

    #[test]
    fn split_partitions_rows() {
        let all = rows(30, &[1, 2, 3]);
        let (own, other) = split_by_signature(&all, 2);
        assert_eq!(own.len(), 10);
        assert_eq!(other.len(), 20);
        assert!(own.iter().all(|r| r.signature == 2));
        assert!(other.iter().all(|r| r.signature != 2));
    }

    #[test]
    fn subsample_caps_and_preserves_order() {
        // Rows whose elapsed encodes their index, so order is checkable directly.
        let all: Vec<TrainingRow> = (0..100)
            .map(|i| TrainingRow {
                signature: 1,
                embedding: vec![0.0],
                conf: SparkConf::default(),
                data_size: 1.0,
                elapsed_ms: i as f64,
            })
            .collect();
        let s = subsample(&all, 10);
        assert_eq!(s.len(), 10);
        let idx: Vec<f64> = s.iter().map(|r| r.elapsed_ms).collect();
        let mut sorted = idx.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(idx, sorted, "subsample must preserve row order");
        // No-op when already small enough.
        assert_eq!(subsample(&all, 200).len(), 100);
    }
}
