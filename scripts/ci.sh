#!/usr/bin/env bash
# Full CI pass, in the order that fails fastest:
#   formatting → static analysis (rhlint) → release build → tests (serial and
#   8-wide pools — DESIGN.md §7 says the results must be identical) → the
#   parallel-scaling benchmark (BENCH_parallel.json is the uploadable
#   artifact) → serving load-gen smoke (BENCH_serve.json) → chaos smoke.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> rhlint check (SARIF artifact: rhlint.sarif)"
# Write the SARIF artifact first so it exists even when violations fail the
# gate below. Exit 1 (violations) is tolerated here; exit 2 (engine error)
# still aborts — a linter that could not run must not produce an artifact.
cargo run -q -p rhlint -- check --format sarif > rhlint.sarif || [ $? -eq 1 ]
cargo run -q -p rhlint -- check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (RH_THREADS=1)"
RH_THREADS=1 cargo test -q --workspace

echo "==> cargo test (RH_THREADS=8)"
RH_THREADS=8 cargo test -q --workspace

echo "==> parallel-scaling bench (BENCH_parallel.json)"
cargo run -q --release -p bench -- --quick

echo "==> serving load-gen smoke (BENCH_serve.json)"
cargo run -q --release -p bench --bin serve_loadgen -- --quick

echo "==> sharded serving smoke (4 shards → BENCH_serve_sharded.json)"
cargo run -q --release -p bench --bin serve_loadgen -- --quick --shards 4 \
  --out BENCH_serve_sharded.json

echo "==> cold-start retrieval smoke (prebuilt corpus → BENCH_serve_coldstart.json)"
cargo run -q --release -p bench --bin serve_loadgen -- --cold-start \
  --out BENCH_serve_coldstart.json

echo "==> chaos smoke (fault injection)"
cargo run -q --release -p experiments --bin exp_fault_injection -- --quick

echo "==> kill-and-recover smoke (durable serving state → recovery.log)"
scripts/kill_recover_smoke.sh

echo "==> sharded kill-and-recover smoke (4 shards → recovery-shards4.log)"
scripts/kill_recover_smoke.sh 4

echo "CI: all green"
