//! Cost-model constants. One place to see (and tune) every throughput and overhead the
//! simulator assumes. Values are loosely calibrated to commodity cloud nodes; absolute
//! numbers do not matter for the reproduction — only the induced response-surface
//! *shape* does (see DESIGN.md §1).

use serde::{Deserialize, Serialize};

/// All cost constants used by [`crate::scheduler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// CPU nanoseconds per row for a plain scan; other operators are expressed as
    /// multiples of this via [`CostParams::op_weight`].
    pub cpu_ns_per_row: f64,
    /// Extra CPU ns per row·log2(rows) for sorting.
    pub sort_ns_per_row_log: f64,
    /// Cold-storage scan throughput, bytes/s per task.
    pub scan_bps: f64,
    /// Shuffle write throughput, bytes/s per task.
    pub shuffle_write_bps: f64,
    /// Shuffle read throughput, bytes/s per task.
    pub shuffle_read_bps: f64,
    /// Local-disk spill throughput (write + re-read accounted separately), bytes/s.
    pub spill_bps: f64,
    /// Broadcast distribution throughput, bytes/s.
    pub broadcast_bps: f64,
    /// Fixed per-task overhead (scheduling, serialization), milliseconds.
    pub task_overhead_ms: f64,
    /// Fixed per-stage overhead (stage submission, DAG bookkeeping), milliseconds.
    pub stage_overhead_ms: f64,
    /// Straggler tail: the final wave of a stage runs this fraction longer.
    pub skew_tail: f64,
    /// GC drag per 64 GiB of heap: CPU time is multiplied by `1 + gc_per_64g · heap/64GiB`.
    pub gc_per_64g: f64,
    /// Fraction of executor heap usable for execution (Spark's `spark.memory.fraction`).
    pub exec_memory_fraction: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_ns_per_row: 120.0,
            sort_ns_per_row_log: 25.0,
            scan_bps: 300e6,
            shuffle_write_bps: 150e6,
            shuffle_read_bps: 200e6,
            spill_bps: 120e6,
            broadcast_bps: 400e6,
            task_overhead_ms: 40.0,
            stage_overhead_ms: 120.0,
            skew_tail: 0.35,
            gc_per_64g: 0.25,
            exec_memory_fraction: 0.6,
        }
    }
}

impl CostParams {
    /// Relative CPU weight of each operator type (cost per row as a multiple of the
    /// scan cost).
    pub fn op_weight(op_type: &str) -> f64 {
        match op_type {
            "TableScan" => 1.0,
            "Filter" => 0.25,
            "Project" => 0.15,
            "HashAggregate" => 1.6,
            "Join" => 1.2,
            "Sort" => 0.0, // costed separately via sort_ns_per_row_log
            "Limit" => 0.05,
            "Union" => 0.05,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let c = CostParams::default();
        assert!(c.cpu_ns_per_row > 0.0);
        assert!(c.scan_bps > c.spill_bps, "scans should outpace spills");
        assert!(c.exec_memory_fraction > 0.0 && c.exec_memory_fraction < 1.0);
        assert!(c.task_overhead_ms < c.stage_overhead_ms);
    }

    #[test]
    fn aggregate_costs_more_than_filter() {
        assert!(CostParams::op_weight("HashAggregate") > CostParams::op_weight("Filter"));
    }

    #[test]
    fn unknown_operator_defaults_to_scan_weight() {
        assert_eq!(CostParams::op_weight("Exotic"), 1.0);
    }
}
