//! Interprocedural interval (value-range) analysis — RH028.
//!
//! An interval lattice over the numeric locals of every lowered function
//! ([`crate::lower`]): each variable maps to a `[lo, hi]` over-approximation
//! of its runtime value. Transfer functions cover constants, arithmetic
//! (with constant folding already done by the lowerer), `clamp`/`min`/`max`,
//! saturating/checked ops, and comparison-guarded branches
//! ([`Event::Assume`] facts placed by the lowerer on both arms of every
//! `if`/`while`). Callee return intervals propagate caller-ward via the
//! `#ret` pseudo-variable, summarized over a few rounds like
//! `locks::summarize`.
//!
//! Approximation stance:
//!
//! * Unknown values are `(-inf, +inf)` (TOP) and stay silent — RH028 only
//!   fires when an interval is *finite on both ends* and provably escapes
//!   the declared bounds, so "don't know" never reports.
//! * Strict `<`/`>` assumes are relaxed to `<=`/`>=`: intervals over `f64`
//!   cannot represent open endpoints, and the relaxation only widens.
//! * Joins at merge points intersect key sets (a variable bound on only one
//!   path is TOP after the merge) and hull the intervals; loop-carried
//!   growth is widened to ±inf by the solver after a few joins.
//!
//! The rule itself compares two things against the declared `SearchSpace`
//! bounds (the `Dim { knob, lo, hi, default }` literals in
//! `optimizers/src/space.rs`, const-evaluated workspace-wide):
//!
//! 1. Every `Dim` literal's own `default` must lie inside its `[lo, hi]`.
//! 2. Every `conf.set(Knob::K, v)` in a scoped crate where `v`'s derived
//!    interval is finite and **not contained** in the hull of `K`'s declared
//!    bounds.
//!
//! The pass also exports the interval of every sink argument
//! ([`SinkRanges`]) so the taint pass can use zero-exclusion evidence for
//! RH030 (`x % n` after `n` was assigned `v.max(1)` is fine even though `n`
//! is tainted).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::cfg::{CmpOp, Event, Operand, SinkKind, VRhs};
use crate::dataflow::{forward_env, EnvLattice};
use crate::locks::concurrency_scoped;
use crate::lower::{const_eval, const_map, for_each_expr_in_block, FnModel};
use crate::parser::Expr;
use crate::symbols::Workspace;
use crate::{Diagnostic, Rule};

/// A closed interval over `f64`. `TOP` is `(-inf, +inf)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Interval {
    pub(crate) lo: f64,
    pub(crate) hi: f64,
}

pub(crate) const TOP: Interval = Interval {
    lo: f64::NEG_INFINITY,
    hi: f64::INFINITY,
};

impl Interval {
    fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `None` when the intersection is empty (an infeasible path).
    fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            None
        } else {
            Some(Interval { lo, hi })
        }
    }

    fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    pub(crate) fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }

    fn add(&self, o: &Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    fn sub(&self, o: &Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }

    fn mul(&self, o: &Interval) -> Interval {
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            // 0 * inf is NaN; treat that corner as 0.
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(lo, hi)
    }

    fn div(&self, o: &Interval) -> Interval {
        if !o.excludes_zero() {
            return TOP;
        }
        let cands = [
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(lo, hi)
    }

    /// `a % b` for `b` excluding zero: magnitude below `max(|b|)`, sign of
    /// the dividend (Rust semantics). Over-approximated symmetrically when
    /// the dividend straddles zero.
    fn rem(&self, o: &Interval) -> Interval {
        let m = o.lo.abs().max(o.hi.abs());
        if !m.is_finite() {
            return TOP;
        }
        let lo = if self.lo >= 0.0 { 0.0 } else { -m };
        let hi = if self.hi <= 0.0 { 0.0 } else { m };
        Interval::new(lo, hi)
    }
}

/// Variable → interval on reachable paths; `None` = unreachable (bottom).
pub(crate) type Env = Option<BTreeMap<String, Interval>>;

struct IntervalLattice<'a> {
    /// Per-fn return interval (`#ret` at the exit block), TOP when unknown.
    returns: &'a [Interval],
}

impl<'a> IntervalLattice<'a> {
    fn operand(&self, env: &BTreeMap<String, Interval>, op: &Operand) -> Interval {
        match op {
            Operand::Const(bits) => Interval::point(f64::from_bits(*bits)),
            Operand::Var(v) => env.get(v).copied().unwrap_or(TOP),
            Operand::Unknown => TOP,
        }
    }

    fn eval(&self, env: &BTreeMap<String, Interval>, rhs: &VRhs) -> Interval {
        match rhs {
            VRhs::Operand(op) => self.operand(env, op),
            VRhs::Binary { op, lhs, rhs } => {
                let a = self.operand(env, lhs);
                let b = self.operand(env, rhs);
                match op.as_str() {
                    "+" => a.add(&b),
                    "-" => a.sub(&b),
                    "*" => a.mul(&b),
                    "/" => a.div(&b),
                    "%" => {
                        if b.excludes_zero() {
                            a.rem(&b)
                        } else {
                            TOP
                        }
                    }
                    "<<" => match (b.lo == b.hi, b.lo) {
                        (true, k) if (0.0..=63.0).contains(&k) && k.fract() == 0.0 => {
                            a.mul(&Interval::point(2f64.powi(k as i32)))
                        }
                        _ => TOP,
                    },
                    ">>" => match (b.lo == b.hi, b.lo) {
                        (true, k) if (0.0..=63.0).contains(&k) && k.fract() == 0.0 => {
                            a.div(&Interval::point(2f64.powi(k as i32)))
                        }
                        _ => TOP,
                    },
                    _ => TOP,
                }
            }
            VRhs::Clamp { arg, lo, hi } => {
                // clamp(a, lo, hi) = min(max(a, lo), hi), lifted pointwise.
                let a = self.operand(env, arg);
                let l = self.operand(env, lo);
                let h = self.operand(env, hi);
                let m = Interval::new(a.lo.max(l.lo), a.hi.max(l.hi));
                Interval::new(m.lo.min(h.lo), m.hi.min(h.hi))
            }
            VRhs::Min { lhs, rhs } => {
                let a = self.operand(env, lhs);
                let b = self.operand(env, rhs);
                Interval::new(a.lo.min(b.lo), a.hi.min(b.hi))
            }
            VRhs::Max { lhs, rhs } => {
                let a = self.operand(env, lhs);
                let b = self.operand(env, rhs);
                Interval::new(a.lo.max(b.lo), a.hi.max(b.hi))
            }
            // Saturating/checked/wrapping arithmetic: the unwrapped result is
            // not tracked precisely — only that it cannot exceed the hull of
            // its operands scaled arbitrarily. Stay at TOP (silent).
            VRhs::GuardedArith { .. } => TOP,
            VRhs::TryFrom { range, .. } => match range {
                Some((lo, hi)) => Interval::new(f64::from_bits(*lo), f64::from_bits(*hi)),
                None => TOP,
            },
            VRhs::Len { .. } => Interval::new(0.0, f64::INFINITY),
            VRhs::Source { range, .. } => match range {
                Some((lo, hi)) => Interval::new(f64::from_bits(*lo), f64::from_bits(*hi)),
                None => TOP,
            },
            VRhs::Call { callee } => self.returns.get(*callee).copied().unwrap_or(TOP),
            VRhs::Adapter { args, values } => {
                if *values && !args.is_empty() {
                    let mut acc: Option<Interval> = None;
                    for a in args {
                        let i = self.operand(env, a);
                        acc = Some(match acc {
                            Some(prev) => prev.hull(&i),
                            None => i,
                        });
                    }
                    acc.unwrap_or(TOP)
                } else {
                    TOP
                }
            }
            VRhs::Opaque => TOP,
        }
    }
}

impl<'a> EnvLattice for IntervalLattice<'a> {
    type Env = Env;

    fn transfer(&self, event: &Event, env: &mut Env) {
        let Some(map) = env else { return };
        match event {
            Event::Assign { var, rhs, .. } => {
                let i = self.eval(map, rhs);
                if i == TOP {
                    map.remove(var);
                } else {
                    map.insert(var.clone(), i);
                }
            }
            Event::Assume { var, op, bound } => {
                let b = self.operand(map, bound);
                // Relax strict comparisons; `!=` refines nothing here.
                let constraint = match op {
                    CmpOp::Lt | CmpOp::Le => Interval::new(f64::NEG_INFINITY, b.hi),
                    CmpOp::Gt | CmpOp::Ge => Interval::new(b.lo, f64::INFINITY),
                    CmpOp::Eq => b,
                    CmpOp::Ne => TOP,
                };
                let cur = map.get(var).copied().unwrap_or(TOP);
                match cur.intersect(&constraint) {
                    Some(i) => {
                        if i == TOP {
                            map.remove(var);
                        } else {
                            map.insert(var.clone(), i);
                        }
                    }
                    // Contradictory facts: this path is infeasible.
                    None => *env = None,
                }
            }
            _ => {}
        }
    }

    fn join(&self, acc: &mut Env, incoming: &Env) {
        let Some(inc) = incoming else { return };
        match acc {
            None => *acc = Some(inc.clone()),
            Some(map) => {
                // Key intersection with hull: a variable missing on either
                // side is TOP and drops out.
                let keys: Vec<String> = map.keys().cloned().collect();
                for k in keys {
                    match inc.get(&k) {
                        Some(i) => {
                            let h = map[&k].hull(i);
                            map.insert(k, h);
                        }
                        None => {
                            map.remove(&k);
                        }
                    }
                }
            }
        }
    }

    fn widen(&self, acc: &mut Env, incoming: &Env) {
        let Some(inc) = incoming else { return };
        match acc {
            None => *acc = Some(inc.clone()),
            Some(map) => {
                let keys: Vec<String> = map.keys().cloned().collect();
                for k in keys {
                    match inc.get(&k) {
                        Some(i) => {
                            let cur = map[&k];
                            let lo = if i.lo < cur.lo {
                                f64::NEG_INFINITY
                            } else {
                                cur.lo
                            };
                            let hi = if i.hi > cur.hi { f64::INFINITY } else { cur.hi };
                            let w = Interval::new(lo, hi);
                            if w == TOP {
                                map.remove(&k);
                            } else {
                                map.insert(k, w);
                            }
                        }
                        None => {
                            map.remove(&k);
                        }
                    }
                }
            }
        }
    }
}

/// Interval of each sink argument, keyed by `(fn index, block, event index)`.
pub(crate) type SinkRanges = BTreeMap<(usize, usize, usize), Vec<Interval>>;

/// Run the interval pass: push RH028 findings into `raw`, return the sink
/// ranges for the taint pass (RH030 zero-exclusion).
pub(crate) fn check(
    ws: &Workspace,
    models: &[Option<FnModel>],
    raw: &mut Vec<Diagnostic>,
) -> SinkRanges {
    // Return-interval summaries: start at TOP everywhere, refine over a few
    // rounds (enough for the shallow helper chains this workspace has).
    let mut returns: Vec<Interval> = vec![TOP; models.len()];
    for _ in 0..3 {
        let mut next = returns.clone();
        for (i, model) in models.iter().enumerate() {
            let Some(model) = model else { continue };
            let lattice = IntervalLattice { returns: &returns };
            let sol = forward_env(
                &model.cfg,
                &lattice,
                Some(BTreeMap::new()),
                None::<BTreeMap<String, Interval>>,
            );
            let at_exit = &sol.block_in[model.cfg.exit];
            next[i] = at_exit
                .as_ref()
                .and_then(|m| m.get("#ret").copied())
                .unwrap_or(TOP);
        }
        if next == returns {
            break;
        }
        returns = next;
    }

    let declared = declared_bounds(ws, raw);

    let mut ranges: SinkRanges = BTreeMap::new();
    let mut found: BTreeSet<(PathBuf, usize, Rule, String)> = BTreeSet::new();

    for (i, fi) in ws.fns().iter().enumerate() {
        let Some(model) = &models[i] else { continue };
        let lattice = IntervalLattice { returns: &returns };
        let sol = forward_env(
            &model.cfg,
            &lattice,
            Some(BTreeMap::new()),
            None::<BTreeMap<String, Interval>>,
        );
        let scoped = !fi.cfg_test && concurrency_scoped(&fi.krate);
        let rel = &ws.files()[fi.file].rel;
        for b in 0..model.cfg.blocks.len() {
            let mut idx = 0usize;
            sol.walk_block(&model.cfg, b, &lattice, |ev, env| {
                if let Event::Sink { kind, args, line } = ev {
                    let arg_ranges: Vec<Interval> = match env {
                        Some(map) => args.iter().map(|a| lattice.operand(map, a)).collect(),
                        None => vec![TOP; args.len()],
                    };
                    // RH028(b): a knob write whose interval is finite and
                    // escapes the declared bounds.
                    if let SinkKind::KnobSet { knob } = kind {
                        if scoped {
                            if let (Some(v), Some(bounds)) =
                                (arg_ranges.first(), declared.get(knob))
                            {
                                if v.is_finite() && !bounds.contains(v) {
                                    found.insert((
                                        rel.clone(),
                                        *line,
                                        Rule::ConfigOutOfRange,
                                        format!(
                                            "`Knob::{knob}` set to a value in [{}, {}] but its declared SearchSpace bounds are [{}, {}] — clamp to the declared `Dim` range",
                                            fmt_num(v.lo),
                                            fmt_num(v.hi),
                                            fmt_num(bounds.lo),
                                            fmt_num(bounds.hi),
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    ranges.insert((i, b, idx), arg_ranges);
                }
                idx += 1;
            });
        }
    }

    raw.extend(
        found
            .into_iter()
            .map(|(file, line, rule, message)| Diagnostic {
                file,
                line,
                rule,
                message,
            }),
    );
    ranges
}

/// Declared `[lo, hi]` per knob: const-evaluated hull of every
/// `Dim { knob: Knob::K, lo, hi, default }` literal in non-test production
/// code. Also fires RH028(a) for a `Dim` whose own default escapes its
/// bounds.
fn declared_bounds(ws: &Workspace, raw: &mut Vec<Diagnostic>) -> BTreeMap<String, Interval> {
    let consts = const_map(ws);
    let mut bounds: BTreeMap<String, Interval> = BTreeMap::new();
    for fi in ws.fns() {
        if fi.cfg_test || !concurrency_scoped(&fi.krate) {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let rel = &ws.files()[fi.file].rel;
        for_each_expr_in_block(body, &mut |e| {
            let Expr::StructLit { path, fields, line } = e else {
                return;
            };
            if path.last().map(String::as_str) != Some("Dim") {
                return;
            }
            let mut knob = None;
            let mut lo = None;
            let mut hi = None;
            let mut default = None;
            for (name, value) in fields {
                match name.as_str() {
                    "knob" => {
                        if let Expr::Path { segs, .. } = value {
                            if segs.len() >= 2 && segs[segs.len() - 2] == "Knob" {
                                knob = segs.last().cloned();
                            }
                        }
                    }
                    "lo" => lo = const_eval(value, &consts),
                    "hi" => hi = const_eval(value, &consts),
                    "default" => default = const_eval(value, &consts),
                    _ => {}
                }
            }
            let (Some(knob), Some(lo), Some(hi)) = (knob, lo, hi) else {
                return;
            };
            if let Some(d) = default {
                if d < lo || d > hi {
                    raw.push(Diagnostic {
                        file: rel.clone(),
                        line: *line as usize,
                        rule: Rule::ConfigOutOfRange,
                        message: format!(
                            "`Dim` for `Knob::{knob}` declares default {} outside its own bounds [{}, {}]",
                            fmt_num(d),
                            fmt_num(lo),
                            fmt_num(hi),
                        ),
                    });
                }
            }
            let decl = Interval::new(lo, hi);
            bounds
                .entry(knob)
                .and_modify(|b| *b = b.hull(&decl))
                .or_insert(decl);
        });
    }
    bounds
}

/// Deterministic short rendering for interval endpoints in messages.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arithmetic_is_conservative() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(-2.0, 2.0);
        assert_eq!(a.add(&b), Interval::new(-1.0, 5.0));
        assert_eq!(a.sub(&b), Interval::new(-1.0, 5.0));
        assert_eq!(a.mul(&b), Interval::new(-6.0, 6.0));
        assert_eq!(a.div(&b), TOP);
        assert!(Interval::new(1.0, 4.0).excludes_zero());
        assert!(!b.excludes_zero());
    }

    #[test]
    fn intersect_detects_infeasible_paths() {
        let a = Interval::new(0.0, 5.0);
        assert_eq!(
            a.intersect(&Interval::new(3.0, 10.0)),
            Some(Interval::new(3.0, 5.0))
        );
        assert_eq!(a.intersect(&Interval::new(6.0, 10.0)), None);
    }

    #[test]
    fn rem_bounds_by_divisor_magnitude() {
        let a = Interval::new(0.0, 100.0);
        let b = Interval::new(1.0, 8.0);
        assert_eq!(a.rem(&b), Interval::new(0.0, 8.0));
        let c = Interval::new(-100.0, 100.0);
        assert_eq!(c.rem(&b), Interval::new(-8.0, 8.0));
    }
}
