//! Plan → fixed-length feature vector.

use serde::{Deserialize, Serialize};
use sparksim::plan::{Operator, PlanNode};

use crate::virtual_ops::VirtualOpScheme;

/// Which operator-count featurization to use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmbeddingScheme {
    /// Per-type operator counts — the prior-work baseline (Phoebe \[53\]).
    PlainOperatorCounts,
    /// Virtual-operator counts — the paper's finer-grained scheme (§4.1, Figure 4).
    VirtualOperators(VirtualOpScheme),
}

/// A configured embedder producing vectors of a stable dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEmbedder {
    scheme: EmbeddingScheme,
}

impl WorkloadEmbedder {
    /// Plain per-type counts.
    pub fn plain() -> WorkloadEmbedder {
        WorkloadEmbedder {
            scheme: EmbeddingScheme::PlainOperatorCounts,
        }
    }

    /// Virtual operators with the default bucketing.
    pub fn virtual_ops() -> WorkloadEmbedder {
        WorkloadEmbedder {
            scheme: EmbeddingScheme::VirtualOperators(VirtualOpScheme::default()),
        }
    }

    /// Virtual operators with custom bucketing.
    // rhlint:allow(dead-pub): builder variant kept for alternative bucketing schemes
    pub fn with_scheme(scheme: EmbeddingScheme) -> WorkloadEmbedder {
        WorkloadEmbedder { scheme }
    }

    /// Output dimensionality: 2 cardinality features + the count block.
    pub fn dim(&self) -> usize {
        2 + self.count_block_dim()
    }

    fn count_block_dim(&self) -> usize {
        match &self.scheme {
            EmbeddingScheme::PlainOperatorCounts => Operator::TYPE_NAMES.len(),
            EmbeddingScheme::VirtualOperators(s) => {
                Operator::TYPE_NAMES.len() * s.variants_per_type()
            }
        }
    }

    /// Embed a plan. Layout: `[log1p(root rows), log1p(leaf input rows), counts…]`.
    /// Cardinalities are log-scaled so the surrogate sees magnitudes, not raw counts
    /// spanning nine orders.
    pub fn embed(&self, plan: &PlanNode) -> Vec<f64> {
        let mut v = vec![0.0; self.dim()];
        // dim() is always ≥ 2: two cardinality slots precede the count block.
        if let [root, leaf, ..] = &mut v[..] {
            *root = plan.root_cardinality().max(0.0).ln_1p();
            *leaf = plan.leaf_input_rows().max(0.0).ln_1p();
        }
        for node in plan.iter_nodes() {
            // Every operator type is in the vocabulary; an unknown one (impossible
            // today) simply contributes no count.
            let Some(type_idx) = Operator::TYPE_NAMES
                .iter()
                .position(|&t| t == node.op.type_name())
            else {
                continue;
            };
            let slot = match &self.scheme {
                EmbeddingScheme::PlainOperatorCounts => type_idx,
                EmbeddingScheme::VirtualOperators(s) => {
                    type_idx * s.variants_per_type() + s.variant_of(node)
                }
            };
            v[2 + slot] += 1.0;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanNode {
        let dim = PlanNode::scan("dim", 1e4, 50.0).filter(0.5);
        PlanNode::scan("fact", 1e8, 100.0)
            .filter(0.001)
            .fk_join(dim, 0.5)
            .hash_aggregate(0.01)
            .sort()
    }

    #[test]
    fn dims_are_stable_and_match_vectors() {
        for e in [WorkloadEmbedder::plain(), WorkloadEmbedder::virtual_ops()] {
            let v = e.embed(&plan());
            assert_eq!(v.len(), e.dim());
        }
        assert_eq!(WorkloadEmbedder::plain().dim(), 2 + 8);
        assert_eq!(WorkloadEmbedder::virtual_ops().dim(), 2 + 8 * 15);
    }

    #[test]
    fn plain_counts_each_operator_type() {
        let v = WorkloadEmbedder::plain().embed(&plan());
        // Layout after the two cardinality features follows TYPE_NAMES order:
        // TableScan, Filter, Project, HashAggregate, Join, Sort, Limit, Union.
        assert_eq!(v[2], 2.0, "two scans");
        assert_eq!(v[3], 2.0, "two filters");
        assert_eq!(v[5], 1.0, "one aggregate");
        assert_eq!(v[6], 1.0, "one join");
        assert_eq!(v[7], 1.0, "one sort");
    }

    #[test]
    fn total_counts_equal_node_count() {
        let p = plan();
        for e in [WorkloadEmbedder::plain(), WorkloadEmbedder::virtual_ops()] {
            let v = e.embed(&p);
            let total: f64 = v[2..].iter().sum();
            assert_eq!(total, p.node_count() as f64);
        }
    }

    #[test]
    fn virtual_embedding_distinguishes_what_plain_cannot() {
        // Same operator multiset, very different selectivities.
        let selective = PlanNode::scan("t", 1e8, 100.0).filter(1e-5);
        let permissive = PlanNode::scan("t", 1e8, 100.0).filter(0.9);
        let plain = WorkloadEmbedder::plain();
        let virt = WorkloadEmbedder::virtual_ops();
        // Plain: identical except root cardinality; counts block identical.
        assert_eq!(plain.embed(&selective)[2..], plain.embed(&permissive)[2..]);
        // Virtual: count blocks differ.
        assert_ne!(virt.embed(&selective)[2..], virt.embed(&permissive)[2..]);
    }

    #[test]
    fn cardinality_features_are_log_scaled() {
        let small = PlanNode::scan("t", 100.0, 10.0);
        let big = PlanNode::scan("t", 1e9, 10.0);
        let e = WorkloadEmbedder::plain();
        let vs = e.embed(&small);
        let vb = e.embed(&big);
        assert!(vb[1] > vs[1]);
        assert!(vb[1] < 25.0, "log-scaled, not raw: {}", vb[1]);
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = WorkloadEmbedder::virtual_ops();
        assert_eq!(e.embed(&plan()), e.embed(&plan()));
    }

    #[test]
    fn tpch_queries_embed_distinctly() {
        let e = WorkloadEmbedder::virtual_ops();
        let mut seen = std::collections::HashSet::new();
        for (_, p) in workloads::tpch::all_queries(1.0) {
            let v = e.embed(&p);
            let key: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
            seen.insert(key);
        }
        assert!(
            seen.len() >= 20,
            "embeddings collide: {} distinct",
            seen.len()
        );
    }
}
