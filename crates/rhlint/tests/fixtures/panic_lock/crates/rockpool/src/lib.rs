//! Fixture rockpool crate: a fallible parse unwrapped inside the critical
//! section — a panic here poisons the counter lock for every other thread.

use std::sync::Mutex;

struct Counter {
    total: Mutex<u64>,
}

impl Counter {
    /// Unwraps while the guard is live.
    fn bump(&self, raw: &str) {
        let g = self.total.lock();
        let v: u64 = raw.parse().unwrap();
    }

    /// Does the fallible work before taking the lock — silent.
    fn bump_ok(&self, raw: &str) {
        let v: u64 = match raw.parse() {
            Ok(n) => n,
            Err(_) => 0,
        };
        let g = self.total.lock();
    }
}
