//! The configuration search space.
//!
//! Knobs live on wildly different scales (`maxPartitionBytes` in bytes up to 2 GiB,
//! `shuffle.partitions` in the tens to thousands), so every tuner operates in a
//! *normalized* unit cube: size-like knobs are log-scaled before normalization. The
//! space also implements the Centroid Learning neighborhood (candidates within a
//! relative step β around a centroid, §4.3) and the grids the flighting pipeline
//! sweeps.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use sparksim::config::{Knob, SparkConf, MIB};

/// One tunable dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dim {
    /// The Spark knob this dimension drives.
    pub knob: Knob,
    /// Lower bound (raw units).
    pub lo: f64,
    /// Upper bound (raw units).
    pub hi: f64,
    /// Whether to normalize on a log scale (sizes and counts: yes).
    pub log_scale: bool,
    /// Default raw value (the tuning starting point).
    pub default: f64,
}

impl Dim {
    /// Raw → `[0, 1]`.
    pub fn normalize(&self, v: f64) -> f64 {
        let v = v.clamp(self.lo, self.hi);
        if self.log_scale {
            (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (v - self.lo) / (self.hi - self.lo)
        }
    }

    /// `[0, 1]` → raw.
    pub fn denormalize(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        if self.log_scale {
            (self.lo.ln() + x * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + x * (self.hi - self.lo)
        }
    }
}

/// An ordered set of dimensions. Points are raw-unit `Vec<f64>` in dimension order.
///
/// ```
/// use optimizers::space::ConfigSpace;
///
/// let space = ConfigSpace::query_level();
/// let default = space.default_point();
/// // Roundtrip through the normalized cube the tuners search in.
/// let unit = space.normalize(&default);
/// assert!(unit.iter().all(|x| (0.0..=1.0).contains(x)));
/// // Materialize a point as a full SparkConf.
/// let conf = space.to_conf(&default);
/// assert_eq!(conf.shuffle_partition_count(), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// The dimensions, in point order.
    pub dims: Vec<Dim>,
}

impl ConfigSpace {
    /// The three query-level knobs production Rockhopper tunes (§6.3):
    /// `maxPartitionBytes`, `autoBroadcastJoinThreshold`, `shuffle.partitions`.
    pub fn query_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim {
                    knob: Knob::MaxPartitionBytes,
                    lo: MIB,
                    hi: 2048.0 * MIB,
                    log_scale: true,
                    default: 128.0 * MIB,
                },
                Dim {
                    knob: Knob::AutoBroadcastJoinThreshold,
                    lo: MIB,
                    hi: 1024.0 * MIB,
                    log_scale: true,
                    default: 10.0 * MIB,
                },
                Dim {
                    knob: Knob::ShufflePartitions,
                    lo: 8.0,
                    hi: 4096.0,
                    log_scale: true,
                    default: 200.0,
                },
            ],
        }
    }

    /// The application-level knobs fixed at startup (§4.4): executors and memory.
    /// (The off-heap pair is omitted from the default app space as the paper's
    /// production deployment does; [`ConfigSpace::app_level_full`] includes it.)
    pub fn app_level() -> ConfigSpace {
        ConfigSpace {
            dims: vec![
                Dim {
                    knob: Knob::ExecutorInstances,
                    lo: 1.0,
                    hi: 64.0,
                    log_scale: true,
                    default: 4.0,
                },
                Dim {
                    knob: Knob::ExecutorMemoryMb,
                    lo: 1024.0,
                    hi: 64.0 * 1024.0,
                    log_scale: true,
                    default: 8192.0,
                },
            ],
        }
    }

    /// App-level space including the off-heap knobs (the §2.2 user-study set).
    // rhlint:allow(dead-pub): full app-level space kept for scale experiments
    pub fn app_level_full() -> ConfigSpace {
        let mut s = ConfigSpace::app_level();
        s.dims.push(Dim {
            knob: Knob::OffHeapEnabled,
            lo: 0.0,
            hi: 1.0,
            log_scale: false,
            default: 0.0,
        });
        s.dims.push(Dim {
            knob: Knob::OffHeapSizeMb,
            lo: 0.0,
            hi: 16.0 * 1024.0,
            log_scale: false,
            default: 0.0,
        });
        s
    }

    /// Dimensionality.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The default point (raw units).
    pub fn default_point(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.default).collect()
    }

    /// Raw point → unit cube.
    pub fn normalize(&self, point: &[f64]) -> Vec<f64> {
        self.dims
            .iter()
            .zip(point)
            .map(|(d, &v)| d.normalize(v))
            .collect()
    }

    /// Unit cube → raw point.
    pub fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        self.dims
            .iter()
            .zip(x)
            .map(|(d, &v)| d.denormalize(v))
            .collect()
    }

    /// Clip a raw point into bounds.
    pub fn clip(&self, point: &[f64]) -> Vec<f64> {
        self.dims
            .iter()
            .zip(point)
            .map(|(d, &v)| v.clamp(d.lo, d.hi))
            .collect()
    }

    /// Materialize a raw point as a [`SparkConf`] (unlisted knobs keep defaults).
    pub fn to_conf(&self, point: &[f64]) -> SparkConf {
        let overrides: Vec<(Knob, f64)> = self
            .dims
            .iter()
            .zip(point)
            .map(|(d, &v)| (d.knob, v.clamp(d.lo, d.hi)))
            .collect();
        SparkConf::from_overrides(&overrides)
    }

    /// Uniform random point in the normalized cube, returned raw.
    pub fn random_point(&self, rng: &mut StdRng) -> Vec<f64> {
        let x: Vec<f64> = self
            .dims
            .iter()
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        self.denormalize(&x)
    }

    /// `n` candidates within a box of half-width `step` (normalized units) around
    /// `center` (raw units) — the Centroid Learning candidate neighborhood `C(e_t)`.
    pub fn neighborhood(
        &self,
        center: &[f64],
        step: f64,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        let c = self.normalize(center);
        (0..n)
            .map(|_| {
                let x: Vec<f64> = c
                    .iter()
                    .map(|&ci| (ci + rng.random_range(-step..=step)).clamp(0.0, 1.0))
                    .collect();
                self.denormalize(&x)
            })
            .collect()
    }

    /// Full factorial grid with `k` levels per dimension (raw points). The paper's V0
    /// platform pre-computes ≥275 combinations per query; `k = 7` on 3 dims gives 343.
    pub fn grid(&self, k: usize) -> Vec<Vec<f64>> {
        assert!(k >= 1, "grid needs at least one level");
        let levels: Vec<f64> = if k == 1 {
            vec![0.5]
        } else {
            (0..k).map(|i| i as f64 / (k - 1) as f64).collect()
        };
        let mut points: Vec<Vec<f64>> = vec![Vec::new()];
        for _ in &self.dims {
            let mut next = Vec::with_capacity(points.len() * k);
            for p in &points {
                for &l in &levels {
                    let mut q = p.clone();
                    q.push(l);
                    next.push(q);
                }
            }
            points = next;
        }
        points.into_iter().map(|x| self.denormalize(&x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normalize_roundtrips_log_and_linear() {
        let s = ConfigSpace::app_level_full();
        let p = s.default_point();
        let back = s.denormalize(&s.normalize(&p));
        for (a, b) in p.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn default_point_is_spark_default() {
        let s = ConfigSpace::query_level();
        let conf = s.to_conf(&s.default_point());
        let d = SparkConf::default();
        assert_eq!(conf.max_partition_bytes, d.max_partition_bytes);
        assert_eq!(conf.shuffle_partitions, d.shuffle_partitions);
    }

    #[test]
    fn to_conf_clamps_out_of_bounds() {
        let s = ConfigSpace::query_level();
        let conf = s.to_conf(&[1e18, -5.0, 1e9]);
        conf.validate().unwrap();
    }

    #[test]
    fn neighborhood_stays_near_center_in_normalized_space() {
        let s = ConfigSpace::query_level();
        let mut rng = StdRng::seed_from_u64(1);
        let center = s.default_point();
        let c = s.normalize(&center);
        for cand in s.neighborhood(&center, 0.1, 50, &mut rng) {
            for (xi, ci) in s.normalize(&cand).iter().zip(&c) {
                assert!((xi - ci).abs() <= 0.1 + 1e-9);
            }
        }
    }

    #[test]
    fn neighborhood_with_zero_step_is_center() {
        let s = ConfigSpace::query_level();
        let mut rng = StdRng::seed_from_u64(2);
        let center = s.default_point();
        for cand in s.neighborhood(&center, 0.0, 5, &mut rng) {
            for (a, b) in cand.iter().zip(&center) {
                assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn grid_has_k_to_the_d_points() {
        let s = ConfigSpace::query_level();
        assert_eq!(s.grid(7).len(), 343);
        assert_eq!(s.grid(1).len(), 1);
        // Paper's "over 275 configuration combinations".
        assert!(s.grid(7).len() >= 275);
    }

    #[test]
    fn grid_points_span_bounds() {
        let s = ConfigSpace::query_level();
        let g = s.grid(3);
        let lo = g.iter().map(|p| p[2]).fold(f64::INFINITY, f64::min);
        let hi = g.iter().map(|p| p[2]).fold(0.0, f64::max);
        assert!((lo - 8.0).abs() < 1e-9);
        assert!((hi - 4096.0).abs() < 1.0);
    }

    #[test]
    fn random_points_are_in_bounds() {
        let s = ConfigSpace::query_level();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = s.random_point(&mut rng);
            for (v, d) in p.iter().zip(&s.dims) {
                assert!(*v >= d.lo - 1e-9 && *v <= d.hi + 1e-9);
            }
        }
    }

    #[test]
    fn log_scale_spreads_small_values() {
        // In log space, the normalized midpoint of [1 MiB, 2048 MiB] is ~45 MiB,
        // not ~1024 MiB.
        let d = &ConfigSpace::query_level().dims[0];
        let mid = d.denormalize(0.5);
        assert!(mid < 100.0 * MIB, "midpoint {mid}");
    }
}
