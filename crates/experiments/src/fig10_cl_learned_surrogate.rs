//! **Figure 10**: Centroid Learning with a *real* learned surrogate (the paper's SVR,
//! here RBF kernel ridge) trained on noisy observations. The paper grades the learned
//! model's accuracy as "comparable to Level 3–5" and shows convergence far better
//! than Figure 2's baselines, plus the optimality gap of the most impactful knob
//! (`maxPartitionBytes`).

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::RockhopperTuner;

use crate::harness::{band_rows, replicate, write_csv, Scale, Summary};

/// One replication: production CL (window KRR surrogate, no baseline), tracing
/// `(normed perf, knob-0 optimality gap, surrogate-pick percentile)` per iteration.
fn trace(seed: u64, iters: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut env = SyntheticEnv::high_noise_constant(seed);
    let mut tuner = RockhopperTuner::builder(env.space().clone())
        .guardrail(None)
        .seed(seed)
        .build();
    let mut perf = Vec::with_capacity(iters);
    let mut gap = Vec::with_capacity(iters);
    let mut pick_pct = Vec::with_capacity(iters);
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        perf.push(env.normed_performance(&p));
        gap.push(env.optimality_gap(0, &p));
        // Grade the pick: its true-performance percentile within a fresh local
        // candidate sample around the centroid (the paper's "Level" of the model).
        let f = env.f.clone();
        let centroid = tuner.centroid();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ perf.len() as u64);
        use rand::SeedableRng as _;
        let sample = env
            .space()
            .neighborhood(&centroid, tuner.config().beta, 50, &mut rng);
        let t_pick = f.true_time(&[p[0], p[1], p[2]], 1.0);
        let better = sample
            .iter()
            .filter(|c| f.true_time(&[c[0], c[1], c[2]], 1.0) < t_pick)
            .count();
        pick_pct.push(100.0 * better as f64 / sample.len() as f64);
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    (perf, gap, pick_pct)
}

/// Run the experiment.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(100, 6);
    let iters = scale.pick(400, 40);

    let traces: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = crate::harness::replicate_raw(runs, |seed| {
        let (a, b, c) = trace(seed, iters);
        // Flatten for the generic replicator, unflatten below.
        let mut v = a;
        v.extend(b);
        v.extend(c);
        v
    })
    .into_iter()
    .map(|v| {
        let perf = v[..iters].to_vec();
        let gap = v[iters..2 * iters].to_vec();
        let pct = v[2 * iters..].to_vec();
        (perf, gap, pct)
    })
    .collect();

    let perf_bands =
        ml::stats::bands_per_iteration(&traces.iter().map(|t| t.0.clone()).collect::<Vec<_>>());
    let gap_bands =
        ml::stats::bands_per_iteration(&traces.iter().map(|t| t.1.clone()).collect::<Vec<_>>());
    let pick_all: Vec<f64> = traces.iter().flat_map(|t| t.2.iter().copied()).collect();

    let mut summary = Summary::new("fig10_cl_learned_surrogate");
    let tail = &perf_bands[perf_bands.len().saturating_sub(10)..];
    let final_p50 = ml::stats::mean(&tail.iter().map(|b| b.p50).collect::<Vec<_>>());
    let final_p95 = ml::stats::mean(&tail.iter().map(|b| b.p95).collect::<Vec<_>>());
    summary.row("final median normed perf", format!("{final_p50:.3}"));
    summary.row(
        "final P95 normed perf (narrowing band)",
        format!("{final_p95:.3}"),
    );
    let gap_tail = &gap_bands[gap_bands.len().saturating_sub(10)..];
    summary.row(
        "final median maxPartitionBytes optimality gap",
        format!(
            "{:.3}",
            ml::stats::mean(&gap_tail.iter().map(|b| b.p50).collect::<Vec<_>>())
        ),
    );
    summary.row(
        "surrogate pick percentile (≈ Level)",
        match ml::stats::median(&pick_all) {
            Some(p) => format!("{p:.0}th (paper: 30th–50th)"),
            None => "n/a (no runs)".to_string(),
        },
    );
    summary.files.push(write_csv(
        "fig10a_cl_learned",
        "iteration,p5,p50,p95",
        &band_rows(&perf_bands),
    ));
    summary.files.push(write_csv(
        "fig10b_optimality_gap",
        "iteration,p5,p50,p95",
        &band_rows(&gap_bands),
    ));
    summary
}

/// Exposed for the comparison tests: final median of CL under high noise.
/// `None` when `runs == 0` or `iters == 0` (no bands to summarize).
pub fn final_median(runs: usize, iters: usize) -> Option<f64> {
    let bands = replicate(runs, |seed| trace(seed, iters).0);
    bands.last().map(|b| b.p50)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cl_beats_noisy_bo_shape() {
        // The headline comparison of the paper: CL's final median under high noise
        // beats vanilla BO's (Figure 2a vs Figure 10a).
        use optimizers::bo::BayesOpt;
        use optimizers::env::{Environment, SyntheticEnv};
        let cl = final_median(6, 80).expect("runs > 0");
        let bo_bands = replicate(6, |seed| {
            let mut env = SyntheticEnv::high_noise_constant(seed);
            let mut bo = BayesOpt::new(env.space().clone(), seed);
            (0..80)
                .map(|_| {
                    let p = bo.suggest(&env.context());
                    let perf = env.normed_performance(&p);
                    let o = env.run(&p);
                    bo.observe(&p, &o);
                    perf
                })
                .collect()
        });
        let bo = bo_bands.last().unwrap().p50;
        assert!(
            cl < bo,
            "CL {cl:.3} should beat BO {bo:.3} under high noise"
        );
    }
}
