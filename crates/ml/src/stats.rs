//! Small statistics helpers shared across the workspace: percentiles, summary bands
//! for convergence plots, and seeded normal deviates (Box–Muller), avoiding any
//! dependency beyond `rand`.

use rand::{Rng, RngExt};

/// Draw a standard-normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from zero so ln() stays finite.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a normal deviate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `q ∈ [0, 100]`. Returns `NaN` on empty input.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_of_sorted(&sorted, q)
}

/// Percentile of an already-sorted (ascending) slice.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// A `(p5, median, p95)` band — the summary the paper plots for every convergence
/// figure (solid median line plus a 5th–95th percentile shaded region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// 5th percentile.
    pub p5: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Band {
    /// Compute the band from raw samples.
    pub fn from_samples(xs: &[f64]) -> Band {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Band {
            p5: percentile_of_sorted(&sorted, 5.0),
            p50: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
        }
    }
}

/// Per-iteration bands across replicated runs: `runs[r][t]` is the metric of run `r`
/// at iteration `t`. Runs shorter than the longest run contribute only to the
/// iterations they cover.
pub fn bands_per_iteration(runs: &[Vec<f64>]) -> Vec<Band> {
    let horizon = runs.iter().map(Vec::len).max().unwrap_or(0);
    (0..horizon)
        .map(|t| {
            let at_t: Vec<f64> = runs.iter().filter_map(|r| r.get(t).copied()).collect();
            Band::from_samples(&at_t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.1, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 2.0).abs() < 0.1, "std {}", std_dev(&xs));
    }

    #[test]
    fn percentile_endpoints() {
        let xs = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(median(&xs), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert_eq!(percentile(&xs, 75.0), 7.5);
    }

    #[test]
    fn percentile_empty_is_nan_singleton_is_value() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn band_ordering_holds() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let b = Band::from_samples(&xs);
        assert!(b.p5 <= b.p50 && b.p50 <= b.p95);
        assert_eq!(b.p50, 50.0);
    }

    #[test]
    fn bands_per_iteration_handles_ragged_runs() {
        let runs = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0]];
        let bands = bands_per_iteration(&runs);
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].p50, 1.5);
        assert_eq!(bands[2].p50, 3.0); // only the longer run reaches t=2
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
