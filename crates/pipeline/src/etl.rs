//! The Embedding ETL streaming job (§5, backend job 1): Spark event logs in,
//! training rows out.
//!
//! A training row pairs what was known at *compile* time (signature, embedding,
//! configuration) with what was observed at *run* time (data size, elapsed). Rows are
//! assembled by joining each `QueryStart` with its `QueryEnd` within an application's
//! event stream; unmatched starts (crashed queries) and malformed lines are dropped,
//! as a production log processor must.

use serde::{Deserialize, Serialize};
use sparksim::config::SparkConf;
use sparksim::event::SparkEvent;

use optimizers::space::ConfigSpace;
use rockhopper::baseline::BaselineRow;

/// One (compile-time, run-time) training pair extracted from event logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRow {
    /// Query signature the row belongs to.
    pub signature: u64,
    /// Client-computed workload embedding.
    pub embedding: Vec<f64>,
    /// The full configuration the run used.
    pub conf: SparkConf,
    /// Observed input rows (`p`).
    pub data_size: f64,
    /// Observed elapsed time, ms (`r`).
    pub elapsed_ms: f64,
}

impl TrainingRow {
    /// Project the configuration onto a tuning space's dimensions (raw point).
    pub fn point_in(&self, space: &ConfigSpace) -> Vec<f64> {
        space.dims.iter().map(|d| self.conf.get(d.knob)).collect()
    }

    /// Convert to the baseline-trainer's row type over a given space.
    pub fn to_baseline_row(&self, space: &ConfigSpace) -> BaselineRow {
        BaselineRow {
            embedding: self.embedding.clone(),
            point: self.point_in(space),
            data_size: self.data_size,
            elapsed_ms: self.elapsed_ms,
        }
    }
}

/// A query start that never saw its `QueryEnd` — the event-level signature of a
/// failed (or telemetry-censored) run. The backend turns these into censored
/// observations and degraded-mode bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedRun {
    /// Application the run belonged to.
    pub app_id: String,
    /// Query signature of the run.
    pub signature: u64,
    /// Client-computed workload embedding at submission.
    pub embedding: Vec<f64>,
    /// The configuration the failed run used.
    pub conf: SparkConf,
}

/// The full output of one ETL pass over an event document: completed training
/// rows, failed runs (unmatched starts), and the number of quarantined lines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EtlBatch {
    /// Completed `(compile-time, run-time)` training pairs.
    pub rows: Vec<TrainingRow>,
    /// Starts whose end never arrived, oldest first.
    pub failed: Vec<FailedRun>,
    /// Corrupt/truncated JSON lines quarantined during parsing (0 when the batch
    /// was built from already-parsed events).
    pub quarantined_lines: usize,
}

/// Extract the full ETL batch from an event stream. Joins `QueryStart`/`QueryEnd`
/// pairs per `(app_id, signature)` in order; a start without a matching end is
/// reported as a [`FailedRun`] rather than silently dropped.
pub fn extract_batch(events: &[SparkEvent]) -> EtlBatch {
    // Pending starts per (app, signature), FIFO to pair repeated executions.
    // BTreeMap keeps leftover-start (= failed run) ordering deterministic.
    use std::collections::BTreeMap;
    type PendingStarts = BTreeMap<(String, u64), Vec<(SparkConf, Vec<f64>)>>;
    let mut pending: PendingStarts = BTreeMap::new();
    let mut rows = Vec::new();
    for e in events {
        match e {
            SparkEvent::QueryStart {
                app_id,
                query_signature,
                conf,
                embedding,
                ..
            } => {
                pending
                    .entry((app_id.clone(), *query_signature))
                    .or_default()
                    .push((conf.clone(), embedding.clone()));
            }
            SparkEvent::QueryEnd {
                app_id,
                query_signature,
                metrics,
            } => {
                if let Some(starts) = pending.get_mut(&(app_id.clone(), *query_signature)) {
                    if !starts.is_empty() {
                        let (conf, embedding) = starts.remove(0);
                        rows.push(TrainingRow {
                            signature: *query_signature,
                            embedding,
                            conf,
                            data_size: metrics.input_rows,
                            elapsed_ms: metrics.elapsed_ms,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    let failed = pending
        .into_iter()
        .flat_map(|((app_id, signature), starts)| {
            starts.into_iter().map(move |(conf, embedding)| FailedRun {
                app_id: app_id.clone(),
                signature,
                embedding,
                conf,
            })
        })
        .collect();
    EtlBatch {
        rows,
        failed,
        quarantined_lines: 0,
    }
}

/// Extract training rows from an event stream (completed pairs only).
pub fn extract_rows(events: &[SparkEvent]) -> Vec<TrainingRow> {
    extract_batch(events).rows
}

/// Parse a JSON-lines event document — quarantining individual corrupt or
/// truncated lines instead of discarding the whole file — and extract the full
/// batch in one step.
pub fn extract_batch_from_jsonl(doc: &str) -> EtlBatch {
    let (events, quarantined) = sparksim::event::from_jsonl_lossy(doc);
    let mut batch = extract_batch(&events);
    batch.quarantined_lines = quarantined;
    batch
}

/// Parse a JSON-lines event document and extract rows in one step.
pub fn extract_rows_from_jsonl(doc: &str) -> Vec<TrainingRow> {
    extract_batch_from_jsonl(doc).rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::metrics::QueryMetrics;

    fn start(app: &str, sig: u64, partitions: f64) -> SparkEvent {
        let mut conf = SparkConf::default();
        conf.shuffle_partitions = partitions;
        SparkEvent::QueryStart {
            app_id: app.into(),
            query_signature: sig,
            conf,
            plan_summary: vec!["TableScan".into()],
            embedding: vec![1.0, 2.0],
        }
    }

    fn end(app: &str, sig: u64, elapsed: f64, rows: f64) -> SparkEvent {
        SparkEvent::QueryEnd {
            app_id: app.into(),
            query_signature: sig,
            metrics: QueryMetrics {
                elapsed_ms: elapsed,
                true_ms: elapsed,
                num_stages: 1,
                num_tasks: 1,
                input_bytes: rows * 100.0,
                input_rows: rows,
                root_rows: 1.0,
                shuffle_bytes: 0.0,
                spilled_bytes: 0.0,
                broadcast_joins: 0,
                sort_merge_joins: 0,
            },
        }
    }

    #[test]
    fn pairs_start_and_end() {
        let rows = extract_rows(&[start("a", 1, 128.0), end("a", 1, 500.0, 1e6)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].signature, 1);
        assert_eq!(rows[0].elapsed_ms, 500.0);
        assert_eq!(rows[0].data_size, 1e6);
        assert_eq!(rows[0].conf.shuffle_partitions, 128.0);
        assert_eq!(rows[0].embedding, vec![1.0, 2.0]);
    }

    #[test]
    fn unmatched_start_is_dropped() {
        let rows = extract_rows(&[start("a", 1, 128.0)]);
        assert!(rows.is_empty());
    }

    #[test]
    fn unmatched_start_surfaces_as_failed_run() {
        let batch = extract_batch(&[
            start("a", 1, 128.0),
            end("a", 1, 500.0, 1e6),
            start("a", 2, 64.0), // crashed: no end
        ]);
        assert_eq!(batch.rows.len(), 1);
        assert_eq!(batch.failed.len(), 1);
        assert_eq!(batch.failed[0].signature, 2);
        assert_eq!(batch.failed[0].app_id, "a");
        assert_eq!(batch.failed[0].conf.shuffle_partitions, 64.0);
        assert_eq!(batch.failed[0].embedding, vec![1.0, 2.0]);
        assert_eq!(batch.quarantined_lines, 0);
    }

    #[test]
    fn quarantined_lines_are_counted_not_fatal() {
        let doc = format!(
            "{}\n{{\"truncated\": \n{}\nnot json at all\n",
            start("a", 1, 64.0).to_json_line(),
            end("a", 1, 99.0, 5.0).to_json_line()
        );
        let batch = extract_batch_from_jsonl(&doc);
        assert_eq!(batch.rows.len(), 1, "good lines still pair up");
        assert_eq!(batch.quarantined_lines, 2);
        assert!(batch.failed.is_empty());
    }

    #[test]
    fn end_without_start_is_dropped() {
        let rows = extract_rows(&[end("a", 1, 500.0, 1e6)]);
        assert!(rows.is_empty());
    }

    #[test]
    fn repeated_executions_pair_fifo() {
        let rows = extract_rows(&[
            start("a", 1, 100.0),
            start("a", 1, 200.0),
            end("a", 1, 10.0, 1.0),
            end("a", 1, 20.0, 1.0),
        ]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].conf.shuffle_partitions, 100.0);
        assert_eq!(rows[0].elapsed_ms, 10.0);
        assert_eq!(rows[1].conf.shuffle_partitions, 200.0);
    }

    #[test]
    fn apps_do_not_cross_pair() {
        let rows = extract_rows(&[start("a", 1, 100.0), end("b", 1, 10.0, 1.0)]);
        assert!(rows.is_empty());
    }

    #[test]
    fn point_projection_follows_space_order() {
        let rows = extract_rows(&[start("a", 1, 321.0), end("a", 1, 10.0, 1.0)]);
        let space = ConfigSpace::query_level();
        let point = rows[0].point_in(&space);
        assert_eq!(point.len(), 3);
        assert_eq!(point[2], 321.0); // shuffle partitions is dim 2
        let br = rows[0].to_baseline_row(&space);
        assert_eq!(br.point, point);
        assert_eq!(br.elapsed_ms, 10.0);
    }

    #[test]
    fn jsonl_path_skips_garbage() {
        let doc = format!(
            "{}\ngarbage\n{}\n",
            start("a", 1, 64.0).to_json_line(),
            end("a", 1, 99.0, 5.0).to_json_line()
        );
        let rows = extract_rows_from_jsonl(&doc);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].elapsed_ms, 99.0);
    }
}
