//! Application-level execution: a Spark *application* acquires executors once at
//! startup, then runs its queries in sequence (§4.4: app-level knobs "are fixed at
//! startup" and shared by every query).
//!
//! This gives the app-level knobs their end-to-end cost surface: more executors
//! shorten wide stages (the scheduler's wave math) but lengthen startup and add GC
//! drag; more memory prevents spills but also drags. Algorithm 2's output can then
//! be *evaluated* against this simulator instead of only scored by its own model.

use serde::{Deserialize, Serialize};

use crate::config::SparkConf;
use crate::metrics::QueryMetrics;
use crate::plan::PlanNode;
use crate::simulator::Simulator;

/// Cost constants for application startup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartupCosts {
    /// Fixed driver/session bring-up, ms.
    pub driver_ms: f64,
    /// Per-executor acquisition cost, ms (container request + JVM start). Executors
    /// come up with parallelism, so the paid cost grows sub-linearly.
    pub per_executor_ms: f64,
    /// Parallel acquisition factor in `(0, 1]`: 1 = fully serial, small = fully
    /// parallel. Effective startup = `driver + per_executor · n^factor…` — modeled as
    /// `per_executor · n.powf(factor)`.
    pub acquisition_exponent: f64,
}

impl Default for StartupCosts {
    fn default() -> Self {
        StartupCosts {
            driver_ms: 8_000.0,
            per_executor_ms: 2_500.0,
            acquisition_exponent: 0.6,
        }
    }
}

impl StartupCosts {
    /// Startup duration for `executors` executors.
    pub(crate) fn startup_ms(&self, executors: usize) -> f64 {
        self.driver_ms
            + self.per_executor_ms * (executors.max(1) as f64).powf(self.acquisition_exponent)
    }
}

/// The outcome of one simulated application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Startup (executor acquisition) time, ms.
    pub startup_ms: f64,
    /// Per-query metrics, in execution order.
    pub queries: Vec<QueryMetrics>,
    /// End-to-end wall time: startup + sum of observed query times.
    pub total_ms: f64,
}

/// Execute an application: acquire executors under `app_conf`, then run each
/// `(plan, query_conf)` pair in sequence. Query-level knobs come from each pair's
/// conf; app-level knobs are forced from `app_conf` onto every query (they are fixed
/// at startup and cannot vary per query).
pub fn run_app(
    sim: &Simulator,
    startup: &StartupCosts,
    app_conf: &SparkConf,
    queries: &[(PlanNode, SparkConf)],
    seed: u64,
) -> AppRun {
    let executors = sim.cluster.granted_executors(app_conf.executor_count());
    let startup_ms = startup.startup_ms(executors);
    let mut total_ms = startup_ms;
    let mut metrics = Vec::with_capacity(queries.len());
    for (i, (plan, query_conf)) in queries.iter().enumerate() {
        let mut conf = query_conf.clone();
        // App-level knobs are pinned by the application.
        conf.executor_instances = app_conf.executor_instances;
        conf.executor_memory_mb = app_conf.executor_memory_mb;
        conf.offheap_enabled = app_conf.offheap_enabled;
        conf.offheap_size_mb = app_conf.offheap_size_mb;
        let run = sim.execute(plan, &conf, seed ^ (i as u64) << 16);
        total_ms += run.metrics.elapsed_ms;
        metrics.push(run.metrics);
    }
    AppRun {
        startup_ms,
        queries: metrics,
        total_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseSpec;

    fn queries(n: usize) -> Vec<(PlanNode, SparkConf)> {
        (0..n)
            .map(|i| {
                (
                    PlanNode::scan("t", 5e7 + i as f64 * 1e7, 100.0).hash_aggregate(0.01),
                    SparkConf::default(),
                )
            })
            .collect()
    }

    #[test]
    fn startup_grows_sublinearly_with_executors() {
        let s = StartupCosts::default();
        let one = s.startup_ms(1);
        let four = s.startup_ms(4);
        let sixteen = s.startup_ms(16);
        assert!(four > one && sixteen > four);
        assert!(
            sixteen - four < 4.0 * (four - one),
            "acquisition should parallelize"
        );
    }

    #[test]
    fn app_run_sums_startup_and_queries() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let startup = StartupCosts::default();
        let run = run_app(&sim, &startup, &SparkConf::default(), &queries(3), 1);
        assert_eq!(run.queries.len(), 3);
        let sum: f64 = run.queries.iter().map(|q| q.elapsed_ms).sum();
        assert!((run.total_ms - run.startup_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn app_conf_pins_executor_count_across_queries() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let startup = StartupCosts::default();
        let mut app_conf = SparkConf::default();
        app_conf.executor_instances = 2.0;
        // Query confs ask for 16 executors; the app must override them.
        let qs: Vec<(PlanNode, SparkConf)> = queries(2)
            .into_iter()
            .map(|(p, mut c)| {
                c.executor_instances = 16.0;
                (p, c)
            })
            .collect();
        let few = run_app(&sim, &startup, &app_conf, &qs, 1);
        app_conf.executor_instances = 16.0;
        let many = run_app(&sim, &startup, &app_conf, &qs, 1);
        // With 16 executors the per-query time shrinks but startup grows.
        let few_q: f64 = few.queries.iter().map(|q| q.true_ms).sum();
        let many_q: f64 = many.queries.iter().map(|q| q.true_ms).sum();
        assert!(many_q < few_q, "more executors should speed queries");
        assert!(many.startup_ms > few.startup_ms);
    }

    #[test]
    fn executor_count_has_an_interior_optimum_for_small_apps() {
        // A micro-batch app: one tiny query. Huge fleets pay startup for nothing.
        let sim = Simulator::default_pool(NoiseSpec::none());
        let startup = StartupCosts::default();
        let tiny = vec![(
            PlanNode::scan("t", 1e6, 100.0).hash_aggregate(0.01),
            SparkConf::default(),
        )];
        let total = |execs: f64| {
            let mut c = SparkConf::default();
            c.executor_instances = execs;
            run_app(&sim, &startup, &c, &tiny, 1).total_ms
        };
        let small = total(2.0);
        let large = total(16.0);
        assert!(
            small < large,
            "a micro-batch should prefer a small fleet: {small} vs {large}"
        );
    }
}
