//! Regenerates the paper's `fig11_dynamic_workloads` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::fig11_dynamic_workloads::run(scale).print();
}
