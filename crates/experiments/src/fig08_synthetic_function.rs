//! **Figure 8**: the synthetic optimization function before and after noise — one
//! knob swept, true curve vs observed samples at high (FL=1, SL=1) and low
//! (FL=0.1, SL=0.1) noise.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparksim::noise::NoiseSpec;
use workloads::synthetic::SyntheticFunction;

use crate::harness::{write_csv, Scale, Summary};

/// Sweep knob 0 (`maxPartitionBytes`) across its range; sample each setting under
/// both noise levels.
pub fn run(scale: Scale) -> Summary {
    let f = SyntheticFunction::paper_default();
    let points = scale.pick(200, 30);
    let mut rng = StdRng::seed_from_u64(8);
    let mut rows = Vec::new();
    for i in 0..points {
        let x = i as f64 / (points - 1) as f64;
        let mut c = f.optimal_config();
        c[0] = f.ranges[0].denormalize(x);
        let true_t = f.true_time(&c, 1.0);
        let high = f.observe(&c, 1.0, &NoiseSpec::high(), &mut rng);
        let low = f.observe(&c, 1.0, &NoiseSpec::low(), &mut rng);
        rows.push(vec![c[0], true_t, high, low]);
    }
    // Spike rate measured with the spike term isolated (FL = 0), since a |ε| ≥ 1
    // fluctuation alone also doubles the time and would inflate the count.
    let spike_only = NoiseSpec {
        fluctuation: 0.0,
        spike: 1.0,
    };
    let spike_draws = 20_000;
    let spikes = (0..spike_draws)
        .filter(|_| spike_only.apply(1.0, &mut rng) >= 2.0)
        .count();
    let mut summary = Summary::new("fig08_synthetic_function");
    summary.row("sweep points", points);
    summary.row(
        "spike rate at SL = 1 (fluctuation isolated)",
        format!(
            "{:.1}% (paper: SL/10 = 10%)",
            100.0 * spikes as f64 / spike_draws as f64
        ),
    );
    let min_row = rows
        .iter()
        .min_by(|a, b| a[1].total_cmp(&b[1]))
        .expect("non-empty sweep");
    summary.row(
        "true minimum at maxPartitionBytes",
        format!("{:.0} MiB", min_row[0] / (1024.0 * 1024.0)),
    );
    summary.files.push(write_csv(
        "fig08_synthetic_function",
        "max_partition_bytes,true_ms,observed_high_noise_ms,observed_low_noise_ms",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_never_beats_true() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        assert!(!s.files.is_empty());
        let doc = std::fs::read_to_string(&s.files[0]).unwrap();
        for line in doc.lines().skip(1) {
            let v: Vec<f64> = line.split(',').map(|x| x.parse().unwrap()).collect();
            assert!(v[2] >= v[1] && v[3] >= v[1], "noise only slows down: {v:?}");
        }
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
