//! Gaussian-process regression with posterior mean and variance — the surrogate behind
//! the vanilla Bayesian Optimization baseline (paper Figure 2a) and the Contextual BO
//! of §6.2. Hyper-parameters are fixed per fit (no marginal-likelihood optimization):
//! the paper treats BO as an off-the-shelf baseline, and fixed, standardized-space
//! hyper-parameters match how `bayes_opt`-style libraries behave with defaults.

use crate::kernel::Kernel;
use crate::linalg::{dot, solve_lower, solve_upper_from_lower, Matrix};
use crate::scaler::{StandardScaler, TargetScaler};
use crate::{validate_xy, MlError, Regressor};

/// GP posterior for one query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation (never negative).
    pub std: f64,
}

/// Gaussian process regressor with observation noise.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    /// Observation noise variance added to the Gram diagonal.
    noise: f64,
    x_train: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Matrix>,
    x_scaler: Option<StandardScaler>,
    y_scaler: Option<TargetScaler>,
    /// Standardized training targets, kept for the marginal-likelihood computation.
    y_std: Option<Vec<f64>>,
}

impl GaussianProcess {
    /// Create an unfitted GP. `noise` is the observation-noise *variance* in
    /// standardized target units; production data is extremely noisy, so the
    /// experiments use values in `0.01..1.0`.
    pub fn new(kernel: Kernel, noise: f64) -> Self {
        GaussianProcess {
            kernel,
            noise: noise.max(1e-10),
            x_train: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            x_scaler: None,
            y_scaler: None,
            y_std: None,
        }
    }

    /// Matérn-5/2 GP, the conventional BO default.
    pub fn default_bo() -> Self {
        GaussianProcess::new(Kernel::matern52(1.0), 0.1)
    }

    /// Whether `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.chol.is_some()
    }

    /// Number of stored training points.
    // rhlint:allow(dead-pub): GP diagnostic surfaced for model-selection experiments
    pub fn n_train(&self) -> usize {
        self.x_train.len()
    }

    /// Log marginal likelihood of the training data under the fitted GP (in
    /// standardized target space): `−½·yᵀα − Σᵢ ln Lᵢᵢ − n/2·ln 2π`. The standard
    /// model-selection criterion for GP hyper-parameters; exposed for diagnostics
    /// and hyper-parameter grids. `None` before a successful fit.
    // rhlint:allow(dead-pub): GP diagnostic surfaced for model-selection experiments
    pub fn log_marginal_likelihood(&self) -> Option<f64> {
        let chol = self.chol.as_ref()?;
        let ys = self.y_std.as_ref()?;
        let n = ys.len() as f64;
        let data_fit: f64 = ys.iter().zip(&self.alpha).map(|(y, a)| y * a).sum();
        let log_det: f64 = (0..chol.nrows()).map(|i| chol[(i, i)].ln()).sum();
        Some(-0.5 * data_fit - log_det - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }

    /// Posterior mean and standard deviation at `x`.
    ///
    /// Before a successful fit this returns the prior: mean 0, std = prior signal
    /// standard deviation.
    pub fn posterior(&self, x: &[f64]) -> Posterior {
        let (Some(chol), Some(xs), Some(ys)) = (&self.chol, &self.x_scaler, &self.y_scaler) else {
            return Posterior {
                mean: 0.0,
                std: self.kernel.diag().sqrt(),
            };
        };
        let xt = xs.transform_row(x);
        let k_star = self.kernel.cross(&xt, &self.x_train);
        let mean_z = dot(&k_star, &self.alpha);
        // var = k(x,x) − k*ᵀ (K+σ²I)⁻¹ k*, computed via v = L⁻¹ k*.
        let v = solve_lower(chol, &k_star);
        let var_z = (self.kernel.diag() - dot(&v, &v)).max(0.0);
        Posterior {
            mean: ys.inverse(mean_z),
            std: ys.inverse_scale(var_z.sqrt()),
        }
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        let x_scaler = StandardScaler::fit(x);
        let y_scaler = TargetScaler::fit(y);
        let xs = x_scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| y_scaler.transform(v)).collect();

        let mut k = self.kernel.gram(&xs);
        k.add_diagonal(self.noise + 1e-8);
        let chol = k.cholesky()?;
        let tmp = solve_lower(&chol, &ys);
        let alpha = solve_upper_from_lower(&chol, &tmp);

        self.x_train = xs;
        self.alpha = alpha;
        self.chol = Some(chol);
        self.x_scaler = Some(x_scaler);
        self.y_scaler = Some(y_scaler);
        self.y_std = Some(ys);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.posterior(x).mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_sine() -> GaussianProcess {
        let x: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 * 0.25]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin()).collect();
        let mut gp = GaussianProcess::new(Kernel::rbf(0.5), 1e-6);
        gp.fit(&x, &y).unwrap();
        gp
    }

    #[test]
    fn interpolates_smooth_function() {
        let gp = fit_sine();
        for &x in &[0.3, 1.7, 4.1] {
            assert!((gp.predict(&[x]) - x.sin()).abs() < 0.05, "at {x}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fit_sine();
        let near = gp.posterior(&[3.0]).std;
        let far = gp.posterior(&[20.0]).std;
        assert!(far > near * 5.0, "near {near}, far {far}");
    }

    #[test]
    fn posterior_std_is_small_at_training_points() {
        let gp = fit_sine();
        assert!(gp.posterior(&[1.0]).std < 0.05);
    }

    #[test]
    fn unfitted_returns_prior() {
        let gp = GaussianProcess::default_bo();
        let p = gp.posterior(&[0.0, 0.0]);
        assert_eq!(p.mean, 0.0);
        assert!((p.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_gp_does_not_interpolate_exactly() {
        let x = vec![vec![0.0], vec![0.0], vec![1.0]];
        let y = vec![0.0, 2.0, 1.0]; // conflicting observations at x = 0
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0), 0.5);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.0]);
        // With conflicting targets the posterior mean lands between them.
        assert!(p > 0.2 && p < 1.8, "mean {p}");
    }

    #[test]
    fn marginal_likelihood_prefers_the_right_length_scale() {
        // Data drawn from a smooth slow function: a matching (long) length scale
        // must out-score a wildly short one.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 0.5).sin()).collect();
        let lml = |ls: f64| {
            let mut gp = GaussianProcess::new(Kernel::rbf(ls), 1e-4);
            gp.fit(&x, &y).unwrap();
            gp.log_marginal_likelihood().unwrap()
        };
        assert!(
            lml(2.0) > lml(0.05),
            "long ls {} should beat tiny ls {}",
            lml(2.0),
            lml(0.05)
        );
        // Unfitted GP has no likelihood.
        assert!(GaussianProcess::default_bo()
            .log_marginal_likelihood()
            .is_none());
    }

    #[test]
    fn repeated_points_stay_numerically_stable() {
        let x = vec![vec![1.0]; 10];
        let y = vec![5.0; 10];
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0), 0.01);
        gp.fit(&x, &y).unwrap();
        assert!((gp.predict(&[1.0]) - 5.0).abs() < 0.5);
    }
}
