//! Segmented write-ahead log + checksummed snapshots + prefix-disciplined
//! recovery.
//!
//! On-disk layout inside a state dir:
//!
//! ```text
//! wal-<first_seq:016x>.log    segment: 8-byte magic "RHWAL001", then records
//!                             [u32 LE len][u32 LE crc32(payload)][payload]
//! snap-<seq:016x>.snap        snapshot: "RHSNAP01", u32 version, u32 crc,
//!                             u64 seq, u64 len, payload
//! *.quarantined               corrupt bytes preserved for post-mortems
//! ```
//!
//! Record `i` of a segment has sequence number `first_seq + i`; a snapshot
//! at `seq` captures the state after applying every record below `seq`.
//! [`Wal::open`] scans the dir, picks the newest *valid* snapshot, replays
//! the longest contiguous run of valid records after it, and quarantines
//! everything else — each dropped suffix, orphaned segment, or invalid
//! snapshot counts as one quarantine event with its byte size. Damaged
//! segments are salvaged in place (suffix preserved to a sidecar, file
//! truncated to the good prefix) so a corruption is counted exactly once,
//! not on every subsequent boot.

use std::ffi::OsString;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::crc;

/// Hard per-record bound, checked before any allocation on both the write
/// and the recovery path (a torn length word must never drive a huge
/// `Vec` reservation).
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Snapshot payload bound, same role as [`MAX_RECORD_BYTES`].
pub(crate) const MAX_SNAPSHOT_BYTES: u64 = 256 * 1024 * 1024;

/// Snapshot format version; a header carrying any other value is foreign
/// and quarantined, never half-parsed.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Default fsync batching: `sync_data` once every this many appends (and
/// always on [`Wal::sync`]).
pub(crate) const DEFAULT_SYNC_EVERY: u64 = 32;

const SEGMENT_MAGIC: [u8; 8] = *b"RHWAL001";
const SNAPSHOT_MAGIC: [u8; 8] = *b"RHSNAP01";
const RECORD_HEADER_BYTES: usize = 8;
const SNAPSHOT_HEADER_BYTES: usize = 32;

/// The newest valid snapshot found during recovery.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Records below this sequence number are folded into the payload.
    pub seq: u64,
    /// Caller-defined encoded state.
    pub payload: Vec<u8>,
}

/// Everything [`Wal::open`] learned from the state dir. Replaying
/// `records` (in order) on top of the state decoded from `snapshot`
/// reconstructs the durable state; the quarantine counters feed the
/// Dashboard.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest valid snapshot, if any survived.
    pub snapshot: Option<Snapshot>,
    /// `(seq, payload)` for the contiguous valid records after the
    /// snapshot, oldest first.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Quarantine events: each corrupt suffix, orphaned segment, or
    /// invalid snapshot counts once.
    pub quarantined: u64,
    /// Total bytes those events set aside.
    pub quarantined_bytes: u64,
    /// Sequence number the reopened WAL continues from.
    pub next_seq: u64,
}

/// Append-only writer over a state dir. Obtain via [`Wal::open`]; every
/// boot recovers first, then appends from `next_seq`.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Reused per-append encode buffer; grows to the largest record seen
    /// (bounded by [`MAX_RECORD_BYTES`]) and is cleared each append.
    buf: Vec<u8>,
    segment_first_seq: u64,
    next_seq: u64,
    sync_every: u64,
    unsynced: u64,
    records_written: u64,
    snapshots_written: u64,
}

impl Wal {
    /// Open (creating if needed) the state dir with default fsync batching.
    pub fn open(dir: &Path) -> io::Result<(Wal, Recovery)> {
        Wal::open_with(dir, DEFAULT_SYNC_EVERY)
    }

    /// [`Wal::open`] with an explicit fsync cadence (`sync_every` appends
    /// per `sync_data`; clamped to at least 1).
    pub fn open_with(dir: &Path, sync_every: u64) -> io::Result<(Wal, Recovery)> {
        fs::create_dir_all(dir)?;
        remove_stale_tmp(dir);
        let (segments, snapshots) = list_dir(dir)?;
        let mut rec = Recovery::default();

        // Newest valid snapshot wins; invalid ones are quarantined and
        // counted, older valid ones are merely stale (pruned later).
        for (seq, path) in snapshots.iter().rev() {
            let Ok(data) = fs::read(path) else {
                rec.quarantined = rec.quarantined.saturating_add(1);
                quarantine_file(path);
                continue;
            };
            match parse_snapshot(&data, *seq) {
                Some(payload) => {
                    rec.snapshot = Some(Snapshot { seq: *seq, payload });
                    break;
                }
                None => {
                    rec.quarantined = rec.quarantined.saturating_add(1);
                    rec.quarantined_bytes =
                        rec.quarantined_bytes.saturating_add(to_u64(data.len()));
                    quarantine_file(path);
                }
            }
        }
        rec.next_seq = rec.snapshot.as_ref().map(|s| s.seq).unwrap_or(0);

        // Walk segments oldest-first, keeping the contiguous chain. A gap
        // or a damaged record ends the chain; everything past it is
        // unreachable by the prefix discipline and is quarantined whole.
        let mut chain_broken = false;
        let mut tail: Option<(u64, u64, PathBuf)> = None;
        for (first_seq, path) in &segments {
            if chain_broken || *first_seq > rec.next_seq {
                chain_broken = true;
                rec.quarantined = rec.quarantined.saturating_add(1);
                let size = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                rec.quarantined_bytes = rec.quarantined_bytes.saturating_add(size);
                quarantine_file(path);
                continue;
            }
            let scan = scan_segment(path)?;
            let end_seq = first_seq.saturating_add(to_u64(scan.payloads.len()));
            for (i, payload) in scan.payloads.into_iter().enumerate() {
                let seq = first_seq.saturating_add(to_u64(i));
                if seq >= rec.next_seq {
                    rec.records.push((seq, payload));
                }
            }
            if end_seq > rec.next_seq {
                rec.next_seq = end_seq;
            }
            if scan.damaged {
                chain_broken = true;
                rec.quarantined = rec.quarantined.saturating_add(1);
                rec.quarantined_bytes = rec
                    .quarantined_bytes
                    .saturating_add(scan.total_bytes.saturating_sub(scan.good_bytes));
                salvage(path, scan.good_bytes)?;
            }
            tail = Some((*first_seq, end_seq, path.clone()));
        }

        // Append target: the last accepted segment iff it ends exactly at
        // the recovery cursor (always true unless it predates the
        // snapshot); otherwise a fresh segment starting at `next_seq`.
        let (file, segment_first_seq) = match tail {
            Some((first, end, path)) if end == rec.next_seq => {
                (OpenOptions::new().append(true).open(&path)?, first)
            }
            _ => (create_segment(dir, rec.next_seq)?, rec.next_seq),
        };

        let wal = Wal {
            dir: dir.to_path_buf(),
            file,
            buf: Vec::new(),
            segment_first_seq,
            next_seq: rec.next_seq,
            sync_every: sync_every.max(1),
            unsynced: 0,
            records_written: 0,
            snapshots_written: 0,
        };
        Ok((wal, rec))
    }

    /// Append one record, returning its sequence number. Durable after the
    /// next batched `sync_data` (every `sync_every` appends) or an explicit
    /// [`Wal::sync`].
    // rhlint:hot — one call per backend mutation while serving; reuses
    // `self.buf` (clear + extend), single `write_all`, no per-record
    // allocation.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let Ok(len) = u32::try_from(payload.len()) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL record exceeds u32 length prefix",
            ));
        };
        if len > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL record exceeds MAX_RECORD_BYTES",
            ));
        }
        self.buf.clear();
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf
            .extend_from_slice(&crc::crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.file.write_all(&self.buf)?;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.saturating_add(1);
        self.records_written = self.records_written.saturating_add(1);
        self.unsynced = self.unsynced.saturating_add(1);
        if self.unsynced >= self.sync_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(seq)
    }

    /// Force every appended record to stable storage (drain path).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Write a compacted snapshot of the caller's full state, rotate to a
    /// fresh segment, and prune everything the snapshot covers. Returns
    /// the snapshot's sequence number (== `next_seq` at call time).
    pub fn snapshot(&mut self, payload: &[u8]) -> io::Result<u64> {
        if to_u64(payload.len()) > MAX_SNAPSHOT_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot exceeds MAX_SNAPSHOT_BYTES",
            ));
        }
        let seq = self.next_seq;
        let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&crc::crc32(payload).to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&to_u64(payload.len()).to_le_bytes());
        bytes.extend_from_slice(payload);

        let final_path = self.dir.join(snapshot_name(seq));
        let mut tmp_path = final_path.as_os_str().to_os_string();
        tmp_path.push(".tmp");
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir);

        // The WAL must be durable before anything it covered disappears.
        self.sync()?;
        if self.segment_first_seq != seq {
            self.file = create_segment(&self.dir, seq)?;
            self.segment_first_seq = seq;
        }
        let (segments, snapshots) = list_dir(&self.dir)?;
        for (s, p) in segments {
            if s < seq {
                let _ = fs::remove_file(p);
            }
        }
        for (s, p) in snapshots {
            if s < seq {
                let _ = fs::remove_file(p);
            }
        }
        sync_dir(&self.dir);
        self.snapshots_written = self.snapshots_written.saturating_add(1);
        Ok(seq)
    }

    /// Sequence number the next [`Wal::append`] will return.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records appended by *this* handle (not lifetime-of-dir).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Snapshots written by *this* handle.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }
}

/// `usize` → `u64` without `as` (lossless on every supported target; the
/// saturation arm is unreachable but keeps the conversion total).
pub(crate) fn to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

pub(crate) fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.log")
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:016x}.snap")
}

/// Parse `<prefix><16 hex digits><suffix>` file names back to their
/// sequence number; anything else (including `*.quarantined` sidecars) is
/// not ours and is left alone.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// `(segments, snapshots)`, each sorted ascending by sequence number.
fn list_dir(dir: &Path) -> io::Result<(Vec<(u64, PathBuf)>, Vec<(u64, PathBuf)>)> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_seq(name, "wal-", ".log") {
            segments.push((seq, entry.path()));
        } else if let Some(seq) = parse_seq(name, "snap-", ".snap") {
            snapshots.push((seq, entry.path()));
        }
    }
    segments.sort();
    snapshots.sort();
    Ok((segments, snapshots))
}

/// Drop `*.tmp` leftovers from a snapshot interrupted before its rename.
fn remove_stale_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

struct SegScan {
    payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (magic included).
    good_bytes: u64,
    total_bytes: u64,
    damaged: bool,
}

/// Decode one segment: the longest valid record prefix plus whether a
/// corrupt suffix follows it. Corruption is data here, never `Err`.
fn scan_segment(path: &Path) -> io::Result<SegScan> {
    let data = fs::read(path)?;
    let mut scan = SegScan {
        payloads: Vec::new(),
        good_bytes: 0,
        total_bytes: to_u64(data.len()),
        damaged: false,
    };
    if data.get(..SEGMENT_MAGIC.len()) != Some(&SEGMENT_MAGIC[..]) {
        scan.damaged = true;
        return Ok(scan);
    }
    let mut offset = SEGMENT_MAGIC.len();
    loop {
        if offset == data.len() {
            break;
        }
        let Some(len) = read_u32(&data, offset) else {
            scan.damaged = true;
            break;
        };
        let Some(crc_at) = offset.checked_add(4) else {
            scan.damaged = true;
            break;
        };
        let Some(stored_crc) = read_u32(&data, crc_at) else {
            scan.damaged = true;
            break;
        };
        if len > MAX_RECORD_BYTES {
            scan.damaged = true;
            break;
        }
        let Ok(len_usize) = usize::try_from(len) else {
            scan.damaged = true;
            break;
        };
        let Some(body_start) = offset.checked_add(RECORD_HEADER_BYTES) else {
            scan.damaged = true;
            break;
        };
        let Some(body_end) = body_start.checked_add(len_usize) else {
            scan.damaged = true;
            break;
        };
        let Some(payload) = data.get(body_start..body_end) else {
            // Torn tail: the length word promises more bytes than exist.
            scan.damaged = true;
            break;
        };
        if crc::crc32(payload) != stored_crc {
            scan.damaged = true;
            break;
        }
        scan.payloads.push(payload.to_vec());
        offset = body_end;
    }
    scan.good_bytes = to_u64(offset);
    Ok(scan)
}

/// Validate and extract a snapshot payload; `None` means quarantine (bad
/// magic, foreign version, seq/filename mismatch, bad length, bad CRC).
fn parse_snapshot(data: &[u8], want_seq: u64) -> Option<Vec<u8>> {
    if data.get(..SNAPSHOT_MAGIC.len())? != &SNAPSHOT_MAGIC[..] {
        return None;
    }
    let version = read_u32(data, 8)?;
    if version != SNAPSHOT_VERSION {
        return None;
    }
    let stored_crc = read_u32(data, 12)?;
    let seq = read_u64(data, 16)?;
    if seq != want_seq {
        return None;
    }
    let len = read_u64(data, 24)?;
    if len > MAX_SNAPSHOT_BYTES {
        return None;
    }
    let len_usize = usize::try_from(len).ok()?;
    let end = SNAPSHOT_HEADER_BYTES.checked_add(len_usize)?;
    if end != data.len() {
        return None;
    }
    let payload = data.get(SNAPSHOT_HEADER_BYTES..end)?;
    if crc::crc32(payload) != stored_crc {
        return None;
    }
    Some(payload.to_vec())
}

fn read_u32(data: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let bytes: [u8; 4] = data.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

fn read_u64(data: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let bytes: [u8; 8] = data.get(at..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Preserve a damaged segment's corrupt suffix to a `.quarantined` sidecar
/// and truncate the live file to its good prefix, so the next boot sees a
/// clean segment and this corruption is counted exactly once.
fn salvage(path: &Path, good_bytes: u64) -> io::Result<()> {
    let data = fs::read(path)?;
    let good = usize::try_from(good_bytes).unwrap_or(data.len());
    if let Some(suffix) = data.get(good..) {
        if !suffix.is_empty() {
            let mut side = path.as_os_str().to_os_string();
            side.push(".quarantined");
            let _ = fs::write(side, suffix);
        }
    }
    let magic_len = to_u64(SEGMENT_MAGIC.len());
    if good_bytes < magic_len {
        // Even the magic was bad: rebuild an empty segment in place.
        let mut f = OpenOptions::new().write(true).truncate(true).open(path)?;
        f.write_all(&SEGMENT_MAGIC)?;
        f.sync_data()?;
    } else {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(good_bytes)?;
        f.sync_data()?;
    }
    Ok(())
}

/// Move a wholly-unusable file aside (invalid snapshot, orphaned segment).
fn quarantine_file(path: &Path) {
    let mut side: OsString = path.as_os_str().to_os_string();
    side.push(".quarantined");
    let _ = fs::rename(path, side);
}

/// Create (or reopen, if an empty one exists from a previous boot) the
/// segment whose first record will be `first_seq`, magic written + synced.
fn create_segment(dir: &Path, first_seq: u64) -> io::Result<File> {
    let path = dir.join(segment_name(first_seq));
    let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
    if f.metadata()?.len() == 0 {
        f.write_all(&SEGMENT_MAGIC)?;
        f.sync_data()?;
        sync_dir(dir);
    }
    Ok(f)
}

/// Best-effort directory fsync so renames/creates survive power loss; a
/// platform that cannot fsync a dir handle degrades gracefully.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}
