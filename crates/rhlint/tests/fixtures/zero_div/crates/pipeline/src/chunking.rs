//! RH030 fixture: dividing by a value derived from an ETL file read.
//!
//! One positive — `total / chunks` where `chunks` came from file contents
//! and zero was never excluded — and two negatives: an explicit `== 0`
//! guard, and a `.max(1)` floor (which also gives the interval pass a
//! zero-excluding range).

fn rows_per_chunk(total: u64, manifest: &str) -> u64 {
    let raw = std::fs::read_to_string(manifest).unwrap_or_default();
    let chunks = raw.len() as u64;
    total / chunks
}

fn rows_per_chunk_guarded(total: u64, manifest: &str) -> u64 {
    let raw = std::fs::read_to_string(manifest).unwrap_or_default();
    let chunks = raw.len() as u64;
    if chunks == 0 {
        return total;
    }
    total / chunks
}

fn rows_per_chunk_floored(total: u64, manifest: &str) -> u64 {
    let raw = std::fs::read_to_string(manifest).unwrap_or_default();
    let chunks = (raw.len() as u64).max(1);
    total / chunks
}
