//! Fixture optimizers crate: one raw `TcpStream::connect` in a scoped crate —
//! the RH019 violation this fixture exists to trigger.

pub mod space;

use space::{app_level, query_level};

fn dims() -> usize {
    query_level().len() + app_level().len()
}

fn probe_peer() -> usize {
    let Ok(_stream) = std::net::TcpStream::connect("127.0.0.1:9") else {
        return 0;
    };
    dims()
}
