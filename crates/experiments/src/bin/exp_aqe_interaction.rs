//! Regenerates the `exp_aqe_interaction` extension experiment. Pass `--quick` for a
//! smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_aqe_interaction::run(scale).print();
}
