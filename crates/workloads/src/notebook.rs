//! Synthetic "customer notebook" population — the stand-in for the paper's private
//! production traces (§6.3: 60+ internal notebooks, 416 external query signatures).
//!
//! Each notebook is a recurrent Spark application with a stable `artifact_id` and a
//! handful of query signatures. Per the paper's description of production reality, the
//! population mixes: varying input sizes run-to-run, mostly-moderate noise with a
//! minority of pathologically noisy signatures (the ones the guardrail must catch),
//! and job sizes from micro-batches to long-running pipelines.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use sparksim::noise::NoiseSpec;
use sparksim::plan::PlanNode;

use crate::dynamic::DataSchedule;
use crate::generator::{random_plan, PlanGenConfig};

/// One recurrent query inside a notebook.
#[derive(Debug, Clone)]
pub struct NotebookQuery {
    /// Stable query-signature id (unique across the population).
    pub signature: u64,
    /// The logical plan template (scaled by the schedule at each run).
    pub plan: PlanNode,
    /// How this query's input size evolves across recurrences.
    pub schedule: DataSchedule,
    /// This signature's observational noise.
    pub noise: NoiseSpec,
}

/// A recurrent customer application.
#[derive(Debug, Clone)]
pub struct Notebook {
    /// Stable artifact hash (the paper's `artifact_id`, §4.4).
    pub artifact_id: String,
    /// The queries the notebook executes each run.
    pub queries: Vec<NotebookQuery>,
}

/// Population-level generation knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of notebooks to generate.
    pub notebooks: usize,
    /// Queries per notebook, inclusive range.
    pub queries_per_notebook: (usize, usize),
    /// Fraction of query signatures with pathological (high) noise.
    pub pathological_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            notebooks: 60,
            queries_per_notebook: (1, 8),
            pathological_fraction: 0.12,
        }
    }
}

/// Generate a deterministic notebook population.
pub fn generate_population(config: &PopulationConfig, seed: u64) -> Vec<Notebook> {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan_cfg = PlanGenConfig::default();
    let mut next_signature: u64 = 1;
    let mut notebooks = Vec::with_capacity(config.notebooks);

    for nb in 0..config.notebooks {
        let n_queries =
            rng.random_range(config.queries_per_notebook.0..=config.queries_per_notebook.1);
        let mut queries = Vec::with_capacity(n_queries);
        for _ in 0..n_queries {
            let signature = next_signature;
            next_signature += 1;
            let plan_seed = rng.random_range(0..u64::MAX / 2);
            let plan = random_plan(&plan_cfg, plan_seed);

            let schedule = match rng.random_range(0..4u8) {
                0 => DataSchedule::Constant {
                    size: rng.random_range(0.5..2.0f64),
                },
                1 => DataSchedule::LinearIncreasing {
                    start: rng.random_range(0.5..1.5f64),
                    slope: rng.random_range(0.001..0.02f64),
                },
                2 => DataSchedule::Periodic {
                    base: rng.random_range(0.5..1.0f64),
                    amplitude: rng.random_range(0.2..1.5f64),
                    k: rng.random_range(3..20u32),
                },
                _ => DataSchedule::RandomWalk {
                    start: 1.0,
                    volatility: rng.random_range(0.02..0.15f64),
                    lo: 0.3,
                    hi: 3.0,
                    seed: rng.random_range(0..u64::MAX / 2),
                },
            };

            let noise = if rng.random_range(0.0..1.0) < config.pathological_fraction {
                NoiseSpec::high()
            } else {
                NoiseSpec {
                    fluctuation: rng.random_range(0.05..0.3f64),
                    spike: rng.random_range(0.0..0.4f64),
                }
            };

            queries.push(NotebookQuery {
                signature,
                plan,
                schedule,
                noise,
            });
        }
        notebooks.push(Notebook {
            artifact_id: format!("artifact-{nb:04}"),
            queries,
        });
    }
    notebooks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let cfg = PopulationConfig::default();
        let a = generate_population(&cfg, 7);
        let b = generate_population(&cfg, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.artifact_id, y.artifact_id);
            assert_eq!(x.queries.len(), y.queries.len());
            for (qx, qy) in x.queries.iter().zip(&y.queries) {
                assert_eq!(qx.signature, qy.signature);
                assert_eq!(qx.plan, qy.plan);
            }
        }
    }

    #[test]
    fn signatures_are_globally_unique() {
        let cfg = PopulationConfig {
            notebooks: 30,
            ..PopulationConfig::default()
        };
        let pop = generate_population(&cfg, 1);
        let sigs: Vec<u64> = pop
            .iter()
            .flat_map(|n| n.queries.iter().map(|q| q.signature))
            .collect();
        let uniq: std::collections::HashSet<_> = sigs.iter().collect();
        assert_eq!(uniq.len(), sigs.len());
    }

    #[test]
    fn pathological_fraction_is_roughly_respected() {
        let cfg = PopulationConfig {
            notebooks: 200,
            queries_per_notebook: (2, 4),
            pathological_fraction: 0.2,
        };
        let pop = generate_population(&cfg, 3);
        let all: Vec<&NotebookQuery> = pop.iter().flat_map(|n| n.queries.iter()).collect();
        let high = all.iter().filter(|q| q.noise.fluctuation >= 1.0).count() as f64;
        let frac = high / all.len() as f64;
        assert!((frac - 0.2).abs() < 0.07, "pathological fraction {frac}");
    }

    #[test]
    fn query_counts_respect_bounds() {
        let cfg = PopulationConfig {
            notebooks: 50,
            queries_per_notebook: (2, 5),
            pathological_fraction: 0.1,
        };
        for nb in generate_population(&cfg, 9) {
            assert!((2..=5).contains(&nb.queries.len()));
        }
    }

    #[test]
    fn artifact_ids_are_stable_and_distinct() {
        let pop = generate_population(&PopulationConfig::default(), 0);
        let ids: std::collections::HashSet<_> = pop.iter().map(|n| n.artifact_id.clone()).collect();
        assert_eq!(ids.len(), pop.len());
        assert!(pop[0].artifact_id.starts_with("artifact-"));
    }
}
