//! Spark-style event log. Every simulated execution can emit a JSON-lines event
//! stream, which the pipeline crate's Embedding ETL consumes exactly as Rockhopper's
//! backend consumes real Spark event files (§5, Figure 7).

use serde::{Deserialize, Serialize};

use crate::config::SparkConf;
use crate::metrics::QueryMetrics;

/// One event in the log of a Spark application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event")]
pub enum SparkEvent {
    /// Application startup, carrying the recurrent-workload identity.
    ApplicationStart {
        /// Unique per-run application id.
        app_id: String,
        /// Stable artifact hash identifying the recurrent workload (§4.4).
        artifact_id: String,
    },
    /// A query began executing.
    QueryStart {
        /// Application this query belongs to.
        app_id: String,
        /// Stable query-signature hash (one per distinct execution plan, §4.2).
        query_signature: u64,
        /// The configuration the query ran with.
        conf: SparkConf,
        /// Serialized logical-plan summary (operator type names, pre-order).
        plan_summary: Vec<String>,
        /// Workload embedding computed client-side at compile time (opaque to the
        /// simulator; the pipeline's Embedding ETL consumes it).
        embedding: Vec<f64>,
    },
    /// A stage finished.
    StageCompleted {
        /// Owning application.
        app_id: String,
        /// Owning query signature.
        query_signature: u64,
        /// Stage id within the query.
        stage_id: usize,
        /// Tasks executed.
        tasks: usize,
        /// Stage duration, ms.
        duration_ms: f64,
        /// Bytes spilled by the stage.
        spilled_bytes: f64,
    },
    /// A query finished, with its full metrics.
    QueryEnd {
        /// Owning application.
        app_id: String,
        /// Query signature.
        query_signature: u64,
        /// Collected metrics.
        metrics: QueryMetrics,
    },
    /// Application shutdown.
    ApplicationEnd {
        /// Application id.
        app_id: String,
    },
}

impl SparkEvent {
    /// Serialize to one JSON line. Serializing this plain data enum cannot fail;
    /// if it ever did, the empty line is skipped by every JSONL consumer.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parse one JSON line; `None` on malformed input (the ETL skips bad lines as a
    /// real log processor must).
    pub(crate) fn from_json_line(line: &str) -> Option<SparkEvent> {
        serde_json::from_str(line).ok()
    }

    /// The application id this event belongs to.
    pub fn app_id(&self) -> &str {
        match self {
            SparkEvent::ApplicationStart { app_id, .. }
            | SparkEvent::QueryStart { app_id, .. }
            | SparkEvent::StageCompleted { app_id, .. }
            | SparkEvent::QueryEnd { app_id, .. }
            | SparkEvent::ApplicationEnd { app_id } => app_id,
        }
    }
}

/// Serialize a batch of events to a JSON-lines document.
pub fn to_jsonl(events: &[SparkEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines document, skipping malformed lines.
pub fn from_jsonl(doc: &str) -> Vec<SparkEvent> {
    from_jsonl_lossy(doc).0
}

/// Parse a JSON-lines document, *quarantining* malformed lines instead of
/// silently dropping them: returns the parsed events plus the number of lines
/// that failed to parse (truncated writes, in-flight corruption — see
/// [`crate::fault::mangle_jsonl`]). Blank lines are not counted.
pub fn from_jsonl_lossy(doc: &str) -> (Vec<SparkEvent>, usize) {
    let mut events = Vec::new();
    let mut quarantined = 0usize;
    for line in doc.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match SparkEvent::from_json_line(line) {
            Some(e) => events.push(e),
            None => quarantined += 1,
        }
    }
    (events, quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SparkEvent> {
        vec![
            SparkEvent::ApplicationStart {
                app_id: "app-1".into(),
                artifact_id: "artifact-9".into(),
            },
            SparkEvent::QueryStart {
                app_id: "app-1".into(),
                query_signature: 42,
                conf: SparkConf::default(),
                plan_summary: vec!["HashAggregate".into(), "TableScan".into()],
                embedding: vec![1.5, 2.5],
            },
            SparkEvent::ApplicationEnd {
                app_id: "app-1".into(),
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = sample_events();
        let doc = to_jsonl(&events);
        assert_eq!(doc.lines().count(), 3);
        let back = from_jsonl(&doc);
        assert_eq!(back, events);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let doc = format!(
            "{}\nnot json at all\n{{\"event\":\"Unknown\"}}\n",
            sample_events()[0].to_json_line()
        );
        let back = from_jsonl(&doc);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn lossy_parse_counts_quarantined_lines() {
        let doc = format!(
            "{}\nnot json at all\n\n{{\"event\":\"Unknown\"}}\n{}\n",
            sample_events()[0].to_json_line(),
            sample_events()[2].to_json_line(),
        );
        let (events, quarantined) = from_jsonl_lossy(&doc);
        assert_eq!(events.len(), 2);
        assert_eq!(quarantined, 2, "blank lines are not quarantined");
    }

    #[test]
    fn app_id_is_extracted_from_every_variant() {
        for e in sample_events() {
            assert_eq!(e.app_id(), "app-1");
        }
    }
}
