//! Call-graph construction and the determinism-taint analysis.
//!
//! Every function in [`crate::DETERMINISM_SCOPE`] is a deterministic entry
//! point: the simulator and optimizer crates promise bit-for-bit reproducible
//! results under a fixed seed (paper Eq (8) — the noise model is *sampled*,
//! so the only legitimate randomness flows through seeded `StdRng`s). The
//! lexical rules catch sinks written directly inside those crates; this pass
//! walks the call graph so a sink hidden in ANOTHER crate behind use-aliases
//! or helper indirection is caught too — the class the token scanner provably
//! misses.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

use crate::parser::{Block, Expr, LitKind, Stmt};
use crate::symbols::{FnInfo, Target, Workspace};
use crate::{Diagnostic, Rule, DETERMINISM_SCOPE};

/// What a tainted function touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    WallClock,
    AmbientRng,
    HashIter,
}

#[derive(Clone, Debug)]
pub struct Sink {
    pub kind: SinkKind,
    pub line: u32,
    pub what: String,
}

/// Per-function analysis results.
#[derive(Default)]
pub struct FnFacts {
    /// Callees, as indexes into [`Workspace::fns`].
    pub calls: BTreeSet<usize>,
    pub sinks: Vec<Sink>,
}

/// A local type environment: variable name → type head name. Seeded from the
/// signature, extended at `let` bindings whose type is annotated or inferable.
#[derive(Clone, Default)]
pub struct TypeEnv {
    vars: BTreeMap<String, String>,
    self_ty: Option<String>,
}

/// Collection types whose iteration order varies run to run.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that iterate their receiver.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "extend",
];

/// std collection constructors recognized without resolution.
const STD_CONTAINERS: [&str; 8] = [
    "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Vec", "VecDeque", "String", "Box",
];

impl TypeEnv {
    pub fn for_fn(fi: &FnInfo) -> TypeEnv {
        let mut env = TypeEnv::default();
        env.self_ty = fi.self_ty.clone();
        if let Some(ty) = &fi.self_ty {
            env.vars.insert("self".to_string(), ty.clone());
        }
        for (name, ty) in &fi.item.params {
            if !name.is_empty() {
                let head = ty.head_name();
                if !head.is_empty() {
                    env.vars.insert(name.clone(), head.to_string());
                }
            }
        }
        env
    }

    fn bind(&mut self, name: &str, ty: String) {
        self.vars.insert(name.to_string(), ty);
    }

    /// Infer the head type name of an expression, if locally knowable.
    pub fn infer(&self, ws: &Workspace, fi: &FnInfo, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    if let Some(t) = self.vars.get(&segs[0]) {
                        return Some(t.clone());
                    }
                }
                match resolve_in(ws, fi, segs) {
                    Target::Type(t) => Some(t),
                    _ => None,
                }
            }
            Expr::Lit { kind, text, .. } => match kind {
                LitKind::Float => Some(float_suffix(text).unwrap_or("f64").to_string()),
                LitKind::Int => Some(int_suffix(text).unwrap_or("{integer}").to_string()),
                LitKind::Bool => Some("bool".to_string()),
                LitKind::Str => Some("str".to_string()),
                LitKind::Char => Some("char".to_string()),
            },
            Expr::Cast { ty, .. } => Some(ty.head_name().to_string()),
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
                self.infer(ws, fi, expr)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if matches!(
                    op.as_str(),
                    "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"
                ) {
                    Some("bool".to_string())
                } else {
                    self.infer(ws, fi, lhs).or_else(|| self.infer(ws, fi, rhs))
                }
            }
            Expr::StructLit { path, .. } => path.last().cloned(),
            Expr::Field { base, name, .. } => {
                let base_ty = self.infer(ws, fi, base)?;
                ws.field_type(&base_ty, name)
                    .map(|t| t.head_name().to_string())
            }
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = &**callee {
                    // std container constructors: `HashMap::new()` etc.
                    if segs.len() == 2
                        && STD_CONTAINERS.contains(&segs[0].as_str())
                        && matches!(
                            segs[1].as_str(),
                            "new" | "with_capacity" | "default" | "from"
                        )
                    {
                        return Some(segs[0].clone());
                    }
                    match resolve_in(ws, fi, segs) {
                        Target::Fns(idxs) => common_ret(ws, &idxs),
                        // Tuple-struct / variant constructor.
                        Target::Type(t) => Some(t),
                        _ => None,
                    }
                } else {
                    None
                }
            }
            Expr::MethodCall { recv, method, .. } => {
                let recv_ty = self.infer(ws, fi, recv);
                if let Some(ty) = &recv_ty {
                    let idxs = ws.methods_of(ty, method);
                    if !idxs.is_empty() {
                        return common_ret(ws, &idxs);
                    }
                }
                builtin_method_ret(recv_ty.as_deref(), method)
            }
            Expr::If { then, else_, .. } => {
                // Both branches agree or nothing.
                let t = block_tail_type(self, ws, fi, then)?;
                match else_ {
                    Some(e) => {
                        let u = self.infer(ws, fi, e)?;
                        (t == u).then_some(t)
                    }
                    None => None,
                }
            }
            Expr::Block { block, .. } => block_tail_type(self, ws, fi, block),
            _ => None,
        }
    }
}

fn block_tail_type(env: &TypeEnv, ws: &Workspace, fi: &FnInfo, block: &Block) -> Option<String> {
    match block.stmts.last() {
        Some(Stmt::Expr { expr, semi: false }) => env.infer(ws, fi, expr),
        _ => None,
    }
}

fn float_suffix(text: &str) -> Option<&'static str> {
    if text.ends_with("f32") {
        Some("f32")
    } else if text.ends_with("f64") {
        Some("f64")
    } else {
        None
    }
}

fn int_suffix(text: &str) -> Option<&'static str> {
    for s in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ] {
        if text.ends_with(s) {
            return Some(match s {
                "usize" => "usize",
                "isize" => "isize",
                "u128" => "u128",
                "i128" => "i128",
                "u64" => "u64",
                "i64" => "i64",
                "u32" => "u32",
                "i32" => "i32",
                "u16" => "u16",
                "i16" => "i16",
                "u8" => "u8",
                _ => "i8",
            });
        }
    }
    None
}

/// Return type shared by every candidate, if they agree.
fn common_ret(ws: &Workspace, idxs: &[usize]) -> Option<String> {
    let mut ret: Option<String> = None;
    for &i in idxs {
        let head = ws.fns()[i].item.ret.as_ref()?.head_name().to_string();
        if head.is_empty() {
            return None;
        }
        match &ret {
            None => ret = Some(head),
            Some(r) if *r == head => {}
            Some(_) => return None,
        }
    }
    ret
}

/// Known-return builtin methods (receiver-type aware where it matters).
fn builtin_method_ret(recv_ty: Option<&str>, method: &str) -> Option<String> {
    match method {
        "len" | "count" | "capacity" => Some("usize".to_string()),
        "is_empty" | "contains" | "contains_key" | "any" | "all" => Some("bool".to_string()),
        // Identity: numeric combinators preserve the receiver type.
        "max" | "min" | "clamp" | "abs" | "round" | "floor" | "ceil" | "trunc" | "sqrt" | "ln"
        | "exp" | "powf" | "powi" | "recip" | "signum" | "to_owned" | "clone"
        | "saturating_add" | "saturating_sub" | "saturating_mul" | "wrapping_add"
        | "wrapping_sub" | "wrapping_mul" => recv_ty.map(str::to_string),
        "unsigned_abs" => match recv_ty {
            Some("i8") => Some("u8".to_string()),
            Some("i16") => Some("u16".to_string()),
            Some("i32") => Some("u32".to_string()),
            Some("i64") => Some("u64".to_string()),
            Some("isize") => Some("usize".to_string()),
            _ => None,
        },
        _ => None,
    }
}

/// Resolve a path as seen from `fi`'s module, substituting `Self`.
fn resolve_in(ws: &Workspace, fi: &FnInfo, segs: &[String]) -> Target {
    if segs.first().map(String::as_str) == Some("Self") {
        if let Some(self_ty) = &fi.self_ty {
            let mut substituted = segs.to_vec();
            substituted[0] = self_ty.clone();
            return ws.resolve(&fi.krate, &fi.module, &substituted);
        }
        return Target::Unknown;
    }
    ws.resolve(&fi.krate, &fi.module, segs)
}

/// A statement/expression visitor over a function body. Callbacks receive the
/// type environment as of that point in the body.
pub trait Visitor {
    fn on_stmt(&mut self, _env: &TypeEnv, _stmt: &Stmt) {}
    fn on_expr(&mut self, _env: &TypeEnv, _expr: &Expr) {}
}

/// Walk a function body in statement order.
pub fn visit_fn<V: Visitor>(ws: &Workspace, fi: &FnInfo, visit: &mut V) {
    if let Some(body) = fi.item.body.clone() {
        let mut env = TypeEnv::for_fn(fi);
        visit_block(ws, fi, &body, &mut env, visit);
    }
}

fn visit_block<V: Visitor>(
    ws: &Workspace,
    fi: &FnInfo,
    block: &Block,
    env: &mut TypeEnv,
    visit: &mut V,
) {
    for stmt in &block.stmts {
        visit.on_stmt(env, stmt);
        match stmt {
            Stmt::Let { name, ty, init, .. } => {
                if let Some(e) = init {
                    visit_expr(ws, fi, e, env, visit);
                }
                if let Some(n) = name {
                    let head = ty
                        .as_ref()
                        .map(|t| t.head_name().to_string())
                        .filter(|h| !h.is_empty())
                        .or_else(|| init.as_ref().and_then(|e| env.infer(ws, fi, e)));
                    if let Some(h) = head {
                        env.bind(n, h);
                    }
                }
            }
            Stmt::Expr { expr, .. } => visit_expr(ws, fi, expr, env, visit),
            Stmt::Item(_) => {}
        }
    }
}

fn visit_expr<V: Visitor>(ws: &Workspace, fi: &FnInfo, e: &Expr, env: &mut TypeEnv, visit: &mut V) {
    visit.on_expr(env, e);
    match e {
        Expr::Call { callee, args, .. } => {
            visit_expr(ws, fi, callee, env, visit);
            for a in args {
                visit_expr(ws, fi, a, env, visit);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            visit_expr(ws, fi, recv, env, visit);
            for a in args {
                visit_expr(ws, fi, a, env, visit);
            }
        }
        Expr::Field { base, .. } => visit_expr(ws, fi, base, env, visit),
        Expr::Index { base, index, .. } => {
            visit_expr(ws, fi, base, env, visit);
            visit_expr(ws, fi, index, env, visit);
        }
        Expr::Cast { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Closure { body: expr, .. } => visit_expr(ws, fi, expr, env, visit),
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr(ws, fi, lhs, env, visit);
            visit_expr(ws, fi, rhs, env, visit);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                visit_expr(ws, fi, v, env, visit);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                visit_expr(ws, fi, a, env, visit);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            visit_expr(ws, fi, scrutinee, env, visit);
            for arm in arms {
                let mut inner = env.clone();
                if let Some(g) = &arm.guard {
                    visit_expr(ws, fi, g, &mut inner, visit);
                }
                visit_expr(ws, fi, &arm.body, &mut inner, visit);
            }
        }
        Expr::If {
            cond, then, else_, ..
        } => {
            visit_expr(ws, fi, cond, env, visit);
            let mut t_env = env.clone();
            visit_block(ws, fi, then, &mut t_env, visit);
            if let Some(el) = else_ {
                let mut e_env = env.clone();
                visit_expr(ws, fi, el, &mut e_env, visit);
            }
        }
        Expr::Loop { body, .. } => {
            let mut inner = env.clone();
            visit_block(ws, fi, body, &mut inner, visit);
        }
        Expr::While { cond, body, .. } => {
            visit_expr(ws, fi, cond, env, visit);
            let mut inner = env.clone();
            visit_block(ws, fi, body, &mut inner, visit);
        }
        Expr::For { iter, body, .. } => {
            visit_expr(ws, fi, iter, env, visit);
            let mut inner = env.clone();
            visit_block(ws, fi, body, &mut inner, visit);
        }
        Expr::Block { block, .. } => {
            let mut inner = env.clone();
            visit_block(ws, fi, block, &mut inner, visit);
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for el in elems {
                visit_expr(ws, fi, el, env, visit);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(l) = lo {
                visit_expr(ws, fi, l, env, visit);
            }
            if let Some(h) = hi {
                visit_expr(ws, fi, h, env, visit);
            }
        }
        Expr::Return {
            expr: Some(inner), ..
        } => visit_expr(ws, fi, inner, env, visit),
        _ => {}
    }
}

/// Analyze every function: call edges plus determinism sinks.
pub fn analyze(ws: &Workspace) -> Vec<FnFacts> {
    struct Collector<'a> {
        ws: &'a Workspace,
        fi: &'a FnInfo,
        facts: FnFacts,
    }
    impl Visitor for Collector<'_> {
        fn on_expr(&mut self, env: &TypeEnv, e: &Expr) {
            collect(self.ws, self.fi, env, e, &mut self.facts);
        }
    }
    let mut all = Vec::with_capacity(ws.fns().len());
    for fi in ws.fns() {
        let mut c = Collector {
            ws,
            fi,
            facts: FnFacts::default(),
        };
        visit_fn(ws, fi, &mut c);
        all.push(c.facts);
    }
    all
}

fn collect(ws: &Workspace, fi: &FnInfo, env: &TypeEnv, e: &Expr, facts: &mut FnFacts) {
    match e {
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, line } = &**callee {
                match resolve_in(ws, fi, segs) {
                    Target::Fns(idxs) => facts.calls.extend(idxs),
                    Target::External(expanded) => {
                        if let Some(sink) = external_sink(&expanded) {
                            facts.sinks.push(Sink {
                                kind: sink,
                                line: *line,
                                what: expanded.join("::"),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        Expr::MethodCall {
            recv, method, line, ..
        } => {
            let recv_ty = env.infer(ws, fi, recv);
            if let Some(ty) = &recv_ty {
                if HASH_TYPES.contains(&ty.as_str()) && ITER_METHODS.contains(&method.as_str()) {
                    facts.sinks.push(Sink {
                        kind: SinkKind::HashIter,
                        line: *line,
                        what: format!("{ty}::{method}"),
                    });
                }
                let idxs = ws.methods_of(ty, method);
                if !idxs.is_empty() {
                    facts.calls.extend(idxs);
                    return;
                }
            }
            // Unknown receiver: link only if the method name is unique
            // workspace-wide (under-approximation, no false edges).
            let named = ws.methods_named(method);
            if named.len() == 1 {
                facts.calls.extend(named);
            }
        }
        Expr::For { iter, line, .. } => {
            if let Some(ty) = env.infer(ws, fi, iter) {
                if HASH_TYPES.contains(&ty.as_str()) {
                    facts.sinks.push(Sink {
                        kind: SinkKind::HashIter,
                        line: *line,
                        what: format!("for-loop over {ty}"),
                    });
                }
            }
        }
        _ => {}
    }
}

/// Classify a fully-expanded external path as a determinism sink.
fn external_sink(segs: &[String]) -> Option<SinkKind> {
    let last = segs.last().map(String::as_str).unwrap_or("");
    let penult = segs
        .len()
        .checked_sub(2)
        .map(|i| segs[i].as_str())
        .unwrap_or("");
    if last == "now" && matches!(penult, "Instant" | "SystemTime") {
        return Some(SinkKind::WallClock);
    }
    if segs.first().map(String::as_str) == Some("rand") {
        if last == "thread_rng" || last == "rng" {
            return Some(SinkKind::AmbientRng);
        }
    }
    if matches!(last, "from_entropy" | "from_os_rng") || segs.iter().any(|s| s == "OsRng") {
        return Some(SinkKind::AmbientRng);
    }
    None
}

/// The determinism-taint rule (RH013): BFS over the call graph from every
/// non-test function in a determinism-scope crate; flag reachable sinks that
/// live OUTSIDE those crates (sinks inside them are the lexical rules' job).
pub fn determinism_taint(ws: &Workspace) -> Vec<Diagnostic> {
    let facts = analyze(ws);
    let fns = ws.fns();

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    for (i, fi) in fns.iter().enumerate() {
        if DETERMINISM_SCOPE.contains(&fi.krate.as_str()) && !fi.cfg_test && !fi.trait_decl {
            parent.insert(i, None);
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &callee in &facts[cur].calls {
            if fns[callee].cfg_test {
                continue;
            }
            parent.entry(callee).or_insert_with(|| {
                queue.push_back(callee);
                Some(cur)
            });
        }
    }

    let mut seen: BTreeSet<(PathBuf, usize, SinkKind)> = BTreeSet::new();
    let mut out = Vec::new();
    for (&idx, _) in &parent {
        let fi = &fns[idx];
        if DETERMINISM_SCOPE.contains(&fi.krate.as_str()) {
            continue;
        }
        for sink in &facts[idx].sinks {
            let file = ws.files()[fi.file].rel.clone();
            let key = (file.clone(), sink.line as usize, sink.kind);
            if !seen.insert(key) {
                continue;
            }
            let path = call_path(ws, &parent, idx);
            let noun = match sink.kind {
                SinkKind::WallClock => "reads the wall clock via",
                SinkKind::AmbientRng => "draws ambient (unseeded) randomness via",
                SinkKind::HashIter => "iterates a hash-ordered collection via",
            };
            out.push(Diagnostic {
                file,
                line: sink.line as usize,
                rule: Rule::DeterminismTaint,
                message: format!(
                    "`{}` is reachable from deterministic code ({path}) and {noun} `{}`; \
                     thread seeded randomness / ordered collections through instead",
                    qualified(fi),
                    sink.what
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn qualified(fi: &FnInfo) -> String {
    match &fi.self_ty {
        Some(ty) => format!("{}::{}::{}", fi.krate, ty, fi.name),
        None => format!("{}::{}", fi.krate, fi.name),
    }
}

fn call_path(ws: &Workspace, parent: &BTreeMap<usize, Option<usize>>, mut idx: usize) -> String {
    let mut chain = vec![idx];
    let mut fuel = 32;
    while let Some(Some(p)) = parent.get(&idx) {
        chain.push(*p);
        idx = *p;
        fuel -= 1;
        if fuel == 0 {
            break;
        }
    }
    chain.reverse();
    chain
        .iter()
        .map(|&i| format!("`{}`", qualified(&ws.fns()[i])))
        .collect::<Vec<_>>()
        .join(" → ")
}
