//! Regenerates the paper's `exp_ablation_window` experiment. Pass `--quick` for a smoke run.

fn main() {
    let scale = experiments::Scale::from_args();
    experiments::exp_ablation_window::run(scale).print();
}
