//! A deterministic, memory-bounded LRU map for per-signature backend state.
//!
//! The backend thread serializes every mutation, so recency is defined by a
//! monotone logical tick rather than wall-clock time: `get`/`get_mut`/`touch`
//! bump the entry's tick, `peek` does not, and eviction always removes the
//! entry with the smallest tick. Given the same operation sequence the map
//! evicts the same keys in the same order at any thread count — the property
//! the cross-shard determinism gates rely on (DESIGN.md §11).
//!
//! The recency index is a `BTreeMap<tick, key>`; every tick is unique, so the
//! index is a strict total order and `pop_first`-style eviction is O(log n).

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// One stored value with its recency tick.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    tick: u64,
}

/// A capacity-bounded map with least-recently-used eviction.
///
/// Not a tracked collection head for growth lints on purpose: every insert
/// path below checks `len` against `capacity` and evicts before growing, so
/// `len() <= capacity()` is an invariant, not a hope.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    next_tick: u64,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map holding at most `capacity` entries (floored at 1 — a
    /// zero-capacity cache could never admit the entry it is asked for).
    pub fn new(capacity: usize) -> LruMap<K, V> {
        LruMap {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_tick: 0,
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted over this map's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `key` is present (does not touch recency).
    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Read without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// Read and mark `key` most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.touch(key);
        self.map.get(key).map(|s| &s.value)
    }

    /// Mutable read; marks `key` most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.touch(key);
        self.map.get_mut(key).map(|s| &mut s.value)
    }

    /// Mark `key` most recently used if present.
    fn touch(&mut self, key: &K) {
        let tick = self.next_tick;
        if let Some(slot) = self.map.get_mut(key) {
            self.recency.remove(&slot.tick);
            slot.tick = tick;
            self.recency.insert(tick, key.clone());
            self.next_tick += 1;
        }
    }

    /// Insert `value` under `key`, marking it most recently used. When the
    /// key is new and the map is full, the least-recently-used entry is
    /// evicted first and returned so the caller can spill it durably.
    /// Replacing an existing key returns the replaced value and never evicts.
    pub fn insert(&mut self, key: K, value: V) -> Inserted<K, V> {
        if let Some(slot) = self.map.get_mut(&key) {
            let old = std::mem::replace(&mut slot.value, value);
            self.touch(&key);
            return Inserted {
                replaced: Some(old),
                evicted: None,
            };
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let tick = self.next_tick;
        self.next_tick += 1;
        self.recency.insert(tick, key.clone());
        self.map.insert(key, Slot { value, tick });
        Inserted {
            replaced: None,
            evicted,
        }
    }

    /// Get `key` (marking it most recently used), inserting `make()` first
    /// when absent — evicting the least-recently-used entry if the map is
    /// full. Total by construction: the entry is present on both arms, so
    /// there is no failure path to unwrap. The evicted entry rides along so
    /// the caller can spill it durably.
    pub fn get_mut_or_insert_with(
        &mut self,
        key: K,
        make: impl FnOnce() -> V,
    ) -> (&mut V, Option<(K, V)>) {
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            evicted = self.evict_lru();
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        match self.map.entry(key.clone()) {
            Entry::Occupied(entry) => {
                let slot = entry.into_mut();
                self.recency.remove(&slot.tick);
                slot.tick = tick;
                self.recency.insert(tick, key);
                (&mut slot.value, None)
            }
            Entry::Vacant(entry) => {
                self.recency.insert(tick, key);
                let slot = entry.insert(Slot {
                    value: make(),
                    tick,
                });
                (&mut slot.value, evicted)
            }
        }
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.recency.remove(&slot.tick);
        Some(slot.value)
    }

    /// Drop the least-recently-used entry, counting the eviction.
    fn evict_lru(&mut self) -> Option<(K, V)> {
        let (&tick, _) = self.recency.iter().next()?;
        let key = self.recency.remove(&tick)?;
        let slot = self.map.remove(&key)?;
        self.evictions = self.evictions.saturating_add(1);
        Some((key, slot.value))
    }

    /// Iterate `(key, value)` from least- to most-recently used (does not
    /// touch recency). Driven by the recency index, never by hash order, so
    /// iteration is deterministic for a given operation history.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.recency
            .values()
            .filter_map(|k| self.map.get(k).map(|s| (k, &s.value)))
    }

    /// Keys from least- to most-recently used.
    pub fn keys_by_recency(&self) -> impl Iterator<Item = &K> {
        self.recency.values()
    }
}

/// What [`LruMap::insert`] displaced, if anything.
#[derive(Debug)]
pub struct Inserted<K, V> {
    /// The previous value under the same key (no eviction happened).
    pub replaced: Option<V>,
    /// The least-recently-used entry dropped to make room.
    pub evicted: Option<(K, V)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_is_never_exceeded() {
        let mut m = LruMap::new(3);
        for i in 0..10u64 {
            m.insert(i, i * 10);
            assert!(m.len() <= 3, "len {} exceeded capacity", m.len());
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.evictions(), 7);
    }

    #[test]
    fn capacity_zero_is_floored_to_one() {
        // A zero-capacity cache could never admit the entry it is asked
        // for, so the constructor floors at 1: inserts succeed, the map
        // holds exactly one entry, and each new key evicts the previous.
        let mut m = LruMap::new(0);
        assert_eq!(m.capacity(), 1);
        assert!(m.insert("a", 1).evicted.is_none());
        let out = m.insert("b", 2);
        assert_eq!(out.evicted, Some(("a", 1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn capacity_one_keeps_exactly_the_newest_key() {
        let mut m = LruMap::new(1);
        m.insert("a", 1);
        // Replacing the resident key must not evict...
        let out = m.insert("a", 10);
        assert_eq!(out.replaced, Some(1));
        assert!(out.evicted.is_none());
        // ...but admitting a new key must evict the only resident, via
        // both the insert and the get-or-insert paths.
        assert_eq!(m.insert("b", 2).evicted, Some(("a", 10)));
        let (v, evicted) = m.get_mut_or_insert_with("c", || 3);
        assert_eq!(*v, 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.evictions(), 2);
    }

    #[test]
    fn eviction_order_is_least_recently_used() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(m.get(&"a"), Some(&1));
        let out = m.insert("c", 3);
        assert_eq!(out.evicted, Some(("b", 2)));
        assert!(m.contains_key(&"a") && m.contains_key(&"c"));
    }

    #[test]
    fn peek_does_not_disturb_recency() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.peek(&"a"), Some(&1));
        let out = m.insert("c", 3);
        // "a" stayed least-recently used because peek is recency-neutral.
        assert_eq!(out.evicted, Some(("a", 1)));
    }

    #[test]
    fn replacing_a_key_neither_grows_nor_evicts() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        let out = m.insert("a", 10);
        assert_eq!(out.replaced, Some(1));
        assert!(out.evicted.is_none());
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.peek(&"a"), Some(&10));
    }

    #[test]
    fn get_mut_or_insert_with_touches_inserts_and_evicts() {
        let mut m = LruMap::new(2);
        let (v, evicted) = m.get_mut_or_insert_with("a", || 1);
        assert_eq!(*v, 1);
        assert!(evicted.is_none());
        m.insert("b", 2);
        // "a" is the LRU entry; admitting "c" evicts it.
        let (v, evicted) = m.get_mut_or_insert_with("c", || 3);
        *v += 10;
        assert_eq!(evicted, Some(("a", 1)));
        assert_eq!(m.peek(&"c"), Some(&13));
        // Occupied path: the constructor is not called, recency is bumped.
        let (v, evicted) = m.get_mut_or_insert_with("b", || 99);
        assert_eq!(*v, 2);
        assert!(evicted.is_none());
        let order: Vec<&str> = m.keys_by_recency().copied().collect();
        assert_eq!(order, vec!["c", "b"]);
    }

    #[test]
    fn iteration_follows_recency_not_hash_order() {
        let mut m = LruMap::new(8);
        for k in [5u64, 1, 9, 3] {
            m.insert(k, k * 2);
        }
        assert_eq!(m.get(&5), Some(&10));
        let seen: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(seen, vec![(1, 2), (9, 18), (3, 6), (5, 10)]);
    }

    #[test]
    fn remove_frees_a_slot_without_counting_an_eviction() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.remove(&"a"), Some(1));
        assert!(m.insert("c", 3).evicted.is_none());
        assert_eq!(m.evictions(), 0);
    }

    /// Reference model: a vector ordered least- to most-recently used.
    fn model_apply(model: &mut Vec<(u64, u64)>, cap: usize, op: &Op) -> Option<u64> {
        match op {
            Op::Insert(k, v) => {
                if let Some(pos) = model.iter().position(|(mk, _)| mk == k) {
                    model.remove(pos);
                    model.push((*k, *v));
                    None
                } else {
                    let evicted = if model.len() >= cap {
                        Some(model.remove(0).0)
                    } else {
                        None
                    };
                    model.push((*k, *v));
                    evicted
                }
            }
            Op::Get(k) => {
                if let Some(pos) = model.iter().position(|(mk, _)| mk == k) {
                    let e = model.remove(pos);
                    model.push(e);
                }
                None
            }
            Op::Remove(k) => {
                model.retain(|(mk, _)| mk != k);
                None
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u64),
        Get(u64),
        Remove(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0..3u8, 0..24u64, 0..1000u64).prop_map(|(kind, k, v)| match kind {
            0 => Op::Insert(k, v),
            1 => Op::Get(k),
            _ => Op::Remove(k),
        })
    }

    proptest! {
        /// Against the reference model: same membership, same evictions in
        /// the same order, eviction counter exact, capacity never exceeded.
        #[test]
        fn matches_the_reference_model(
            cap in 1..6usize,
            ops in prop::collection::vec(op_strategy(), 1..200),
        ) {
            let mut m = LruMap::new(cap);
            let mut model: Vec<(u64, u64)> = Vec::new();
            let mut model_evictions = 0u64;
            for op in &ops {
                let model_evicted = model_apply(&mut model, cap, op);
                if model_evicted.is_some() {
                    model_evictions += 1;
                }
                let lru_evicted = match op {
                    Op::Insert(k, v) => m.insert(*k, *v).evicted.map(|(k, _)| k),
                    Op::Get(k) => {
                        let got = m.get(k).copied();
                        let want = model.iter().find(|(mk, _)| mk == k).map(|(_, v)| *v);
                        prop_assert_eq!(got, want);
                        None
                    }
                    Op::Remove(k) => {
                        m.remove(k);
                        None
                    }
                };
                prop_assert_eq!(lru_evicted, model_evicted);
                prop_assert!(m.len() <= cap);
                prop_assert_eq!(m.len(), model.len());
            }
            prop_assert_eq!(m.evictions(), model_evictions);
            let by_recency: Vec<u64> = m.keys_by_recency().copied().collect();
            let model_order: Vec<u64> = model.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(by_recency, model_order);
        }
    }
}
