//! Regression quality metrics used to validate surrogate accuracy (the paper grades
//! its learned surrogate as "comparable to Level 3–5"; `rank_percentile_of_argmin`
//! makes that grading reproducible).

/// Root mean squared error.
// rhlint:allow(dead-pub): standard evaluation metric for figure harnesses
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "rmse length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let mse = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
// rhlint:allow(dead-pub): standard evaluation metric for figure harnesses
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mae length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R². Returns 0 when the targets are constant.
// rhlint:allow(dead-pub): standard evaluation metric for figure harnesses
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "r2 length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = crate::stats::mean(y_true);
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-30 {
        return 0.0;
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// The paper's "Level" grading of a surrogate (§6.1): where does the candidate the
/// model picks as best actually rank in *true* performance?
///
/// Returns the percentile (0–100, lower is better) of the model-chosen argmin within
/// the true scores. A perfect model returns 0; a Level-5 model returns ≈50.
// rhlint:allow(dead-pub): ranking metric for optimizer-quality figures
pub fn rank_percentile_of_argmin(true_scores: &[f64], predicted_scores: &[f64]) -> f64 {
    assert_eq!(
        true_scores.len(),
        predicted_scores.len(),
        "rank_percentile length mismatch"
    );
    assert!(!true_scores.is_empty(), "empty candidate set");
    // Non-empty is asserted above; if every prediction is NaN the first
    // candidate stands in.
    let chosen = crate::stats::nan_safe_min_by(predicted_scores, |s| *s).unwrap_or(0);
    let better = true_scores
        .iter()
        .filter(|&&t| t < true_scores[chosen])
        .count();
    100.0 * better as f64 / true_scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_zero_error_unit_r2() {
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn known_rmse_mae() {
        let t = vec![0.0, 0.0];
        let p = vec![3.0, 4.0];
        assert!((rmse(&t, &p) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&t, &p), 3.5);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_targets_is_zero() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn argmin_percentile_perfect_model() {
        let truth = vec![3.0, 1.0, 2.0];
        assert_eq!(rank_percentile_of_argmin(&truth, &truth), 0.0);
    }

    #[test]
    fn argmin_percentile_inverted_model() {
        let truth = vec![1.0, 2.0, 3.0, 4.0];
        let pred = vec![4.0, 3.0, 2.0, 1.0]; // model loves the worst candidate
        assert_eq!(rank_percentile_of_argmin(&truth, &pred), 75.0);
    }
}
