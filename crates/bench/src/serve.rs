//! The rockserve load-generation bench: an open-loop, seeded client fleet
//! driving a serving endpoint with a mixed request schedule, emitting the
//! machine-readable `BENCH_serve.json` baseline consumed by the tier-1 gate
//! (`tests/bench_gate.rs`) and the CI artifact upload.
//!
//! The whole schedule — which lane sends which frame when, which workload
//! signature each `Suggest` carries, the inter-request gaps — is a pure
//! function of the configured seed (lane seeds come from
//! `rockpool::split_seed`, the same discipline as the evaluation pool), and
//! the served suggestions are a pure function of request content (the
//! server's coalescing contract). The cross-run `suggest_fingerprint`
//! therefore must match between two runs at the same seed regardless of
//! thread interleaving — that is the determinism gate.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rockserve::proto::Response;
use rockserve::{ServeClient, ServeConfig, Server};
use sparksim::config::SparkConf;
use sparksim::event::SparkEvent;
use sparksim::metrics::QueryMetrics;

/// Schema tag stamped into `BENCH_serve.json`. v2 added the `durability`
/// counter block (WAL writes, quarantines, snapshots, recovery replays);
/// v3 added the `zipf` load block and the `sharding` block (shard count,
/// LRU capacity, eviction counters, per-shard suggest counters); v4 added
/// the `retrieval` block (corpus size, cold hits/misses, transfer counters)
/// for the cold-start preset.
pub const SERVE_SCHEMA: &str = "rockhopper-bench-serve/v4";

/// Default output path; overridable via `ROCKHOPPER_SERVE_OUT`.
pub const SERVE_DEFAULT_OUT: &str = "BENCH_serve.json";

/// Reports carry signatures in a disjoint band from suggests, so ingesting a
/// report never invalidates a suggest's coalescing slot: every suggest key is
/// evaluated exactly once per server lifetime and the fingerprint is stable.
const REPORT_SIG_BASE: u64 = 1_000_000;

/// Load-generator shape. Both presets drive well over 64 concurrent mixed
/// requests (clients × requests_per_client).
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Master seed: lane schedules and the server backend both derive from it.
    pub seed: u64,
    /// Concurrent client lanes (one connection each).
    pub clients: usize,
    /// Frames each lane sends.
    pub requests_per_client: usize,
    /// Distinct `Suggest` workload signatures in the mix (uniform mode).
    pub suggest_signatures: u64,
    /// Mean open-loop inter-request gap per lane, microseconds.
    pub mean_gap_us: u64,
    /// When nonzero, signatures are drawn zipfian over `0..zipf_signatures`
    /// instead of uniformly over `0..suggest_signatures` — the production
    /// shape: a huge signature space with a hot head and a long cold tail.
    pub zipf_signatures: u64,
    /// Zipf skew exponent `s` (weight of rank `i` is `1/(i+1)^s`); ignored
    /// when `zipf_signatures` is 0.
    pub zipf_skew: f64,
    /// Signature-hash shards the in-process server splits its backend into.
    pub shards: usize,
    /// Per-shard tuner LRU capacity (`0` keeps the pipeline default).
    pub shard_capacity: usize,
}

impl ServeBenchConfig {
    /// Sub-second shape used by the tier-1 gate and the CI smoke step:
    /// 16 lanes × 8 frames = 128 mixed requests.
    pub fn quick(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 16,
            requests_per_client: 8,
            suggest_signatures: 4,
            mean_gap_us: 200,
            zipf_signatures: 0,
            zipf_skew: 0.0,
            shards: 1,
            shard_capacity: 0,
        }
    }

    /// The `cargo run -p bench --bin serve_loadgen` baseline:
    /// 32 lanes × 32 frames = 1024 mixed requests.
    pub fn full(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 32,
            requests_per_client: 32,
            suggest_signatures: 8,
            mean_gap_us: 100,
            zipf_signatures: 0,
            zipf_skew: 0.0,
            shards: 1,
            shard_capacity: 0,
        }
    }

    /// The multi-tenant shape: zipfian signatures over a 100k space, four
    /// shards, and a tuner LRU small enough that the hot head keeps evicting
    /// the cold tail — the memory-bound gate runs this durably and checks
    /// the eviction counters.
    pub fn zipf(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 16,
            requests_per_client: 16,
            suggest_signatures: 8,
            mean_gap_us: 100,
            zipf_signatures: 100_000,
            zipf_skew: 1.1,
            shards: 4,
            shard_capacity: 8,
        }
    }

    /// The cold-start shape: every suggest signature is drawn zipfian from a
    /// 50k space the server has never seen, so each distinct signature's
    /// first evaluation is cold. Run it through
    /// [`run_serve_bench_coldstart`], which pre-warms a retrieval corpus
    /// whose embedding families exactly cover the load's context embeddings
    /// — cold evaluations must transfer instead of exploring.
    pub fn cold_start(seed: u64) -> ServeBenchConfig {
        ServeBenchConfig {
            seed,
            clients: 16,
            requests_per_client: 8,
            suggest_signatures: 8,
            mean_gap_us: 100,
            zipf_signatures: 50_000,
            zipf_skew: 1.1,
            shards: 2,
            shard_capacity: 0,
        }
    }
}

/// What one bench run measured; rendered to `BENCH_serve.json` by
/// [`ServeBenchReport::to_json`].
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The configured master seed.
    pub seed: u64,
    /// Client lanes driven.
    pub clients: usize,
    /// Total frames sent across all lanes.
    pub requests_total: u64,
    /// Wall time of the loaded phase, milliseconds.
    pub wall_ms: f64,
    /// Requests per second over the loaded phase.
    pub throughput_rps: f64,
    /// Client-observed p50 request latency, microseconds.
    pub p50_us: u64,
    /// Client-observed p95 request latency, microseconds.
    pub p95_us: u64,
    /// Client-observed p99 request latency, microseconds.
    pub p99_us: u64,
    /// Frames sent per kind: (suggest, report, health, metrics).
    pub sent: (u64, u64, u64, u64),
    /// Requests the server shed with `Overloaded`.
    pub overloaded: u64,
    /// Protocol errors, client- and server-side combined (gate requires 0).
    pub protocol_errors: u64,
    /// Backend evaluations the server actually ran for all suggests.
    pub backend_evals: u64,
    /// Suggests served from a shared evaluation (coalesced).
    pub coalesced_hits: u64,
    /// Largest request batch served by one backend evaluation.
    pub batch_max: u64,
    /// WAL records the backend appended (0 when serving without a state dir).
    pub wal_records_written: u64,
    /// Corrupt WAL/snapshot artifacts quarantined during recovery.
    pub wal_records_quarantined: u64,
    /// Compacted snapshots written.
    pub snapshot_writes: u64,
    /// WAL records replayed into the backend at boot.
    pub recovery_replayed: u64,
    /// Order-sensitive fold of every served suggestion point, in
    /// (lane, request) order — bit-identical across runs at the same seed.
    pub suggest_fingerprint: u64,
    /// Whether the server drained cleanly after the run (in-process mode) or
    /// answered a final health probe (external mode).
    pub clean_drain: bool,
    /// Signature-hash shards the server ran with.
    pub shards: usize,
    /// Per-shard tuner LRU capacity (0 = unbounded pipeline default).
    pub shard_capacity: usize,
    /// Zipfian signature-space size (0 = uniform mode).
    pub zipf_signatures: u64,
    /// Zipf skew exponent (meaningless when `zipf_signatures` is 0).
    pub zipf_skew: f64,
    /// Tuners evicted from the per-shard LRUs during the run.
    pub tuner_evictions: u64,
    /// Evicted tuners restored bit-identically from rockdur sidecars.
    pub evicted_restored: u64,
    /// Tuners resident across all shards at drain (0 in external mode,
    /// where the backend is not handed back over the wire).
    pub resident_tuners: u64,
    /// Per-shard serving counters, shard order.
    pub per_shard: Vec<rockserve::ShardMetricsSnapshot>,
    /// Entries in the pre-warmed retrieval corpus (0 without retrieval).
    pub corpus_entries: u64,
    /// Cold suggests answered from the retrieval index.
    pub cold_hits: u64,
    /// Cold suggests with no eligible corpus neighbor.
    pub cold_misses: u64,
    /// Tuners seeded with trust-discounted transferred observations.
    pub transfer_seeded: u64,
    /// Suggestion responses tagged `transferred` on the wire.
    pub transfer_served: u64,
}

impl ServeBenchReport {
    /// Render as the `BENCH_serve.json` document (stable field order). The
    /// fingerprint is a hex string: a u64 does not survive JSON's f64 numbers.
    pub fn to_json(&self) -> String {
        let (suggest, report, health, metrics) = self.sent;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SERVE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"requests_total\": {},\n", self.requests_total));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.1},\n",
            self.throughput_rps
        ));
        out.push_str(&format!(
            "  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n",
            self.p50_us, self.p95_us, self.p99_us
        ));
        out.push_str(&format!(
            "  \"sent\": {{\"suggest\": {suggest}, \"report\": {report}, \"health\": {health}, \"metrics\": {metrics}}},\n",
        ));
        out.push_str(&format!(
            "  \"server\": {{\"overloaded\": {}, \"protocol_errors\": {}, \"backend_evals\": {}, \"coalesced_hits\": {}, \"batch_max\": {}}},\n",
            self.overloaded,
            self.protocol_errors,
            self.backend_evals,
            self.coalesced_hits,
            self.batch_max
        ));
        out.push_str(&format!(
            "  \"durability\": {{\"wal_records_written\": {}, \"wal_records_quarantined\": {}, \"snapshot_writes\": {}, \"recovery_replayed\": {}}},\n",
            self.wal_records_written,
            self.wal_records_quarantined,
            self.snapshot_writes,
            self.recovery_replayed
        ));
        out.push_str(&format!(
            "  \"retrieval\": {{\"corpus_entries\": {}, \"cold_hits\": {}, \"cold_misses\": {}, \"transfer_seeded\": {}, \"transfer_served\": {}}},\n",
            self.corpus_entries,
            self.cold_hits,
            self.cold_misses,
            self.transfer_seeded,
            self.transfer_served
        ));
        out.push_str(&format!(
            "  \"zipf\": {{\"signatures\": {}, \"skew\": {:.2}}},\n",
            self.zipf_signatures, self.zipf_skew
        ));
        out.push_str(&format!(
            "  \"sharding\": {{\"shards\": {}, \"shard_capacity\": {}, \"resident_tuners\": {}, \"tuner_evictions\": {}, \"evicted_restored\": {}, \"per_shard\": [",
            self.shards,
            self.shard_capacity,
            self.resident_tuners,
            self.tuner_evictions,
            self.evicted_restored
        ));
        for (i, s) in self.per_shard.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {}, \"suggests\": {}, \"backend_evals\": {}, \"coalesced_hits\": {}, \"overloaded\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                s.shard, s.suggests, s.backend_evals, s.coalesced_hits, s.overloaded, s.p50_us, s.p99_us
            ));
        }
        out.push_str("]},\n");
        out.push_str(&format!(
            "  \"suggest_fingerprint\": \"{:016x}\",\n",
            self.suggest_fingerprint
        ));
        out.push_str(&format!("  \"clean_drain\": {}\n", self.clean_drain));
        out.push_str("}\n");
        out
    }
}

/// One frame of the seeded schedule.
#[derive(Clone, Copy)]
enum Shot {
    Suggest(u64),
    Report(u64),
    Health,
    Metrics,
}

/// Seeded zipfian sampler over ranks `0..n`: rank `i` carries weight
/// `1/(i+1)^skew`. Built once per lane as a normalized cumulative table;
/// each draw is one uniform f64 plus a binary search, so a 100k-signature
/// space costs one `Vec<f64>` per lane, not per draw.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, skew: f64) -> Zipf {
        let n = usize::try_from(n.max(1)).unwrap_or(usize::MAX);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn draw(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

/// The request mix: ~70% suggest, 15% report, 10% health, 5% metrics.
/// With a zipf sampler the signature comes from the skewed distribution
/// (hot head, long tail); without one it is uniform over the small preset
/// signature set. Reports stay in the disjoint `REPORT_SIG_BASE` band
/// either way (the zipf space tops out well below the base).
fn draw_shot(rng: &mut StdRng, suggest_signatures: u64, zipf: Option<&Zipf>) -> Shot {
    let roll: u32 = rng.random_range(0..100u32);
    let sig = |rng: &mut StdRng| match zipf {
        Some(z) => z.draw(rng),
        None => rng.random_range(0..suggest_signatures.max(1)),
    };
    if roll < 70 {
        Shot::Suggest(sig(rng))
    } else if roll < 85 {
        Shot::Report(REPORT_SIG_BASE + sig(rng))
    } else if roll < 95 {
        Shot::Health
    } else {
        Shot::Metrics
    }
}

/// The tuning context every lane uses for signature `sig` — identical content
/// so concurrent lanes coalesce onto one backend evaluation.
fn ctx_for(sig: u64) -> optimizers::TuningContext {
    optimizers::TuningContext {
        embedding: vec![0.2 + (sig % 7) as f64 * 0.1, 0.5],
        expected_data_size: 1.0 + sig as f64,
        iteration: 0,
    }
}

/// A tiny but fully-valid event document for `Report` frames.
fn report_doc(lane: usize, shot: usize, sig: u64) -> (String, String) {
    let app_id = format!("loadgen-{lane}-{shot}");
    let events = vec![
        SparkEvent::ApplicationStart {
            app_id: app_id.clone(),
            artifact_id: format!("artifact-{sig}"),
        },
        SparkEvent::QueryStart {
            app_id: app_id.clone(),
            query_signature: sig,
            conf: SparkConf::default(),
            plan_summary: vec!["Scan".to_string(), "Aggregate".to_string()],
            embedding: vec![0.3, 0.6],
        },
        SparkEvent::QueryEnd {
            app_id: app_id.clone(),
            query_signature: sig,
            metrics: QueryMetrics {
                elapsed_ms: 120.0 + (sig % 5) as f64 * 10.0,
                true_ms: 118.0,
                num_stages: 2,
                num_tasks: 64,
                input_bytes: 1.0e9,
                input_rows: 1.0e6,
                root_rows: 1.0e3,
                shuffle_bytes: 2.0e8,
                spilled_bytes: 0.0,
                broadcast_joins: 1,
                sort_merge_joins: 1,
            },
        },
        SparkEvent::ApplicationEnd {
            app_id: app_id.clone(),
        },
    ];
    (app_id, sparksim::event::to_jsonl(&events))
}

/// What one lane brought back.
struct LaneResult {
    /// Served suggestion points, in this lane's request order.
    points: Vec<Vec<f64>>,
    /// Per-request latencies, microseconds.
    latencies_us: Vec<u64>,
    /// (suggest, report, health, metrics) frames sent.
    sent: (u64, u64, u64, u64),
    /// Wire errors or `Response::Error` replies observed.
    protocol_errors: u64,
    /// `Overloaded` replies observed.
    overloaded: u64,
}

/// The lane's whole seeded schedule — `(gap_us, shot)` per frame. Pure
/// function of `(cfg.seed, lane)`, so a crash-recovery run can replay an
/// arbitrary *range* of the exact frames an uninterrupted run would send.
fn lane_schedule(cfg: &ServeBenchConfig, lane: usize) -> Vec<(u64, Shot)> {
    let mut rng = StdRng::seed_from_u64(rockpool::split_seed(cfg.seed, lane as u64));
    let zipf = (cfg.zipf_signatures > 0).then(|| Zipf::new(cfg.zipf_signatures, cfg.zipf_skew));
    (0..cfg.requests_per_client)
        .map(|_| {
            // Open-loop arrival: the gap is scheduled from the seed, not
            // from the previous reply's timing.
            let gap_us = rng.random_range(0..cfg.mean_gap_us.saturating_mul(2).max(1));
            (
                gap_us,
                draw_shot(&mut rng, cfg.suggest_signatures, zipf.as_ref()),
            )
        })
        .collect()
}

/// Send the lane's schedule frames `first..end` — `shot_idx` stays absolute
/// so report app ids match the uninterrupted run's byte for byte.
fn run_lane_range(
    addr: std::net::SocketAddr,
    lane: usize,
    cfg: &ServeBenchConfig,
    first: usize,
    end: usize,
) -> LaneResult {
    let mut result = LaneResult {
        points: Vec::new(),
        latencies_us: Vec::new(),
        sent: (0, 0, 0, 0),
        protocol_errors: 0,
        overloaded: 0,
    };
    let Ok(mut client) = ServeClient::connect(addr) else {
        result.protocol_errors += 1;
        return result;
    };
    let schedule = lane_schedule(cfg, lane);
    for (shot_idx, (gap_us, shot)) in schedule.iter().enumerate().take(end).skip(first) {
        std::thread::sleep(Duration::from_micros(*gap_us));
        let started = Instant::now();
        let reply = match &shot {
            Shot::Suggest(sig) => {
                result.sent.0 += 1;
                client.suggest("loadgen", *sig, &ctx_for(*sig))
            }
            Shot::Report(sig) => {
                result.sent.1 += 1;
                let (app_id, doc) = report_doc(lane, shot_idx, *sig);
                client.report("loadgen", &app_id, doc)
            }
            Shot::Health => {
                result.sent.2 += 1;
                client.health()
            }
            Shot::Metrics => {
                result.sent.3 += 1;
                client.metrics()
            }
        };
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        result.latencies_us.push(us);
        match reply {
            Ok(Response::Suggestion { point, .. }) => result.points.push(point),
            Ok(Response::Overloaded { .. }) => result.overloaded += 1,
            Ok(Response::Error { .. }) | Err(_) => result.protocol_errors += 1,
            Ok(_) => {}
        }
    }
    result
}

/// Client-side percentile over the observed latencies (nearest-rank).
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drive `cfg.clients` concurrent lanes against `addr` and aggregate.
fn run_fleet(addr: std::net::SocketAddr, cfg: &ServeBenchConfig) -> (Vec<LaneResult>, f64) {
    run_fleet_range(addr, cfg, 0, cfg.requests_per_client)
}

/// Drive every lane's schedule frames `first..end` concurrently (the full
/// fleet is `run_fleet`; the split ranges are the crash-recovery bench).
fn run_fleet_range(
    addr: std::net::SocketAddr,
    cfg: &ServeBenchConfig,
    first: usize,
    end: usize,
) -> (Vec<LaneResult>, f64) {
    let started = Instant::now();
    let lanes: Vec<LaneResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|lane| scope.spawn(move || run_lane_range(addr, lane, cfg, first, end)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(LaneResult {
                    points: Vec::new(),
                    latencies_us: Vec::new(),
                    sent: (0, 0, 0, 0),
                    protocol_errors: 1,
                    overloaded: 0,
                })
            })
            .collect()
    });
    (lanes, started.elapsed().as_secs_f64() * 1e3)
}

fn aggregate(
    cfg: &ServeBenchConfig,
    lanes: Vec<LaneResult>,
    wall_ms: f64,
    server: rockserve::MetricsSnapshot,
    dashboard: pipeline::DashboardCounters,
    clean_drain: bool,
    resident_tuners: u64,
) -> ServeBenchReport {
    let mut fingerprint = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = (0u64, 0u64, 0u64, 0u64);
    let mut client_protocol_errors = 0u64;
    let mut client_overloaded = 0u64;
    // Lane order, then request order within the lane: the fold order is part
    // of the fingerprint's definition, so it must not depend on join timing.
    for lane in &lanes {
        for point in &lane.points {
            fingerprint = fold_point(fingerprint, point);
        }
        latencies.extend_from_slice(&lane.latencies_us);
        sent.0 += lane.sent.0;
        sent.1 += lane.sent.1;
        sent.2 += lane.sent.2;
        sent.3 += lane.sent.3;
        client_protocol_errors += lane.protocol_errors;
        client_overloaded += lane.overloaded;
    }
    latencies.sort_unstable();
    let requests_total = sent.0 + sent.1 + sent.2 + sent.3;
    let throughput_rps = if wall_ms > 0.0 {
        requests_total as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    ServeBenchReport {
        seed: cfg.seed,
        clients: cfg.clients,
        requests_total,
        wall_ms,
        throughput_rps,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        sent,
        overloaded: server.overloaded.max(client_overloaded),
        protocol_errors: server.protocol_errors + client_protocol_errors,
        backend_evals: server.backend_evals,
        coalesced_hits: server.coalesced_hits,
        batch_max: server.batch_max,
        wal_records_written: dashboard.wal_records_written,
        wal_records_quarantined: dashboard.wal_records_quarantined,
        snapshot_writes: dashboard.snapshot_writes,
        recovery_replayed: dashboard.recovery_replayed,
        suggest_fingerprint: fingerprint,
        clean_drain,
        shards: cfg.shards.max(1),
        shard_capacity: cfg.shard_capacity,
        zipf_signatures: cfg.zipf_signatures,
        zipf_skew: cfg.zipf_skew,
        tuner_evictions: dashboard.tuner_evictions,
        evicted_restored: dashboard.evicted_restored,
        resident_tuners,
        per_shard: server.shards,
        corpus_entries: 0,
        cold_hits: dashboard.cold_hits,
        cold_misses: dashboard.cold_misses,
        transfer_seeded: dashboard.transfer_seeded,
        transfer_served: server.transfer_served,
    }
}

/// Order-sensitive bit fold of one suggestion point (same construction as the
/// parallel bench's fingerprints).
fn fold_point(acc: u64, point: &[f64]) -> u64 {
    let mut h = rockpool::split_seed(acc, point.len() as u64);
    for x in point {
        h = rockpool::split_seed(h, x.to_bits());
    }
    h
}

/// Every shard backend must survive the drain; resident tuners sum over the
/// shards that did.
fn drained_and_resident(backends: &[Option<pipeline::AutotuneBackend>]) -> (bool, u64) {
    let drained = !backends.is_empty() && backends.iter().all(Option::is_some);
    let resident: usize = backends
        .iter()
        .flatten()
        .map(pipeline::AutotuneBackend::tuner_count)
        .sum();
    (drained, resident as u64)
}

/// Spawn an in-process server on an ephemeral port, run the fleet, then
/// drain-shutdown and verify every shard backend came back intact.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> std::io::Result<ServeBenchReport> {
    run_serve_bench_inner(cfg, None, None)
}

/// [`run_serve_bench`] with a durable state directory: every mutation is
/// WAL-logged under per-shard lineages, so LRU-evicted tuners restore
/// bit-identically from their rockdur sidecars when the load re-touches
/// them. The memory-bound gate runs the zipf preset through this.
pub fn run_serve_bench_durable(
    cfg: &ServeBenchConfig,
    state_dir: &std::path::Path,
) -> std::io::Result<ServeBenchReport> {
    run_serve_bench_inner(cfg, Some(state_dir), None)
}

/// Embedding families `ctx_for` cycles through — the corpus pre-warmed by
/// [`prewarm_corpus`] covers exactly these directions, so every cold-start
/// suggest finds a similarity-1.0 neighbor.
pub const COLD_CORPUS_FAMILIES: u64 = 7;

/// Signature band the pre-warmed corpus entries live in, disjoint from both
/// the suggest space and the `REPORT_SIG_BASE` band.
pub const CORPUS_SIG_BASE: u64 = 2_000_000;

/// Write a deterministic warm-signature corpus under `dir`: one entry per
/// [`COLD_CORPUS_FAMILIES`] embedding family, each holding that family's
/// "best observed" config. Content-addressed, seed-free: two calls produce
/// bit-identical corpus lineages, which the cold-start determinism gate
/// relies on. Returns the entry count.
pub fn prewarm_corpus(dir: &std::path::Path) -> std::io::Result<u64> {
    let space = optimizers::ConfigSpace::query_level();
    let (mut corpus, _recovery) = pipeline::Corpus::open(dir)?;
    for family in 0..COLD_CORPUS_FAMILIES {
        corpus.upsert(pipeline::CorpusEntry {
            signature: CORPUS_SIG_BASE + family,
            embedding: vec![0.2 + family as f64 * 0.1, 0.5],
            best_point: space.default_point(),
            observations: 8,
            best_elapsed_ms: 100.0 + family as f64 * 10.0,
            mean_elapsed_ms: 125.0 + family as f64 * 10.0,
            data_size: 1.0 + family as f64,
        })?;
    }
    corpus.sync()?;
    Ok(corpus.len() as u64)
}

/// [`run_serve_bench`] with a pre-warmed retrieval corpus attached: the
/// cold-start preset's fresh zipf-tail signatures are answered by transfer
/// from `corpus_dir` instead of cold exploration. The corpus is written by
/// [`prewarm_corpus`] if the directory is empty.
pub fn run_serve_bench_coldstart(
    cfg: &ServeBenchConfig,
    corpus_dir: &std::path::Path,
) -> std::io::Result<ServeBenchReport> {
    let entries = prewarm_corpus(corpus_dir)?;
    let mut report = run_serve_bench_inner(cfg, None, Some(corpus_dir))?;
    report.corpus_entries = entries;
    Ok(report)
}

fn run_serve_bench_inner(
    cfg: &ServeBenchConfig,
    state_dir: Option<&std::path::Path>,
    retrieval_dir: Option<&std::path::Path>,
) -> std::io::Result<ServeBenchReport> {
    let backend = pipeline::AutotuneBackend::new(
        std::sync::Arc::new(pipeline::Storage::new()),
        None,
        cfg.seed,
    );
    let serve_cfg = ServeConfig {
        state_dir: state_dir.map(std::path::Path::to_path_buf),
        shards: cfg.shards.max(1),
        shard_capacity: cfg.shard_capacity,
        retrieval_dir: retrieval_dir.map(std::path::Path::to_path_buf),
        ..ServeConfig::default()
    };
    let server = Server::spawn(backend, "127.0.0.1:0", serve_cfg)?;
    let addr = server.local_addr();
    let (lanes, wall_ms) = run_fleet(addr, cfg);

    // Final server-side counters, then an explicit drain via the wire.
    let mut control = ServeClient::connect(addr)?;
    let (snapshot, dashboard) = read_counters(&mut control);
    let acked = matches!(control.shutdown_server(), Ok(Response::ShuttingDown));
    let backends = server.join();
    let (drained, resident) = drained_and_resident(&backends);
    Ok(aggregate(
        cfg,
        lanes,
        wall_ms,
        snapshot,
        dashboard,
        acked && drained,
        resident,
    ))
}

/// One `Metrics` round trip: the serving counters and the backend dashboard.
fn read_counters(
    control: &mut ServeClient,
) -> (rockserve::MetricsSnapshot, pipeline::DashboardCounters) {
    match control.metrics() {
        Ok(Response::MetricsReport {
            serving, dashboard, ..
        }) => (serving, dashboard),
        _ => Default::default(),
    }
}

/// Run the fleet against an already-running external server (never sends
/// `Shutdown`); `clean_drain` reports whether a final health probe answered.
pub fn run_serve_bench_against(
    addr: std::net::SocketAddr,
    cfg: &ServeBenchConfig,
) -> std::io::Result<ServeBenchReport> {
    let (lanes, wall_ms) = run_fleet(addr, cfg);
    let mut control = ServeClient::connect(addr)?;
    let (snapshot, dashboard) = read_counters(&mut control);
    let healthy = matches!(control.health(), Ok(Response::Healthy { .. }));
    Ok(aggregate(
        cfg, lanes, wall_ms, snapshot, dashboard, healthy, 0,
    ))
}

/// Snapshot cadence the crash-recovery bench serves at — small enough that
/// even the quick shape exercises both snapshot restore *and* tail replay.
pub const CRASH_BENCH_SNAPSHOT_EVERY: u64 = 8;

/// Append lane `b`'s frames after lane `a`'s — the split run's two server
/// lifetimes stitched back into one uninterrupted-looking lane.
fn merge_lane(mut a: LaneResult, b: LaneResult) -> LaneResult {
    a.points.extend(b.points);
    a.latencies_us.extend(b.latencies_us);
    a.sent.0 += b.sent.0;
    a.sent.1 += b.sent.1;
    a.sent.2 += b.sent.2;
    a.sent.3 += b.sent.3;
    a.protocol_errors += b.protocol_errors;
    a.overloaded += b.overloaded;
    a
}

/// Combine the serving counters of the two lifetimes: monotone counters add,
/// high-water marks take the max.
fn merge_snapshots(
    a: rockserve::MetricsSnapshot,
    b: rockserve::MetricsSnapshot,
) -> rockserve::MetricsSnapshot {
    let mut shards = a.shards;
    for (i, sb) in b.shards.into_iter().enumerate() {
        if let Some(sa) = shards.get_mut(i) {
            sa.suggests += sb.suggests;
            sa.backend_evals += sb.backend_evals;
            sa.coalesced_hits += sb.coalesced_hits;
            sa.overloaded += sb.overloaded;
            sa.p50_us = sa.p50_us.max(sb.p50_us);
            sa.p99_us = sa.p99_us.max(sb.p99_us);
        } else {
            shards.push(sb);
        }
    }
    rockserve::MetricsSnapshot {
        suggests: a.suggests + b.suggests,
        reports: a.reports + b.reports,
        healths: a.healths + b.healths,
        metrics_requests: a.metrics_requests + b.metrics_requests,
        shutdowns: a.shutdowns + b.shutdowns,
        overloaded: a.overloaded + b.overloaded,
        protocol_errors: a.protocol_errors + b.protocol_errors,
        backend_evals: a.backend_evals + b.backend_evals,
        coalesced_hits: a.coalesced_hits + b.coalesced_hits,
        transfer_served: a.transfer_served + b.transfer_served,
        batch_max: a.batch_max.max(b.batch_max),
        queue_depth: a.queue_depth.max(b.queue_depth),
        inflight: a.inflight.max(b.inflight),
        p50_us: a.p50_us.max(b.p50_us),
        p95_us: a.p95_us.max(b.p95_us),
        p99_us: a.p99_us.max(b.p99_us),
        shards,
    }
}

/// The crash-recovery determinism harness: run the *same* seeded schedule as
/// [`run_serve_bench`], but across two server lifetimes sharing one durable
/// state directory — every lane sends frames `0..split` to the first server,
/// the first server dies (optionally with a seed-salted torn tail chopped
/// off its WAL, as a power loss mid-append would), a second server recovers
/// from the directory and serves frames `split..` of the very same schedule.
///
/// The merged report's `suggest_fingerprint` folds both lifetimes' points in
/// the uninterrupted (lane, request) order, so it must equal the fingerprint
/// of an unsplit [`run_serve_bench`] at the same seed: recovery replays the
/// WAL through the normal code paths, prepopulates the coalescing cache from
/// the replayed operations, and checkpointed tuner RNG streams continue
/// bit-identically. A torn tail can only drop a suffix of *logged-but-lost*
/// operations, and each of those re-derives the identical point on the next
/// request for its signature — so the gate holds under fault injection too.
///
/// The caller owns `state_dir` (create it empty, clean it up after).
pub fn run_crash_recovery_bench(
    cfg: &ServeBenchConfig,
    state_dir: &std::path::Path,
    split: usize,
    tear_wal_tail: bool,
) -> std::io::Result<ServeBenchReport> {
    let split = split.min(cfg.requests_per_client);
    let serve_cfg = || ServeConfig {
        state_dir: Some(state_dir.to_path_buf()),
        snapshot_every: CRASH_BENCH_SNAPSHOT_EVERY,
        shards: cfg.shards.max(1),
        shard_capacity: cfg.shard_capacity,
        ..ServeConfig::default()
    };
    let backend = || {
        pipeline::AutotuneBackend::new(
            std::sync::Arc::new(pipeline::Storage::new()),
            None,
            cfg.seed,
        )
    };

    // First lifetime: serve the schedule prefix, then drain. The drain
    // fsyncs the WAL but deliberately writes no snapshot, so the second
    // lifetime recovers through real log replay, not a trivial image load.
    let server = Server::spawn(backend(), "127.0.0.1:0", serve_cfg())?;
    let addr = server.local_addr();
    let (lanes_a, wall_a) = run_fleet_range(addr, cfg, 0, split);
    let mut control = ServeClient::connect(addr)?;
    let (snap_a, _) = read_counters(&mut control);
    let acked_a = matches!(control.shutdown_server(), Ok(Response::ShuttingDown));
    let (drained_a, _) = drained_and_resident(&server.join());

    // The crash: tear a seed-derived number of bytes off the newest WAL
    // segment. Recovery must keep the committed prefix and quarantine —
    // never replay — the torn record. Under sharding the victim shard's
    // lineage is seed-chosen; the other shards recover untouched logs.
    if tear_wal_tail {
        let shards = cfg.shards.max(1);
        let victim = usize::try_from(cfg.seed % shards as u64).unwrap_or(0);
        rockdur::fault::torn_tail(
            &rockserve::shard_state_dir(state_dir, victim, shards),
            cfg.seed,
        )?;
    }

    // Second lifetime: recover (replay-before-accept) and serve the rest of
    // the schedule as if nothing had happened.
    let server = Server::spawn(backend(), "127.0.0.1:0", serve_cfg())?;
    let addr = server.local_addr();
    let (lanes_b, wall_b) = run_fleet_range(addr, cfg, split, cfg.requests_per_client);
    let mut control = ServeClient::connect(addr)?;
    // The recovered dashboard already carries the first lifetime's counters
    // (it is part of the snapshot + replay), so only the serving-layer
    // counters need summing across lifetimes.
    let (snap_b, dashboard) = read_counters(&mut control);
    let acked_b = matches!(control.shutdown_server(), Ok(Response::ShuttingDown));
    let (drained_b, resident) = drained_and_resident(&server.join());

    let lanes: Vec<LaneResult> = lanes_a
        .into_iter()
        .zip(lanes_b)
        .map(|(a, b)| merge_lane(a, b))
        .collect();
    Ok(aggregate(
        cfg,
        lanes,
        wall_a + wall_b,
        merge_snapshots(snap_a, snap_b),
        dashboard,
        acked_a && drained_a && acked_b && drained_b,
        resident,
    ))
}

/// Where `BENCH_serve.json` goes: `$ROCKHOPPER_SERVE_OUT` or
/// [`SERVE_DEFAULT_OUT`].
pub fn serve_out_path() -> std::path::PathBuf {
    std::env::var("ROCKHOPPER_SERVE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from(SERVE_DEFAULT_OUT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_deterministic_and_clean() {
        let cfg = ServeBenchConfig::quick(0x5EED);
        let a = run_serve_bench(&cfg).expect("bench runs");
        let b = run_serve_bench(&cfg).expect("bench runs twice");
        assert_eq!(a.suggest_fingerprint, b.suggest_fingerprint);
        assert_eq!(a.requests_total, 128);
        assert_eq!(a.protocol_errors, 0, "protocol errors in {a:?}");
        assert!(a.clean_drain && b.clean_drain);
        assert!(a.p50_us <= a.p95_us && a.p95_us <= a.p99_us);
        // Coalescing must be visible: far fewer evaluations than suggests.
        assert!(
            a.backend_evals <= u64::from(u32::try_from(cfg.suggest_signatures).unwrap_or(u32::MAX)),
            "evals {} > distinct signatures {}",
            a.backend_evals,
            cfg.suggest_signatures
        );
        assert_eq!(a.backend_evals + a.coalesced_hits, a.sent.0);
    }

    #[test]
    fn report_renders_the_serve_schema() {
        let report = ServeBenchReport {
            seed: 1,
            clients: 2,
            requests_total: 16,
            wall_ms: 10.0,
            throughput_rps: 1600.0,
            p50_us: 10,
            p95_us: 20,
            p99_us: 30,
            sent: (10, 3, 2, 1),
            overloaded: 0,
            protocol_errors: 0,
            backend_evals: 4,
            coalesced_hits: 6,
            batch_max: 3,
            wal_records_written: 12,
            wal_records_quarantined: 1,
            snapshot_writes: 2,
            recovery_replayed: 5,
            suggest_fingerprint: 0xDEAD_BEEF,
            clean_drain: true,
            shards: 2,
            shard_capacity: 8,
            zipf_signatures: 100_000,
            zipf_skew: 1.1,
            tuner_evictions: 7,
            evicted_restored: 3,
            resident_tuners: 16,
            per_shard: vec![
                rockserve::ShardMetricsSnapshot {
                    shard: 0,
                    suggests: 6,
                    backend_evals: 2,
                    coalesced_hits: 4,
                    overloaded: 0,
                    p50_us: 11,
                    p99_us: 31,
                },
                rockserve::ShardMetricsSnapshot {
                    shard: 1,
                    suggests: 4,
                    backend_evals: 2,
                    coalesced_hits: 2,
                    overloaded: 0,
                    p50_us: 9,
                    p99_us: 29,
                },
            ],
            corpus_entries: 7,
            cold_hits: 5,
            cold_misses: 1,
            transfer_seeded: 2,
            transfer_served: 6,
        };
        let json = report.to_json();
        let value = serde_json::value_from_str(&json).expect("valid JSON");
        match value.get_field("schema") {
            serde::Value::Str(s) => assert_eq!(s, SERVE_SCHEMA),
            other => panic!("schema field: {other:?}"),
        }
        match value.get_field("suggest_fingerprint") {
            serde::Value::Str(s) => assert_eq!(s, "00000000deadbeef"),
            other => panic!("fingerprint field: {other:?}"),
        }
        match value
            .get_field("durability")
            .get_field("wal_records_written")
        {
            serde::Value::UInt(12) | serde::Value::Int(12) => {}
            other => panic!("durability.wal_records_written field: {other:?}"),
        }
        match value.get_field("durability").get_field("recovery_replayed") {
            serde::Value::UInt(5) | serde::Value::Int(5) => {}
            other => panic!("durability.recovery_replayed field: {other:?}"),
        }
        assert!(matches!(
            value.get_field("clean_drain"),
            serde::Value::Bool(true)
        ));
        let sharding = value.get_field("sharding");
        match sharding.get_field("shards") {
            serde::Value::UInt(2) | serde::Value::Int(2) => {}
            other => panic!("sharding.shards field: {other:?}"),
        }
        match sharding.get_field("tuner_evictions") {
            serde::Value::UInt(7) | serde::Value::Int(7) => {}
            other => panic!("sharding.tuner_evictions field: {other:?}"),
        }
        match sharding.get_field("per_shard") {
            serde::Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("sharding.per_shard field: {other:?}"),
        }
        match value.get_field("zipf").get_field("signatures") {
            serde::Value::UInt(100_000) | serde::Value::Int(100_000) => {}
            other => panic!("zipf.signatures field: {other:?}"),
        }
        let retrieval = value.get_field("retrieval");
        match retrieval.get_field("cold_hits") {
            serde::Value::UInt(5) | serde::Value::Int(5) => {}
            other => panic!("retrieval.cold_hits field: {other:?}"),
        }
        match retrieval.get_field("transfer_served") {
            serde::Value::UInt(6) | serde::Value::Int(6) => {}
            other => panic!("retrieval.transfer_served field: {other:?}"),
        }
    }

    #[test]
    fn zipf_schedules_are_seeded_skewed_and_in_band() {
        let cfg = ServeBenchConfig::zipf(0x21F);
        // Pure function of (seed, lane): two builds must agree shot for shot.
        for lane in 0..4 {
            let a = lane_schedule(&cfg, lane);
            let b = lane_schedule(&cfg, lane);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0, y.0);
                match (x.1, y.1) {
                    (Shot::Suggest(p), Shot::Suggest(q)) | (Shot::Report(p), Shot::Report(q)) => {
                        assert_eq!(p, q);
                    }
                    (Shot::Health, Shot::Health) | (Shot::Metrics, Shot::Metrics) => {}
                    _ => panic!("schedule kind diverged between identical builds"),
                }
            }
        }
        // Every signature stays inside its band, and the head outdraws a
        // deep-tail rank by a wide margin (that is what "zipfian" buys).
        let mut head = 0u64;
        let mut tail = 0u64;
        let mut suggests = 0u64;
        for lane in 0..cfg.clients {
            for (_, shot) in lane_schedule(&cfg, lane) {
                match shot {
                    Shot::Suggest(sig) => {
                        assert!(sig < cfg.zipf_signatures);
                        suggests += 1;
                        if sig < 4 {
                            head += 1;
                        } else if sig >= cfg.zipf_signatures / 2 {
                            tail += 1;
                        }
                    }
                    Shot::Report(sig) => {
                        let rank = sig - REPORT_SIG_BASE;
                        assert!(rank < cfg.zipf_signatures, "report rank {rank} out of band");
                    }
                    _ => {}
                }
            }
        }
        assert!(suggests > 0);
        assert!(
            head > tail,
            "zipf head (ranks 0..4) drew {head} <= deep tail {tail} of {suggests}"
        );
    }

    #[test]
    fn zipf_sampler_is_normalized_and_monotone() {
        let z = Zipf::new(1000, 1.1);
        assert_eq!(z.cdf.len(), 1000);
        let last = *z.cdf.last().expect("nonempty table");
        assert!((last - 1.0).abs() < 1e-9, "cdf must end at 1.0, got {last}");
        assert!(
            z.cdf.windows(2).all(|w| w[0] <= w[1]),
            "cdf must be monotone"
        );
        // The head rank owns the largest single slice of probability.
        assert!(z.cdf[0] > 1.0 / 1000.0 * 10.0);
    }
}
