//! Executable tuning environments.
//!
//! An [`Environment`] is what a tuner optimizes against: it exposes a
//! [`ConfigSpace`], yields a [`TuningContext`] at each submission, executes a
//! suggested point, and (for evaluation only) reveals the noise-free true time so
//! experiments can plot convergence of *true* performance as the paper does.

use rand::rngs::StdRng;
use rand::SeedableRng;

use embedding::WorkloadEmbedder;
use sparksim::noise::NoiseSpec;
use sparksim::plan::PlanNode;
use sparksim::simulator::Simulator;
use workloads::dynamic::DataSchedule;
use workloads::synthetic::SyntheticFunction;

use crate::space::ConfigSpace;
use crate::tuner::{Outcome, TuningContext};

/// A tunable workload: the common surface of the simulator- and synthetic-function
/// environments.
pub trait Environment {
    /// The space tuners search.
    fn space(&self) -> &ConfigSpace;
    /// Compile-time context for the *next* run.
    fn context(&self) -> TuningContext;
    /// Execute a point; advances the iteration counter.
    fn run(&mut self, point: &[f64]) -> Outcome;
    /// Noise-free time of `point` at the next run's data size (evaluation only).
    fn true_time(&self, point: &[f64]) -> f64;
    /// Iterations executed so far.
    fn iteration(&self) -> u32;
}

/// A recurrent query on the Spark simulator.
#[derive(Debug)]
pub struct QueryEnv {
    /// Underlying simulator (pool, cost model, noise).
    pub sim: Simulator,
    /// The query's logical plan at base scale.
    pub plan: PlanNode,
    /// How data size evolves across recurrences.
    pub schedule: DataSchedule,
    space: ConfigSpace,
    embedder: WorkloadEmbedder,
    iteration: u32,
    rng: StdRng,
}

impl QueryEnv {
    /// Wrap an arbitrary plan.
    pub fn new(plan: PlanNode, noise: NoiseSpec, schedule: DataSchedule, seed: u64) -> QueryEnv {
        QueryEnv {
            sim: Simulator::default_pool(noise),
            plan,
            schedule,
            space: ConfigSpace::query_level(),
            embedder: WorkloadEmbedder::virtual_ops(),
            iteration: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// TPC-H query `n` at scale factor `sf` with constant data size.
    pub fn tpch(n: usize, sf: f64, noise: NoiseSpec, seed: u64) -> QueryEnv {
        QueryEnv::new(
            workloads::tpch::query(n, sf),
            noise,
            DataSchedule::Constant { size: 1.0 },
            seed,
        )
    }

    /// TPC-DS-style query `n` at scale factor `sf` with constant data size.
    pub fn tpcds(n: usize, sf: f64, noise: NoiseSpec, seed: u64) -> QueryEnv {
        QueryEnv::new(
            workloads::tpcds::query(n, sf),
            noise,
            DataSchedule::Constant { size: 1.0 },
            seed,
        )
    }

    /// Replace the embedder (e.g. to run the plain-vs-virtual ablation).
    pub fn with_embedder(mut self, embedder: WorkloadEmbedder) -> QueryEnv {
        self.embedder = embedder;
        self
    }

    /// The plan scaled to the data size of iteration `t`.
    fn plan_at(&self, t: u32) -> PlanNode {
        let size = self.schedule.size_at(t);
        if (size - 1.0).abs() < 1e-12 {
            self.plan.clone()
        } else {
            self.plan.scaled(size)
        }
    }

    /// Stable signature of the underlying query.
    pub fn signature(&self) -> u64 {
        embedding::query_signature(&self.plan)
    }
}

impl Environment for QueryEnv {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn context(&self) -> TuningContext {
        let plan = self.plan_at(self.iteration);
        TuningContext {
            embedding: self.embedder.embed(&plan),
            expected_data_size: plan.leaf_input_rows(),
            iteration: self.iteration,
        }
    }

    fn run(&mut self, point: &[f64]) -> Outcome {
        let plan = self.plan_at(self.iteration);
        let conf = self.space.to_conf(point);
        let run = self.sim.execute_with_rng(&plan, &conf, &mut self.rng);
        self.iteration += 1;
        Outcome {
            elapsed_ms: run.metrics.elapsed_ms,
            data_size: run.metrics.input_rows,
            kind: crate::tuner::ObservationKind::Measured,
        }
    }

    fn true_time(&self, point: &[f64]) -> f64 {
        let plan = self.plan_at(self.iteration);
        self.sim.true_time_ms(&plan, &self.space.to_conf(point))
    }

    fn iteration(&self) -> u32 {
        self.iteration
    }
}

/// The paper's **V0 evaluation platform** (§6.2): a pre-recorded sweep of
/// configuration → performance pairs for one query; suggestions snap to the nearest
/// recorded configuration and return its cached result — "we restrict the candidate
/// set to these pre-recorded configurations and use cached results without live
/// query execution."
#[derive(Debug)]
pub struct CachedEnv {
    space: ConfigSpace,
    /// Recorded points, normalized.
    points_norm: Vec<Vec<f64>>,
    /// Recorded points, raw.
    points_raw: Vec<Vec<f64>>,
    /// Cached observed time per point.
    times: Vec<f64>,
    embedding: Vec<f64>,
    expected_p: f64,
    iteration: u32,
}

impl CachedEnv {
    /// Pre-record a sweep: execute `plan` once per config in `points` on `sim`
    /// (seeded noise) and cache the results.
    pub fn record(
        plan: &PlanNode,
        sim: &Simulator,
        space: &ConfigSpace,
        points: Vec<Vec<f64>>,
        embedder: &WorkloadEmbedder,
        seed: u64,
    ) -> CachedEnv {
        assert!(
            !points.is_empty(),
            "need at least one recorded configuration"
        );
        let times: Vec<f64> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                sim.execute(plan, &space.to_conf(p), seed ^ i as u64)
                    .metrics
                    .elapsed_ms
            })
            .collect();
        CachedEnv {
            space: space.clone(),
            points_norm: points.iter().map(|p| space.normalize(p)).collect(),
            points_raw: points,
            times,
            embedding: embedder.embed(plan),
            expected_p: plan.leaf_input_rows(),
            iteration: 0,
        }
    }

    /// Index of the recorded configuration nearest (normalized L2) to `point`.
    pub(crate) fn nearest(&self, point: &[f64]) -> usize {
        let x = self.space.normalize(point);
        // The recording is non-empty by construction; NaN distances (which a
        // corrupt cache row could produce) are skipped rather than panicking.
        ml::stats::nan_safe_min_by(&self.points_norm, |p| ml::linalg::sq_dist(p, &x)).unwrap_or(0)
    }

    /// The raw point a suggestion actually snaps to.
    pub fn snapped(&self, point: &[f64]) -> &[f64] {
        &self.points_raw[self.nearest(point)]
    }

    /// The best cached time over all recorded configurations.
    // rhlint:allow(dead-pub): environment introspection for experiment harnesses
    pub fn best_recorded_ms(&self) -> f64 {
        self.times.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Number of recorded configurations.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the recording is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl Environment for CachedEnv {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn context(&self) -> TuningContext {
        TuningContext {
            embedding: self.embedding.clone(),
            expected_data_size: self.expected_p,
            iteration: self.iteration,
        }
    }

    fn run(&mut self, point: &[f64]) -> Outcome {
        let idx = self.nearest(point);
        self.iteration += 1;
        Outcome {
            elapsed_ms: self.times[idx],
            data_size: self.expected_p,
            kind: crate::tuner::ObservationKind::Measured,
        }
    }

    fn true_time(&self, point: &[f64]) -> f64 {
        // The V0 platform has no separate noise-free oracle; the cached result *is*
        // the ground truth the experiment measures against.
        self.times[self.nearest(point)]
    }

    fn iteration(&self) -> u32 {
        self.iteration
    }
}

/// The paper's §6.1 synthetic convex function as an environment.
#[derive(Debug)]
pub struct SyntheticEnv {
    /// The underlying function.
    pub f: SyntheticFunction,
    /// Noise applied to observations.
    pub noise: NoiseSpec,
    /// Data-size schedule.
    pub schedule: DataSchedule,
    space: ConfigSpace,
    iteration: u32,
    rng: StdRng,
}

impl SyntheticEnv {
    /// Standard setup: the paper's function over the query-level space.
    pub fn new(noise: NoiseSpec, schedule: DataSchedule, seed: u64) -> SyntheticEnv {
        SyntheticEnv {
            f: SyntheticFunction::paper_default(),
            noise,
            schedule,
            space: ConfigSpace::query_level(),
            iteration: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Constant-size high-noise environment — the paper's default stress test.
    pub fn high_noise_constant(seed: u64) -> SyntheticEnv {
        SyntheticEnv::new(
            NoiseSpec::high(),
            DataSchedule::Constant { size: 1.0 },
            seed,
        )
    }

    fn as_array(point: &[f64]) -> [f64; 3] {
        let mut a = [0.0; 3];
        for (dst, src) in a.iter_mut().zip(point) {
            *dst = *src;
        }
        a
    }

    /// Normalized regret (true time / optimal time) of a point at the *next* run's
    /// data size — the y-axis of the paper's convergence plots.
    pub fn normed_performance(&self, point: &[f64]) -> f64 {
        self.f.normed_performance(
            &Self::as_array(point),
            self.schedule.size_at(self.iteration),
        )
    }

    /// Optimality gap of knob `i` at a point (Figures 10b / 11d).
    pub fn optimality_gap(&self, i: usize, point: &[f64]) -> f64 {
        self.f.optimality_gap(i, point[i])
    }
}

impl Environment for SyntheticEnv {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn context(&self) -> TuningContext {
        TuningContext {
            embedding: Vec::new(),
            expected_data_size: self.schedule.size_at(self.iteration),
            iteration: self.iteration,
        }
    }

    fn run(&mut self, point: &[f64]) -> Outcome {
        let p = self.schedule.size_at(self.iteration);
        let elapsed = self
            .f
            .observe(&Self::as_array(point), p, &self.noise, &mut self.rng);
        self.iteration += 1;
        Outcome {
            elapsed_ms: elapsed,
            data_size: p,
            kind: crate::tuner::ObservationKind::Measured,
        }
    }

    fn true_time(&self, point: &[f64]) -> f64 {
        self.f.true_time(
            &Self::as_array(point),
            self.schedule.size_at(self.iteration),
        )
    }

    fn iteration(&self) -> u32 {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_env_runs_and_advances() {
        let mut env = QueryEnv::tpch(6, 1.0, NoiseSpec::none(), 1);
        let p = env.space().default_point();
        assert_eq!(env.iteration(), 0);
        let o = env.run(&p);
        assert!(o.elapsed_ms > 0.0);
        assert!(o.data_size > 0.0);
        assert_eq!(env.iteration(), 1);
    }

    #[test]
    fn query_env_noiseless_observation_equals_true_time() {
        let mut env = QueryEnv::tpch(3, 1.0, NoiseSpec::none(), 1);
        let p = env.space().default_point();
        let t = env.true_time(&p);
        let o = env.run(&p);
        assert!((o.elapsed_ms - t).abs() < 1e-9);
    }

    #[test]
    fn query_env_context_has_embedding_and_size() {
        let env = QueryEnv::tpch(1, 1.0, NoiseSpec::none(), 1);
        let ctx = env.context();
        assert!(!ctx.embedding.is_empty());
        assert!(ctx.expected_data_size > 1e6);
        assert_eq!(ctx.iteration, 0);
    }

    #[test]
    fn schedule_scales_data_between_runs() {
        let mut env = QueryEnv::new(
            workloads::tpch::query(6, 1.0),
            NoiseSpec::none(),
            DataSchedule::LinearIncreasing {
                start: 1.0,
                slope: 1.0,
            },
            1,
        );
        let p = env.space().default_point();
        let o0 = env.run(&p);
        let o1 = env.run(&p);
        assert!(o1.data_size > o0.data_size * 1.5);
    }

    #[test]
    fn cached_env_snaps_to_recorded_points_and_replays() {
        let plan = workloads::tpch::query(6, 0.2);
        let sim = Simulator::default_pool(NoiseSpec::low());
        let space = ConfigSpace::query_level();
        let points = space.grid(3); // 27 recorded configurations
        let mut env = CachedEnv::record(
            &plan,
            &sim,
            &space,
            points.clone(),
            &WorkloadEmbedder::virtual_ops(),
            5,
        );
        assert_eq!(env.len(), 27);
        // A suggestion between grid points snaps to one of them.
        let mut rng = StdRng::seed_from_u64(1);
        let wild = space.random_point(&mut rng);
        let snapped = env.snapped(&wild).to_vec();
        assert!(points.contains(&snapped));
        // Replays are cached: same point, same result, no live noise.
        let a = env.run(&wild).elapsed_ms;
        let b = env.run(&wild).elapsed_ms;
        assert_eq!(a, b);
        assert_eq!(env.iteration(), 2);
        assert!(env.best_recorded_ms() <= a);
    }

    #[test]
    fn cached_env_exact_point_is_its_own_nearest() {
        let plan = workloads::tpch::query(1, 0.2);
        let sim = Simulator::default_pool(NoiseSpec::none());
        let space = ConfigSpace::query_level();
        let points = space.grid(3);
        let env = CachedEnv::record(
            &plan,
            &sim,
            &space,
            points.clone(),
            &WorkloadEmbedder::plain(),
            0,
        );
        for (i, p) in points.iter().enumerate() {
            assert_eq!(env.nearest(p), i);
        }
    }

    #[test]
    fn synthetic_env_optimum_beats_default() {
        let env = SyntheticEnv::high_noise_constant(5);
        let opt = env.f.optimal_config().to_vec();
        let def = env.space().default_point();
        assert!(env.true_time(&opt) < env.true_time(&def));
        assert!((env.normed_performance(&opt) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_env_is_deterministic_per_seed() {
        let mut a = SyntheticEnv::high_noise_constant(9);
        let mut b = SyntheticEnv::high_noise_constant(9);
        let p = a.space().default_point();
        assert_eq!(a.run(&p).elapsed_ms, b.run(&p).elapsed_ms);
    }

    #[test]
    fn signature_is_stable_across_clones() {
        let e1 = QueryEnv::tpch(5, 1.0, NoiseSpec::none(), 1);
        let e2 = QueryEnv::tpch(5, 100.0, NoiseSpec::high(), 77);
        assert_eq!(e1.signature(), e2.signature());
    }
}
