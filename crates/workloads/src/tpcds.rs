//! Plan templates for 36 TPC-DS-style queries.
//!
//! TPC-DS has 99 queries; the paper's experiments use subsets ("18 TPC-DS queries" in
//! §6.2, a TPC-DS-trained baseline in §6.3). These templates cover the workload's
//! characteristic shapes — star joins over the three sales channels, returns analysis,
//! inventory scans, channel unions and deep snowflakes — with spec-derived table sizes
//! and plausible predicate selectivities.

use sparksim::plan::PlanNode;

use crate::tables::tpcds_scan;

/// Number of TPC-DS-style templates provided.
pub const QUERY_COUNT: usize = 36;

/// Build TPC-DS-style query `n` (1-based) at scale factor `sf`.
///
/// # Panics
/// Panics if `n` is not in `1..=36`.
pub fn query(n: usize, sf: f64) -> PlanNode {
    assert!(
        (1..=QUERY_COUNT).contains(&n),
        "TPC-DS templates are 1..={QUERY_COUNT}, got {n}"
    );
    QUERIES[n - 1](sf)
}

/// All templates.
pub fn all_queries(sf: f64) -> Vec<(usize, PlanNode)> {
    (1..=QUERY_COUNT).map(|n| (n, query(n, sf))).collect()
}

type Builder = fn(f64) -> PlanNode;

static QUERIES: [Builder; QUERY_COUNT] = [
    q_store_sales_report,     // 1  (like Q3): item-brand report over store_sales
    q_returns_by_customer,    // 2  (like Q1): store_returns per customer vs avg
    q_channel_union,          // 3  (like Q5): sales+returns across channels
    q_catalog_year_over_year, // 4  (like Q11): customer year-over-year
    q_inventory_turns,        // 5  (like Q21/39): inventory by warehouse/item
    q_store_sales_demo,       // 6  (like Q7): demographics star join
    q_cross_channel_customer, // 7  (like Q10): customers active in 2+ channels
    q_promo_effect,           // 8  (like Q61): promo vs non-promo revenue
    q_web_conversion,         // 9  (like Q90): web sales am/pm ratio
    q_top_stores,             // 10 (like Q43): store weekly report
    q_big_fact_join,          // 11 (like Q64): store+catalog sales mega-join
    q_quarterly_rollup,       // 12 (like Q67): rollup over store_sales
    q_returned_then_bought,   // 13 (like Q29): returns followed by purchases
    q_warehouse_shipping,     // 14 (like Q99): catalog shipping latency buckets
    q_customer_address_mix,   // 15 (like Q19): brand by customer geography
    q_item_price_bands,       // 16 (like Q98): item revenue by price band
    q_store_returns_ratio,    // 17 (like Q50): return latency per store
    q_catalog_page_report,    // 18 (like Q80): per-page profit with returns
    q_household_ltv,          // 19 (like Q34): frequent-buyer households
    q_seasonal_items,         // 20 (like Q12): seasonal web items
    q_ad_hoc_scan,            // 21: heavy single-pass scan-agg
    q_snowflake_deep,         // 22: five-level snowflake
    q_sales_returns_union,    // 23: union of three return channels
    q_tiny_lookup,            // 24: small dimension-only query
    q_returns_by_reason,      // 25 (like Q85): web returns sliced by reason/demo
    q_stockout_risk,          // 26 (like Q72): inventory vs catalog demand
    q_hourly_traffic,         // 27 (like Q88): store traffic by time-of-day bands
    q_affinity_pairs,         // 28 (like Q29 variant): items bought together
    q_channel_migration,      // 29 (like Q78): customers shifting store→web
    q_markdown_impact,        // 30 (like Q65): items selling below average price
    q_regional_rollup,        // 31 (like Q31): address-level sales trends
    q_first_purchase_cohort,  // 32 (like Q54): cohort after first purchase month
    q_web_latency_buckets,    // 33 (like Q62): shipping latency distribution
    q_returns_fraud_screen,   // 34 (like Q84): high-return customers with demo join
    q_catalog_inventory_gap,  // 35: catalog orders vs warehouse stock union
    q_wide_projection_export, // 36: heavy projection export scan (ETL-style)
];

fn q_store_sales_report(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.016), 0.016) // one month
        .fk_join(tpcds_scan("item", sf).filter(0.06), 0.06) // one manufacturer band
        .hash_aggregate(0.01)
        .sort()
        .limit(100.0)
}

fn q_returns_by_customer(sf: f64) -> PlanNode {
    let per_customer = tpcds_scan("store_returns", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27) // one year
        .hash_aggregate(0.3);
    let store_avg = per_customer.clone().hash_aggregate(0.001);
    per_customer
        .join(store_avg, 1e-3)
        .filter(0.2)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .sort()
        .limit(100.0)
}

fn q_channel_union(sf: f64) -> PlanNode {
    let store = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.04), 0.04)
        .hash_aggregate(0.001);
    let catalog = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.04), 0.04)
        .hash_aggregate(0.001);
    let web = tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.04), 0.04)
        .hash_aggregate(0.001);
    store.union(catalog).union(web).hash_aggregate(0.3).sort()
}

fn q_catalog_year_over_year(sf: f64) -> PlanNode {
    let y1 = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .hash_aggregate(0.05);
    let y2 = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .hash_aggregate(0.05);
    y1.join(y2, 2e-5).filter(0.1).sort().limit(100.0)
}

fn q_inventory_turns(sf: f64) -> PlanNode {
    tpcds_scan("inventory", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .fk_join(tpcds_scan("item", sf).filter(0.2), 0.2)
        .fk_join(tpcds_scan("warehouse", sf), 1.0)
        .hash_aggregate(0.01)
        .sort()
}

fn q_store_sales_demo(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("customer_demographics", sf).filter(0.05), 0.05)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .fk_join(tpcds_scan("promotion", sf).filter(0.5), 0.5)
        .hash_aggregate(0.002)
        .sort()
        .limit(100.0)
}

fn q_cross_channel_customer(sf: f64) -> PlanNode {
    let store_customers = tpcds_scan("store_sales", sf).hash_aggregate(0.03);
    let web_customers = tpcds_scan("web_sales", sf).hash_aggregate(0.06);
    store_customers
        .join(web_customers, 1e-5)
        .fk_join(tpcds_scan("customer_demographics", sf), 1.0)
        .hash_aggregate(0.001)
        .sort()
}

fn q_promo_effect(sf: f64) -> PlanNode {
    let promo = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("promotion", sf).filter(0.3), 0.3)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(1e-7);
    let all = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(1e-7);
    promo.join(all, 1.0)
}

fn q_web_conversion(sf: f64) -> PlanNode {
    let am = tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("time_dim", sf).filter(0.1), 0.1)
        .fk_join(tpcds_scan("web_page", sf).filter(0.3), 0.3)
        .hash_aggregate(1e-7);
    let pm = tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("time_dim", sf).filter(0.1), 0.1)
        .fk_join(tpcds_scan("web_page", sf).filter(0.3), 0.3)
        .hash_aggregate(1e-7);
    am.join(pm, 1.0)
}

fn q_top_stores(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .hash_aggregate(1e-4)
        .sort()
        .limit(100.0)
}

fn q_big_fact_join(sf: f64) -> PlanNode {
    let cs = tpcds_scan("catalog_sales", sf).fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27);
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .join(cs, 1e-7) // same item sold in both channels
        .fk_join(tpcds_scan("item", sf), 1.0)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .hash_aggregate(0.01)
        .sort()
        .limit(100.0)
}

fn q_quarterly_rollup(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf), 1.0)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .hash_aggregate(0.05) // rollup grouping sets
        .sort()
        .limit(100.0)
}

fn q_returned_then_bought(sf: f64) -> PlanNode {
    let returns =
        tpcds_scan("store_returns", sf).fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08);
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .join(returns, 3e-7) // same customer+item returned
        .fk_join(tpcds_scan("item", sf), 1.0)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .hash_aggregate(0.01)
        .sort()
}

fn q_warehouse_shipping(sf: f64) -> PlanNode {
    tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("warehouse", sf), 1.0)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .hash_aggregate(1e-4)
        .sort()
}

fn q_customer_address_mix(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.016), 0.016)
        .fk_join(tpcds_scan("item", sf).filter(0.06), 0.06)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .fk_join(tpcds_scan("customer_address", sf), 1.0)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .filter(0.1) // customer zip != store zip
        .hash_aggregate(0.01)
        .sort()
        .limit(100.0)
}

fn q_item_price_bands(sf: f64) -> PlanNode {
    tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("item", sf).filter(0.3), 0.3)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(0.02)
        .sort()
}

fn q_store_returns_ratio(sf: f64) -> PlanNode {
    tpcds_scan("store_returns", sf)
        .fk_join(tpcds_scan("store_sales", sf).hash_aggregate(0.9), 1.0)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(1e-4)
        .sort()
}

fn q_catalog_page_report(sf: f64) -> PlanNode {
    let sales = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .fk_join(tpcds_scan("catalog_page", sf), 1.0)
        .hash_aggregate(0.01);
    let returns = tpcds_scan("catalog_returns", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .fk_join(tpcds_scan("catalog_page", sf), 1.0)
        .hash_aggregate(0.05);
    sales.join(returns, 1e-4).sort().limit(100.0)
}

fn q_household_ltv(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.3), 0.3)
        .fk_join(tpcds_scan("household_demographics", sf).filter(0.3), 0.3)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .hash_aggregate(0.05) // per ticket
        .filter(0.05) // 15..20 items
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .sort()
}

fn q_seasonal_items(sf: f64) -> PlanNode {
    tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("item", sf).filter(0.1), 0.1)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(0.05)
        .sort()
        .limit(100.0)
}

fn q_ad_hoc_scan(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .filter(0.6)
        .project(0.4)
        .hash_aggregate(1e-6)
}

fn q_snowflake_deep(sf: f64) -> PlanNode {
    tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .fk_join(tpcds_scan("customer_address", sf), 1.0)
        .fk_join(tpcds_scan("customer_demographics", sf), 1.0)
        .fk_join(tpcds_scan("household_demographics", sf).filter(0.2), 0.2)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .hash_aggregate(0.001)
        .sort()
}

fn q_sales_returns_union(sf: f64) -> PlanNode {
    let sr = tpcds_scan("store_returns", sf).project(0.5);
    let cr = tpcds_scan("catalog_returns", sf).project(0.5);
    let wr = tpcds_scan("web_returns", sf).project(0.5);
    sr.union(cr)
        .union(wr)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .hash_aggregate(0.02)
        .sort()
        .limit(100.0)
}

fn q_tiny_lookup(sf: f64) -> PlanNode {
    tpcds_scan("item", sf)
        .filter(0.01)
        .fk_join(tpcds_scan("promotion", sf), 0.3)
        .sort()
}

fn q_returns_by_reason(sf: f64) -> PlanNode {
    tpcds_scan("web_returns", sf)
        .fk_join(tpcds_scan("customer_demographics", sf).filter(0.1), 0.1)
        .fk_join(tpcds_scan("customer_address", sf).filter(0.3), 0.3)
        .fk_join(tpcds_scan("web_page", sf), 1.0)
        .hash_aggregate(0.001)
        .sort()
        .limit(100.0)
}

fn q_stockout_risk(sf: f64) -> PlanNode {
    // Inventory positions joined against near-term catalog demand.
    let demand = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.02), 0.02)
        .hash_aggregate(0.1); // per item+warehouse
    tpcds_scan("inventory", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.02), 0.02)
        .join(demand, 1e-7)
        .filter(0.05) // on-hand below demand
        .fk_join(tpcds_scan("item", sf), 1.0)
        .fk_join(tpcds_scan("warehouse", sf), 1.0)
        .sort()
        .limit(100.0)
}

fn q_hourly_traffic(sf: f64) -> PlanNode {
    // Eight disjoint time-band aggregates, unioned (the Q88 shape).
    let band = |frac: f64| {
        tpcds_scan("store_sales", sf)
            .fk_join(tpcds_scan("time_dim", sf).filter(frac), frac)
            .fk_join(tpcds_scan("household_demographics", sf).filter(0.3), 0.3)
            .fk_join(tpcds_scan("store", sf), 1.0)
            .hash_aggregate(1e-7)
    };
    band(0.04)
        .union(band(0.05))
        .union(band(0.06))
        .union(band(0.07))
        .hash_aggregate(1.0)
}

fn q_affinity_pairs(sf: f64) -> PlanNode {
    // Self-join of store_sales on ticket to find co-purchased item pairs.
    let left = tpcds_scan("store_sales", sf).fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08);
    let right =
        tpcds_scan("store_sales", sf).fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08);
    left.join(right, 2e-7)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .hash_aggregate(0.005)
        .sort()
        .limit(100.0)
}

fn q_channel_migration(sf: f64) -> PlanNode {
    // Customers whose web purchases grew while store purchases shrank.
    let store = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .hash_aggregate(0.03);
    let web = tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .hash_aggregate(0.06);
    store
        .join(web, 1e-5)
        .filter(0.2)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .sort()
        .limit(100.0)
}

fn q_markdown_impact(sf: f64) -> PlanNode {
    // Items whose revenue sits below the store average (Q65 shape).
    let per_item = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.08), 0.08)
        .hash_aggregate(0.01);
    let store_avg = per_item.clone().hash_aggregate(0.001);
    per_item
        .join(store_avg, 1e-3)
        .filter(0.3)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .fk_join(tpcds_scan("store", sf), 1.0)
        .sort()
}

fn q_regional_rollup(sf: f64) -> PlanNode {
    tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .fk_join(tpcds_scan("customer_address", sf).filter(0.2), 0.2)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .hash_aggregate(2e-4) // per county+quarter
        .sort()
}

fn q_first_purchase_cohort(sf: f64) -> PlanNode {
    // Customers whose first purchase fell in a target month, then their revenue.
    let cohort = tpcds_scan("store_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.016), 0.016)
        .hash_aggregate(0.02); // distinct customers
    tpcds_scan("catalog_sales", sf)
        .join(cohort, 1e-6)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.1), 0.1)
        .hash_aggregate(0.01)
        .sort()
        .limit(100.0)
}

fn q_web_latency_buckets(sf: f64) -> PlanNode {
    tpcds_scan("web_sales", sf)
        .fk_join(tpcds_scan("warehouse", sf), 1.0)
        .fk_join(tpcds_scan("web_site", sf), 1.0)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.27), 0.27)
        .project(0.3)
        .hash_aggregate(1e-4)
        .sort()
}

fn q_returns_fraud_screen(sf: f64) -> PlanNode {
    let per_customer = tpcds_scan("store_returns", sf).hash_aggregate(0.3);
    per_customer
        .filter(0.02) // abnormally many returns
        .fk_join(tpcds_scan("customer", sf), 1.0)
        .fk_join(tpcds_scan("customer_demographics", sf).filter(0.2), 0.2)
        .fk_join(tpcds_scan("household_demographics", sf), 1.0)
        .sort()
        .limit(100.0)
}

fn q_catalog_inventory_gap(sf: f64) -> PlanNode {
    let ordered = tpcds_scan("catalog_sales", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.04), 0.04)
        .hash_aggregate(0.05)
        .project(0.5);
    let stocked = tpcds_scan("inventory", sf)
        .fk_join(tpcds_scan("date_dim", sf).filter(0.04), 0.04)
        .hash_aggregate(0.05)
        .project(0.5);
    ordered.union(stocked).hash_aggregate(0.5).sort()
}

fn q_wide_projection_export(sf: f64) -> PlanNode {
    // ETL-style export: wide scan, light filter, no aggregation, heavy write.
    tpcds_scan("catalog_sales", sf)
        .filter(0.8)
        .fk_join(tpcds_scan("item", sf), 1.0)
        .project(1.5) // denormalized output rows are wider
        .sort()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::config::SparkConf;
    use sparksim::noise::NoiseSpec;
    use sparksim::simulator::Simulator;

    #[test]
    fn all_templates_build_and_simulate() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        for (n, plan) in all_queries(1.0) {
            assert!(plan.node_count() >= 2, "template {n}");
            let t = sim.true_time_ms(&plan, &conf);
            assert!(t > 0.0 && t.is_finite(), "template {n} time {t}");
        }
    }

    #[test]
    fn workload_spans_orders_of_magnitude() {
        let sizes: Vec<f64> = all_queries(1.0)
            .iter()
            .map(|(_, p)| p.leaf_input_bytes())
            .collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 50.0, "span {min}..{max}");
    }

    #[test]
    fn tiny_lookup_is_fastest_class() {
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        let tiny = sim.true_time_ms(&query(24, 10.0), &conf);
        let big = sim.true_time_ms(&query(11, 10.0), &conf);
        assert!(tiny < big, "tiny {tiny} vs big {big}");
    }

    #[test]
    #[should_panic(expected = "TPC-DS templates")]
    fn out_of_range_panics() {
        query(QUERY_COUNT + 1, 1.0);
    }

    #[test]
    fn extended_templates_are_structurally_distinct() {
        // Every template must have a unique plan signature — no copy-paste shapes.
        let sigs: std::collections::HashSet<u64> = all_queries(1.0)
            .iter()
            .map(|(_, p)| embedding_free_signature(p))
            .collect();
        assert_eq!(sigs.len(), QUERY_COUNT);
    }

    /// Minimal structural hash (local, to avoid a dev-dependency cycle with the
    /// embedding crate): operator names + child counts + table names, pre-order.
    fn embedding_free_signature(p: &PlanNode) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn walk(n: &PlanNode, h: &mut DefaultHasher) {
            n.op.type_name().hash(h);
            if let sparksim::plan::Operator::TableScan { table, .. } = &n.op {
                table.hash(h);
            }
            if let sparksim::plan::Operator::Filter { selectivity } = &n.op {
                ((selectivity * 1e6) as u64).hash(h);
            }
            if let sparksim::plan::Operator::HashAggregate { group_ratio } = &n.op {
                ((group_ratio * 1e9) as u64).hash(h);
            }
            n.children.len().hash(h);
            for c in &n.children {
                walk(c, h);
            }
        }
        let mut h = DefaultHasher::new();
        walk(p, &mut h);
        h.finish()
    }

    #[test]
    fn broadcast_sensitivity_exists_in_workload() {
        // At least one query must flip join strategies when the threshold moves, or
        // the broadcast knob would be untunable.
        use sparksim::physical::{plan_physical, JoinStrategy};
        let mut low = SparkConf::default();
        low.auto_broadcast_join_threshold = -1.0;
        let mut high = SparkConf::default();
        high.auto_broadcast_join_threshold = 512.0 * 1024.0 * 1024.0;
        let mut flips = 0;
        for (_, plan) in all_queries(10.0) {
            let a = plan_physical(&plan, &low).joins_with(JoinStrategy::BroadcastHash);
            let b = plan_physical(&plan, &high).joins_with(JoinStrategy::BroadcastHash);
            if b > a {
                flips += 1;
            }
        }
        assert!(
            flips >= 10,
            "only {flips} templates respond to the threshold"
        );
    }
}
