//! `rockhopper` — command-line front end to the reproduction.
//!
//! ```text
//! rockhopper tune   --bench tpch --query 6 [--sf 10] [--iters 40] [--noise low]
//! rockhopper compare --bench tpcds --query 5 [--iters 60]      # CL vs BO vs FLOW2
//! rockhopper flight --bench tpcds [--runs 20] [--sf 2]          # offline sweep
//! rockhopper list                                               # available queries
//! ```
//!
//! Argument parsing is deliberately dependency-free (the offline crate set has no
//! CLI library); flags are `--key value` pairs in any order.

use std::collections::HashMap;
use std::process::ExitCode;

use rockhopper_repro::optimizers::bo::BayesOpt;
use rockhopper_repro::optimizers::flow2::Flow2;
use rockhopper_repro::pipeline::flighting::{run_flight, Benchmark, FlightPlan, PoolId, Strategy};
use rockhopper_repro::pipeline::storage::Storage;
use rockhopper_repro::prelude::*;
use rockhopper_repro::rockhopper::RockhopperTuner;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "tune" => cmd_tune(&flags),
        "compare" => cmd_compare(&flags),
        "flight" => cmd_flight(&flags),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rockhopper — Spark configuration autotuning (paper reproduction)

USAGE:
    rockhopper tune    --bench <tpch|tpcds> --query <N> [--sf <F>] [--iters <N>] [--noise <none|low|high>] [--seed <N>]
    rockhopper compare --bench <tpch|tpcds> --query <N> [--sf <F>] [--iters <N>] [--seed <N>]
    rockhopper flight  --bench <tpch|tpcds> [--sf <F>] [--runs <N>] [--seed <N>]
    rockhopper list";

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Some((cmd, flags))
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_of(flags: &HashMap<String, String>) -> Benchmark {
    match flags.get("bench").map(String::as_str) {
        Some("tpcds") => Benchmark::TpcDs,
        _ => Benchmark::TpcH,
    }
}

fn noise_of(flags: &HashMap<String, String>) -> NoiseSpec {
    match flags.get("noise").map(String::as_str) {
        Some("none") => NoiseSpec::none(),
        Some("high") => NoiseSpec::high(),
        _ => NoiseSpec::low(),
    }
}

fn make_env(flags: &HashMap<String, String>) -> Option<QueryEnv> {
    let bench = bench_of(flags);
    let query: usize = flag(flags, "query", 0);
    if query == 0 || query > bench.query_count() {
        eprintln!(
            "--query must be 1..={} for this benchmark",
            bench.query_count()
        );
        return None;
    }
    let sf: f64 = flag(flags, "sf", 2.0);
    let seed: u64 = flag(flags, "seed", 42);
    Some(QueryEnv::new(
        bench.query(query, sf),
        noise_of(flags),
        DataSchedule::Constant { size: 1.0 },
        seed,
    ))
}

fn cmd_tune(flags: &HashMap<String, String>) -> ExitCode {
    let Some(mut env) = make_env(flags) else {
        return ExitCode::FAILURE;
    };
    let iters: usize = flag(flags, "iters", 40);
    let seed: u64 = flag(flags, "seed", 42);
    let space = env.space().clone();
    let default_ms = env.true_time(&space.default_point());
    let mut tuner = RockhopperTuner::builder(space.clone()).seed(seed).build();
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    let tuned_ms = env.true_time(&tuner.centroid());
    let conf = space.to_conf(&tuner.centroid());
    println!(
        "after {iters} runs ({}):",
        if tuner.is_disabled() {
            "guardrail DISABLED tuning"
        } else {
            "guardrail ok"
        }
    );
    println!("  default true time: {default_ms:.0} ms");
    println!(
        "  tuned true time:   {tuned_ms:.0} ms  ({:+.1}%)",
        100.0 * (tuned_ms - default_ms) / default_ms
    );
    println!("recommended configuration:");
    println!(
        "  spark.sql.files.maxPartitionBytes    {:.0}",
        conf.max_partition_bytes
    );
    println!(
        "  spark.sql.autoBroadcastJoinThreshold {:.0}",
        conf.auto_broadcast_join_threshold
    );
    println!(
        "  spark.sql.shuffle.partitions         {}",
        conf.shuffle_partition_count()
    );
    ExitCode::SUCCESS
}

fn cmd_compare(flags: &HashMap<String, String>) -> ExitCode {
    let iters: usize = flag(flags, "iters", 60);
    let seed: u64 = flag(flags, "seed", 42);
    println!("{:<12} {:>14} {:>14}", "tuner", "final ms", "vs default");
    for name in ["rockhopper", "bayesopt", "flow2"] {
        let Some(mut env) = make_env(flags) else {
            return ExitCode::FAILURE;
        };
        let space = env.space().clone();
        let default_ms = env.true_time(&space.default_point());
        let mut tuner: Box<dyn Tuner> = match name {
            "rockhopper" => Box::new(
                RockhopperTuner::builder(space.clone())
                    .guardrail(None)
                    .seed(seed)
                    .build(),
            ),
            "bayesopt" => Box::new(BayesOpt::new(space.clone(), seed)),
            _ => Box::new(Flow2::new(space.clone(), seed)),
        };
        let mut last5 = Vec::new();
        for t in 0..iters {
            let p = tuner.suggest(&env.context());
            if t + 5 >= iters {
                last5.push(env.true_time(&p));
            }
            let o = env.run(&p);
            tuner.observe(&p, &o);
        }
        let final_ms = rockhopper_repro::ml::stats::mean(&last5);
        println!(
            "{name:<12} {final_ms:>14.0} {:>+13.1}%",
            100.0 * (final_ms - default_ms) / default_ms
        );
    }
    ExitCode::SUCCESS
}

fn cmd_flight(flags: &HashMap<String, String>) -> ExitCode {
    let plan = FlightPlan {
        benchmark: bench_of(flags),
        queries: Vec::new(),
        scale_factor: flag(flags, "sf", 2.0),
        runs_per_query: flag(flags, "runs", 20),
        pool: PoolId::Medium,
        strategy: Strategy::Random,
        noise: noise_of(flags),
        seed: flag(flags, "seed", 42),
    };
    let storage = Storage::new();
    let rows = run_flight(&plan, &ConfigSpace::query_level(), &storage);
    println!(
        "flighting complete: {} training rows from {} queries ({} event files)",
        rows.len(),
        plan.benchmark.query_count(),
        storage.object_count()
    );
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("tpch:  queries 1..=22  (the full TPC-H suite)");
    println!("tpcds: queries 1..=24  (TPC-DS-style templates; see workloads::tpcds)");
    ExitCode::SUCCESS
}
