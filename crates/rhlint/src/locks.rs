//! Lock-discipline, growth, and hot-path analyses (RH020–RH024).
//!
//! This is the dataflow half of rhlint: every non-test function body is
//! lowered to a [`Cfg`](crate::cfg::Cfg) whose events record guard
//! acquisitions/releases, blocking operations, panic sites, and resolved
//! workspace calls. A forward *may*-analysis ([`crate::dataflow`]) computes
//! the set of held guards at every event; interprocedural summaries
//! (may-block / may-panic / acquires) propagate over the call graph so a
//! `client.suggest(..)` that blocks three calls deep still fires RH021 at the
//! call site under the lock.
//!
//! The model is deliberately an approximation with the safe polarity per
//! rule:
//!
//! * Guards come alive at `let g = m.lock()` (also `.read()`/`.write()` on an
//!   `RwLock`-typed receiver, and calls to workspace fns returning a
//!   `*Guard`), survive `unwrap`/`expect`/`unwrap_or_else` adapters, and die
//!   at `drop(g)`, at the end of their lexical scope, or at the end of the
//!   statement for temporaries.
//! * Closure bodies are **not** inlined into the enclosing function's CFG: a
//!   `thread::spawn(move || rx.recv())` does not make the spawner a blocking
//!   function. The cost is that calls made through combinator closures are
//!   invisible to the interprocedural pass (an under-approximation).
//! * Lock identity is `Type.field` for `self.field.lock()`-shaped receivers
//!   and `fn:name()` for guard-returning helpers, so two instances of the
//!   same struct alias to one lock node. That can over-report RH020 on
//!   per-instance locks and never under-reports a same-instance cycle.
//! * A panic site already suppressed by a justified `rhlint:allow` for a
//!   panic-family rule is trusted not to panic and does not seed RH023.
//!
//! RH022 (unbounded growth) and RH024 (hot-path allocation) ride on simpler
//! whole-body visitors: growth needs workspace-wide shrink evidence rather
//! than path sensitivity, and for a `rhlint:hot` function *any* allocation on
//! *any* path is a finding.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::cfg::{Cfg, CfgBuilder, Event};
use crate::dataflow::{self, Transfer};
use crate::parser::{Block, Expr, Stmt};
use crate::rules;
use crate::symbols::{FnInfo, Target, Workspace};
use crate::{Diagnostic, Rule, PANIC_SCOPE};

/// Crates subject to the lock-discipline and growth rules: the production
/// panic-scope crates plus the `rockpool` work pool (its whole job is
/// threads and joins).
pub(crate) fn concurrency_scoped(krate: &str) -> bool {
    PANIC_SCOPE.contains(&krate) || krate == "rockpool"
}

/// Collection type heads whose growth RH022 tracks.
const COLLECTIONS: [&str; 7] = [
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Methods that add elements.
const GROW_METHODS: [&str; 6] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

/// Methods that remove elements or bound the collection; one of these on the
/// same `Type.field` anywhere in production code makes growth bounded.
const SHRINK_METHODS: [&str; 12] = [
    "remove",
    "remove_entry",
    "retain",
    "clear",
    "pop",
    "pop_front",
    "pop_back",
    "truncate",
    "drain",
    "split_off",
    "swap_remove",
    "take",
];

// ---------------------------------------------------------------------------
// Held-guard lattice
// ---------------------------------------------------------------------------

/// A held-guard fact: `(guard id, lock id, acquisition line)`.
type Held = (String, String, usize);

struct HeldLocks;

impl Transfer for HeldLocks {
    type Fact = Held;

    fn apply(&self, event: &Event, facts: &mut BTreeSet<Held>) {
        match event {
            Event::Acquire { guard, lock, line } => {
                facts.insert((guard.clone(), lock.clone(), *line));
            }
            Event::Release { guard } => {
                facts.retain(|(g, _, _)| g != guard);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Per-function lowering: AST → CFG events + call edges
// ---------------------------------------------------------------------------

/// One function lowered for analysis.
struct FnModel {
    cfg: Cfg,
    /// Workspace callees (indexes into [`Workspace::fns`]).
    calls: BTreeSet<usize>,
}

struct Lowerer<'a> {
    ws: &'a Workspace,
    fi: &'a FnInfo,
    builder: CfgBuilder,
    /// Variable name → declared/inferred type text.
    env: BTreeMap<String, String>,
    /// Let-bound guard names per open lexical scope.
    scopes: Vec<Vec<String>>,
    /// `scopes.len()` at each enclosing loop entry (for break/continue).
    loop_scope_marks: Vec<usize>,
    /// Statement-scoped temporary guards awaiting release.
    stmt_tmps: Vec<String>,
    next_tmp: usize,
    calls: BTreeSet<usize>,
}

impl<'a> Lowerer<'a> {
    fn new(ws: &'a Workspace, fi: &'a FnInfo) -> Lowerer<'a> {
        let mut env = BTreeMap::new();
        if let Some(ty) = &fi.self_ty {
            env.insert("self".to_string(), ty.clone());
        }
        for (name, ty) in &fi.item.params {
            if !name.is_empty() && !ty.text.is_empty() {
                env.insert(name.clone(), ty.text.clone());
            }
        }
        Lowerer {
            ws,
            fi,
            builder: CfgBuilder::new(),
            env,
            scopes: Vec::new(),
            loop_scope_marks: Vec::new(),
            stmt_tmps: Vec::new(),
            next_tmp: 0,
            calls: BTreeSet::new(),
        }
    }

    fn lower(mut self) -> FnModel {
        if let Some(body) = &self.fi.item.body {
            let body = body.clone();
            self.walk_block(&body);
        }
        FnModel {
            cfg: self.builder.finish(),
            calls: self.calls,
        }
    }

    fn fresh_tmp(&mut self) -> String {
        self.next_tmp += 1;
        format!("#tmp{}", self.next_tmp)
    }

    fn walk_block(&mut self, block: &Block) {
        self.scopes.push(Vec::new());
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
        let ended = self.scopes.pop().unwrap_or_default();
        for guard in ended.into_iter().rev() {
            self.builder.push(Event::Release { guard });
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        let mark = self.stmt_tmps.len();
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                underscore,
                line,
            } => {
                if let Some(e) = init {
                    let acquired = self.walk_expr(e);
                    match (acquired, name) {
                        (Some(lock), Some(n)) => {
                            // `let g = m.lock()` — guard lives to scope end.
                            self.builder.push(Event::Acquire {
                                guard: n.clone(),
                                lock,
                                line: *line as usize,
                            });
                            if let Some(scope) = self.scopes.last_mut() {
                                scope.push(n.clone());
                            }
                            self.env.insert(n.clone(), "Guard".to_string());
                        }
                        (Some(lock), None) => {
                            // `let _ = m.lock()` — acquired and dropped at once.
                            let tmp = self.fresh_tmp();
                            self.builder.push(Event::Acquire {
                                guard: tmp.clone(),
                                lock,
                                line: *line as usize,
                            });
                            self.builder.push(Event::Release { guard: tmp });
                            let _ = underscore;
                        }
                        (None, Some(n)) => {
                            let text = ty
                                .as_ref()
                                .map(|t| t.text.clone())
                                .filter(|t| !t.is_empty())
                                .or_else(|| self.infer_text(e));
                            if let Some(t) = text {
                                self.env.insert(n.clone(), t);
                            }
                        }
                        (None, None) => {}
                    }
                } else if let (Some(n), Some(t)) = (name, ty) {
                    if !t.text.is_empty() {
                        self.env.insert(n.clone(), t.text.clone());
                    }
                }
            }
            Stmt::Expr { expr, .. } => {
                self.walk_value(expr);
            }
            Stmt::Item(_) => {}
        }
        // Temporaries acquired during this statement die with it.
        for guard in self.stmt_tmps.split_off(mark) {
            self.builder.push(Event::Release { guard });
        }
    }

    /// Walk an expression in value position: if it evaluates to a fresh
    /// guard, the guard becomes a statement-scoped temporary.
    fn walk_value(&mut self, e: &Expr) {
        if let Some(lock) = self.walk_expr(e) {
            let tmp = self.fresh_tmp();
            self.builder.push(Event::Acquire {
                guard: tmp.clone(),
                lock,
                line: e.line() as usize,
            });
            self.stmt_tmps.push(tmp);
        }
    }

    /// Walk an expression, emitting events in evaluation order. Returns
    /// `Some(lock id)` when the expression's value is a freshly acquired
    /// guard (the caller decides the guard's lifetime).
    fn walk_expr(&mut self, e: &Expr) -> Option<String> {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let line = *line as usize;
                // `unwrap`-family adapters are transparent to guard-ness:
                // `m.lock().unwrap()` still yields the guard.
                if matches!(
                    method.as_str(),
                    "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
                ) {
                    let inner = self.walk_expr(recv);
                    for a in args {
                        self.walk_value(a);
                    }
                    if matches!(method.as_str(), "unwrap" | "expect") {
                        self.push_panic(format!(".{method}()"), line);
                    }
                    return inner;
                }

                self.walk_value(recv);
                for a in args {
                    self.walk_value(a);
                }

                // Guard acquisition.
                if method == "lock" && args.is_empty() {
                    return Some(self.lock_key(recv));
                }
                if matches!(method.as_str(), "read" | "write") && args.is_empty() {
                    let rw = self
                        .infer_text(recv)
                        .map(|t| t.contains("RwLock"))
                        .unwrap_or(false);
                    if rw {
                        return Some(self.lock_key(recv));
                    }
                }

                // Blocking primitives.
                if let Some(what) = blocking_method(method, args.len()) {
                    self.builder.push(Event::Blocking { what, line });
                    return None;
                }

                self.link_method(recv, method, line);
                None
            }
            Expr::Call { callee, args, line } => {
                let line = *line as usize;
                if let Expr::Path { segs, .. } = &**callee {
                    // `drop(g)` / `std::mem::drop(g)` kills the guard.
                    if segs.last().map(String::as_str) == Some("drop") && args.len() == 1 {
                        if let Expr::Path { segs: v, .. } = &args[0] {
                            if v.len() == 1 {
                                self.builder.push(Event::Release {
                                    guard: v[0].clone(),
                                });
                                return None;
                            }
                        }
                    }
                    for a in args {
                        self.walk_value(a);
                    }
                    if let Some(what) = blocking_path(segs) {
                        self.builder.push(Event::Blocking { what, line });
                        return None;
                    }
                    let resolved = self.resolve_call(segs);
                    if let Some(idxs) = resolved {
                        let mut guard_ret = false;
                        for &i in &idxs {
                            self.calls.insert(i);
                            self.builder.push(Event::Call { callee: i, line });
                            if returns_guard(&self.ws.fns()[i]) {
                                guard_ret = true;
                            }
                        }
                        if guard_ret {
                            let name = segs.last().cloned().unwrap_or_default();
                            return Some(format!("fn:{name}()"));
                        }
                    }
                } else {
                    self.walk_value(callee);
                    for a in args {
                        self.walk_value(a);
                    }
                }
                None
            }
            Expr::MacroCall { path, args, line } => {
                for a in args {
                    self.walk_value(a);
                }
                let last = path.last().map(String::as_str).unwrap_or("");
                if matches!(
                    last,
                    "panic"
                        | "todo"
                        | "unimplemented"
                        | "unreachable"
                        | "assert"
                        | "assert_eq"
                        | "assert_ne"
                ) {
                    self.push_panic(format!("{last}!"), *line as usize);
                }
                None
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.walk_value(cond);
                let decision = self.builder.current();
                let then_b = self.builder.new_block();
                self.builder.edge(decision, then_b);
                self.builder.set_current(then_b);
                self.walk_block(then);
                let then_end = self.builder.current();
                let join = self.builder.new_block();
                self.builder.edge(then_end, join);
                if let Some(other) = else_ {
                    let else_b = self.builder.new_block();
                    self.builder.edge(decision, else_b);
                    self.builder.set_current(else_b);
                    self.walk_value(other);
                    let else_end = self.builder.current();
                    self.builder.edge(else_end, join);
                } else {
                    self.builder.edge(decision, join);
                }
                self.builder.set_current(join);
                None
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk_value(scrutinee);
                let decision = self.builder.current();
                let join = self.builder.new_block();
                if arms.is_empty() {
                    self.builder.edge(decision, join);
                }
                for arm in arms {
                    let arm_b = self.builder.new_block();
                    self.builder.edge(decision, arm_b);
                    self.builder.set_current(arm_b);
                    if let Some(g) = &arm.guard {
                        self.walk_value(g);
                    }
                    self.walk_value(&arm.body);
                    let arm_end = self.builder.current();
                    self.builder.edge(arm_end, join);
                }
                self.builder.set_current(join);
                None
            }
            Expr::Loop { body, .. } => {
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                let after = self.builder.new_block();
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(head);
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(after);
                None
            }
            Expr::While { cond, body, .. } => {
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                self.builder.set_current(head);
                self.walk_value(cond);
                let test_end = self.builder.current();
                let body_b = self.builder.new_block();
                let after = self.builder.new_block();
                self.builder.edge(test_end, body_b);
                self.builder.edge(test_end, after);
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(body_b);
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(after);
                None
            }
            Expr::For { iter, body, .. } => {
                self.walk_value(iter);
                let head = self.builder.new_block();
                self.builder.edge(self.builder.current(), head);
                let body_b = self.builder.new_block();
                let after = self.builder.new_block();
                self.builder.edge(head, body_b);
                self.builder.edge(head, after);
                self.builder.enter_loop(head, after);
                self.loop_scope_marks.push(self.scopes.len());
                self.builder.set_current(body_b);
                self.walk_block(body);
                let tail = self.builder.current();
                self.builder.edge(tail, head);
                self.loop_scope_marks.pop();
                self.builder.leave_loop();
                self.builder.set_current(after);
                None
            }
            Expr::Return { expr, .. } => {
                if let Some(e2) = expr {
                    self.walk_value(e2);
                }
                self.builder.diverge_to_exit();
                None
            }
            Expr::Break { .. } => {
                self.release_loop_scopes();
                match self.builder.innermost_loop() {
                    Some((_, after)) => self.builder.diverge_to(after),
                    None => self.builder.diverge_to_exit(),
                }
                None
            }
            Expr::Continue { .. } => {
                self.release_loop_scopes();
                match self.builder.innermost_loop() {
                    Some((head, _)) => self.builder.diverge_to(head),
                    None => self.builder.diverge_to_exit(),
                }
                None
            }
            Expr::Try { expr, .. } => {
                let inner = self.walk_expr(expr);
                // `?` may exit early; model the error edge to the exit.
                let cur = self.builder.current();
                self.builder.edge(cur, self.builder.exit());
                inner
            }
            Expr::Block { block, .. } => {
                self.walk_block(block);
                None
            }
            // Closure bodies run elsewhere (or lazily): never inline their
            // events into this function's CFG.
            Expr::Closure { .. } => None,
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
                self.walk_expr(expr)
            }
            Expr::Field { base, .. } => {
                self.walk_value(base);
                None
            }
            Expr::Index { base, index, .. } => {
                self.walk_value(base);
                self.walk_value(index);
                None
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_value(lhs);
                self.walk_value(rhs);
                None
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_value(v);
                }
                None
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for v in elems {
                    self.walk_value(v);
                }
                None
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    self.walk_value(l);
                }
                if let Some(h) = hi {
                    self.walk_value(h);
                }
                None
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => None,
        }
    }

    /// A panic event — unless a justified panic-family `rhlint:allow` on the
    /// site vouches that it cannot fire.
    fn push_panic(&mut self, what: String, line: usize) {
        let masked = &self.ws.files()[self.fi.file].masked;
        let allowed = rules::allowed_rules_at(masked, line);
        let vouched = allowed.iter().any(|r| {
            matches!(
                r,
                Rule::Unwrap | Rule::Expect | Rule::Panic | Rule::PanicUnderLock
            )
        });
        if !vouched {
            self.builder.push(Event::Panic { what, line });
        }
    }

    /// On `break`/`continue`, guards scoped inside the loop die before the
    /// jump (their scopes unwind), even though the scopes stay open for the
    /// fallthrough path.
    fn release_loop_scopes(&mut self) {
        let depth = self.loop_scope_marks.last().copied().unwrap_or(0);
        let guards: Vec<String> = self.scopes.iter().skip(depth).flatten().cloned().collect();
        for guard in guards.into_iter().rev() {
            self.builder.push(Event::Release { guard });
        }
    }

    /// Stable identity for the lock behind a `.lock()`/`.read()`/`.write()`
    /// receiver: `Type.field` when the receiver is a field access,
    /// `krate::var` for locals/statics.
    fn lock_key(&self, recv: &Expr) -> String {
        match recv {
            Expr::Field { base, name, .. } => {
                let base_head = self
                    .infer_text(base)
                    .and_then(|t| peel_head(&t))
                    .unwrap_or_else(|| "?".to_string());
                format!("{base_head}.{name}")
            }
            Expr::Path { segs, .. } if segs.len() == 1 => {
                format!("{}::{}", self.fi.krate, segs[0])
            }
            Expr::Path { segs, .. } => segs.join("::"),
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } => self.lock_key(expr),
            _ => format!("{}::<anon>", self.fi.krate),
        }
    }

    /// Best-effort type TEXT of an expression (full generics preserved, so
    /// `Mutex<...>` / `RwLock<...>` / `JoinHandle<...>` checks see through
    /// wrappers like `Arc<...>` via [`peel_head`] at lookup sites).
    fn infer_text(&self, e: &Expr) -> Option<String> {
        infer_type_text(self.ws, &self.env, e)
    }

    fn resolve_call(&self, segs: &[String]) -> Option<Vec<usize>> {
        let mut segs = segs.to_vec();
        if segs.first().map(String::as_str) == Some("Self") {
            if let Some(ty) = &self.fi.self_ty {
                segs[0] = ty.clone();
            }
        }
        match self.ws.resolve(&self.fi.krate, &self.fi.module, &segs) {
            Target::Fns(idxs) => Some(idxs),
            _ => None,
        }
    }

    fn link_method(&mut self, recv: &Expr, method: &str, line: usize) {
        let ty = self.infer_text(recv).and_then(|t| peel_head(&t));
        if let Some(t) = ty {
            let idxs = self.ws.methods_of(&t, method);
            if !idxs.is_empty() {
                for i in idxs {
                    self.calls.insert(i);
                    self.builder.push(Event::Call { callee: i, line });
                }
                return;
            }
        }
        // Unknown receiver: link only when the name is unique workspace-wide
        // (the call graph's under-approximation stance).
        let named = self.ws.methods_named(method);
        if named.len() == 1 {
            let i = named[0];
            self.calls.insert(i);
            self.builder.push(Event::Call { callee: i, line });
        }
    }
}

/// Best-effort type text of `e` given `env` (name → type text). Field types
/// come from the workspace symbol table; `Arc`/`Box`/`&` wrappers are peeled
/// at each hop.
fn infer_type_text(ws: &Workspace, env: &BTreeMap<String, String>, e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => env.get(&segs[0]).cloned(),
        Expr::Field { base, name, .. } => {
            let base_text = infer_type_text(ws, env, base)?;
            let head = peel_head(&base_text)?;
            ws.field_type(&head, name).map(|t| t.text.clone())
        }
        Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
            infer_type_text(ws, env, expr)
        }
        Expr::MethodCall { recv, method, .. }
            if matches!(method.as_str(), "clone" | "as_ref" | "as_mut" | "borrow") =>
        {
            infer_type_text(ws, env, recv)
        }
        Expr::Cast { ty, .. } => Some(ty.text.clone()),
        _ => None,
    }
}

/// Head identifier of a type text after stripping references, `mut`, and
/// transparent wrappers (`Arc<T>` → `T`'s head, etc.).
fn peel_head(text: &str) -> Option<String> {
    let mut t = text.trim();
    loop {
        t = t
            .trim_start_matches('&')
            .trim_start_matches("'static")
            .trim_start();
        t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
        let ident: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() {
            return None;
        }
        let rest = &t[ident.len()..];
        if matches!(ident.as_str(), "Arc" | "Rc" | "Box" | "RefCell" | "Cell")
            && rest.trim_start().starts_with('<')
        {
            // Only the head matters, so dropping into the `<...>` body and
            // re-reading the next identifier is enough — the trailing `>`
            // never parses as part of an identifier.
            t = &rest.trim_start()[1..];
            continue;
        }
        return Some(ident);
    }
}

/// Does this function hand a live guard back to its caller?
fn returns_guard(fi: &FnInfo) -> bool {
    fi.item
        .ret
        .as_ref()
        .map(|t| t.text.contains("Guard"))
        .unwrap_or(false)
}

/// Blocking method calls: channel receives, argument-less `join()`
/// (`JoinHandle`), condvar waits, listener `accept()`, and bulk socket I/O.
fn blocking_method(method: &str, n_args: usize) -> Option<String> {
    let what = match method {
        "recv" | "recv_timeout" | "recv_deadline" => method,
        "join" | "accept" if n_args == 0 => method,
        "wait" | "wait_timeout" | "wait_while" => method,
        "read_exact" | "write_all" | "read_to_end" | "read_to_string" => method,
        _ => return None,
    };
    Some(format!(".{what}()"))
}

/// Blocking free-function paths: `thread::sleep`, `TcpStream::connect`.
fn blocking_path(segs: &[String]) -> Option<String> {
    let last = segs.last().map(String::as_str).unwrap_or("");
    let penult = segs
        .len()
        .checked_sub(2)
        .map(|i| segs[i].as_str())
        .unwrap_or("");
    if last == "sleep" && (penult == "thread" || segs.len() == 1) {
        return Some("thread::sleep".to_string());
    }
    if last == "connect" && penult == "TcpStream" {
        return Some("TcpStream::connect".to_string());
    }
    None
}

// ---------------------------------------------------------------------------
// Interprocedural summaries
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct Summary {
    /// `Some(primitive)` when the function may block (directly or via calls).
    blocks: Option<String>,
    /// `Some(site)` when the function may panic.
    panics: Option<String>,
    /// Locks this function (transitively) acquires.
    acquires: BTreeSet<String>,
}

fn summarize(models: &[Option<FnModel>]) -> Vec<Summary> {
    let mut sums: Vec<Summary> = models
        .iter()
        .map(|m| {
            let mut s = Summary::default();
            if let Some(model) = m {
                for block in &model.cfg.blocks {
                    for ev in &block.events {
                        match ev {
                            Event::Blocking { what, .. } => {
                                if s.blocks.is_none() {
                                    s.blocks = Some(what.clone());
                                }
                            }
                            Event::Panic { what, .. } => {
                                if s.panics.is_none() {
                                    s.panics = Some(what.clone());
                                }
                            }
                            Event::Acquire { lock, .. } => {
                                s.acquires.insert(lock.clone());
                            }
                            _ => {}
                        }
                    }
                }
            }
            s
        })
        .collect();

    // Propagate callee facts to callers to a fixpoint; the call graph is
    // finite so this stabilizes within O(depth) rounds, fuel-capped anyway.
    for _ in 0..64 {
        let mut changed = false;
        for i in 0..models.len() {
            let Some(model) = &models[i] else { continue };
            for &c in &model.calls {
                if c == i {
                    continue;
                }
                let (callee_blocks, callee_panics, callee_acquires) = {
                    let s = &sums[c];
                    (s.blocks.clone(), s.panics.clone(), s.acquires.clone())
                };
                let s = &mut sums[i];
                if s.blocks.is_none() {
                    if let Some(w) = callee_blocks {
                        s.blocks = Some(w);
                        changed = true;
                    }
                }
                if s.panics.is_none() {
                    if let Some(w) = callee_panics {
                        s.panics = Some(w);
                        changed = true;
                    }
                }
                for l in callee_acquires {
                    if s.acquires.insert(l) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

// ---------------------------------------------------------------------------
// RH020 / RH021 / RH023 — the dataflow pass proper
// ---------------------------------------------------------------------------

/// Run the lock-discipline rules over every non-test function of the
/// concurrency-scoped crates.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let models: Vec<Option<FnModel>> = ws
        .fns()
        .iter()
        .map(|fi| {
            if fi.cfg_test {
                None
            } else {
                Some(Lowerer::new(ws, fi).lower())
            }
        })
        .collect();
    let sums = summarize(&models);

    let mut found: BTreeSet<(PathBuf, usize, Rule, String)> = BTreeSet::new();
    // Lock-acquisition order graph: (held, acquired) → first site.
    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();

    for (i, fi) in ws.fns().iter().enumerate() {
        if fi.cfg_test || !concurrency_scoped(&fi.krate) {
            continue;
        }
        let Some(model) = &models[i] else { continue };
        let rel = ws.files()[fi.file].rel.clone();
        let sol = dataflow::forward(&model.cfg, &HeldLocks, BTreeSet::new());
        for b in 0..model.cfg.blocks.len() {
            sol.walk_block(&model.cfg, b, &HeldLocks, |ev, held| {
                let first = held.iter().next();
                match ev {
                    Event::Blocking { what, line } => {
                        if let Some((_, lock, aline)) = first {
                            found.insert((
                                rel.clone(),
                                *line,
                                Rule::BlockingUnderLock,
                                format!(
                                    "blocking `{what}` while `{lock}` is locked (acquired line {aline})"
                                ),
                            ));
                        }
                    }
                    Event::Panic { what, line } => {
                        if let Some((_, lock, aline)) = first {
                            found.insert((
                                rel.clone(),
                                *line,
                                Rule::PanicUnderLock,
                                format!(
                                    "potential panic `{what}` while `{lock}` is locked (acquired line {aline}) — a panic here poisons the lock"
                                ),
                            ));
                        }
                    }
                    Event::Acquire { lock, line, .. } => {
                        for (_, h, _) in held.iter() {
                            edges
                                .entry((h.clone(), lock.clone()))
                                .or_insert_with(|| (rel.clone(), *line));
                        }
                    }
                    Event::Call { callee, line } => {
                        let s = &sums[*callee];
                        if let Some((_, lock, aline)) = first {
                            let qname = qualified_name(&ws.fns()[*callee]);
                            if let Some(w) = &s.blocks {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::BlockingUnderLock,
                                    format!(
                                        "call to `{qname}` may block ({w}) while `{lock}` is locked (acquired line {aline})"
                                    ),
                                ));
                            }
                            if let Some(w) = &s.panics {
                                found.insert((
                                    rel.clone(),
                                    *line,
                                    Rule::PanicUnderLock,
                                    format!(
                                        "call to `{qname}` may panic ({w}) while `{lock}` is locked (acquired line {aline}) — a panic poisons the lock"
                                    ),
                                ));
                            }
                        }
                        for (_, h, _) in held.iter() {
                            for l in &s.acquires {
                                edges
                                    .entry((h.clone(), l.clone()))
                                    .or_insert_with(|| (rel.clone(), *line));
                            }
                        }
                    }
                    Event::Release { .. } => {}
                }
            });
        }
    }

    // RH020: any acquisition edge that closes a cycle is a potential
    // deadlock. Self-edges (reacquiring a held lock) always deadlock with
    // std's non-reentrant Mutex.
    let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
    }
    for ((a, b), (file, line)) in &edges {
        let cyclic = if a == b { true } else { reaches(&adj, b, a) };
        if cyclic {
            let message = if a == b {
                format!(
                    "`{a}` acquired while already held — self-deadlock with a non-reentrant lock"
                )
            } else {
                format!(
                    "lock-order cycle: `{a}` is held while acquiring `{b}` here, and `{b}` is held while acquiring `{a}` elsewhere — acquire locks in one global order"
                )
            };
            found.insert((file.clone(), *line, Rule::LockOrderCycle, message));
        }
    }

    found
        .into_iter()
        .map(|(file, line, rule, message)| Diagnostic {
            file,
            line,
            rule,
            message,
        })
        .collect()
}

/// Is `to` reachable from `from` in the acquisition graph?
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    let mut stack: Vec<&String> = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

fn qualified_name(fi: &FnInfo) -> String {
    match &fi.self_ty {
        Some(ty) => format!("{}::{}::{}", fi.krate, ty, fi.name),
        None => format!("{}::{}", fi.krate, fi.name),
    }
}

// ---------------------------------------------------------------------------
// RH022 — unbounded growth of long-lived service state
// ---------------------------------------------------------------------------

/// Run the unbounded-growth rule: a grow call (`push`/`insert`/...) on a
/// collection field of a long-lived type, with no shrink/eviction call on
/// the same `Type.field` anywhere in production code and no `len`/`capacity`
/// check in the growing function.
pub fn check_growth(ws: &Workspace) -> Vec<Diagnostic> {
    let long_lived = long_lived_types(ws);

    struct GrowSite {
        file: PathBuf,
        line: usize,
        ty: String,
        field: String,
        method: String,
        /// The growing fn consults `len()`/`capacity()` on the same field.
        bounded_locally: bool,
    }

    let mut grows: Vec<GrowSite> = Vec::new();
    let mut shrunk: BTreeSet<(String, String)> = BTreeSet::new();

    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        let rel = &ws.files()[fi.file].rel;

        // First sweep: which fields does this fn bound-check or shrink?
        let mut checked: BTreeSet<(String, String)> = BTreeSet::new();
        for_each_expr_in_block(body, &mut |e| {
            if let Expr::MethodCall { recv, method, .. } = e {
                if let Some((ty, field)) = field_of(ws, &env, recv) {
                    if matches!(method.as_str(), "len" | "capacity" | "is_empty") {
                        checked.insert((ty.clone(), field.clone()));
                    }
                    if SHRINK_METHODS.contains(&method.as_str()) {
                        shrunk.insert((ty, field));
                    }
                }
            }
        });

        // Second sweep: grow calls on collection fields of long-lived types.
        let in_scope = concurrency_scoped(&fi.krate);
        for_each_expr_in_block(body, &mut |e| {
            let Expr::MethodCall {
                recv, method, line, ..
            } = e
            else {
                return;
            };
            let (target, grow_name): (&Expr, String) =
                if method.starts_with("or_insert") || method == "or_default" {
                    // `map.entry(k).or_insert_with(..)` / `.or_default()`
                    // grows the map.
                    match &**recv {
                        Expr::MethodCall {
                            recv: inner,
                            method: m2,
                            ..
                        } if m2 == "entry" => (inner, format!("entry().{method}()")),
                        _ => return,
                    }
                } else if GROW_METHODS.contains(&method.as_str()) {
                    (recv, format!("{method}()"))
                } else {
                    return;
                };
            let Some((ty, field)) = field_of(ws, &env, target) else {
                return;
            };
            if !in_scope || !long_lived.contains(&ty) || !is_collection_field(ws, &ty, &field) {
                return;
            }
            grows.push(GrowSite {
                file: rel.clone(),
                line: *line as usize,
                ty: ty.clone(),
                field: field.clone(),
                method: grow_name,
                bounded_locally: checked.contains(&(ty, field)),
            });
        });
    }

    let mut out = Vec::new();
    for g in grows {
        if g.bounded_locally || shrunk.contains(&(g.ty.clone(), g.field.clone())) {
            continue;
        }
        out.push(Diagnostic {
            file: g.file,
            line: g.line,
            rule: Rule::UnboundedGrowth,
            message: format!(
                "`{}.{}` grows via `{}` but nothing in production code evicts, shrinks, or bounds it — unbounded memory on long-lived service state",
                g.ty, g.field, g.method
            ),
        });
    }
    out
}

/// Types that live for the service's lifetime: anything owning a
/// `JoinHandle`/`Receiver`/`TcpListener`, anything held in an `Arc`, and
/// anything captured by a `thread::spawn` closure.
fn long_lived_types(ws: &Workspace) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for t in ws.types() {
        if t.cfg_test {
            continue;
        }
        for (_, ty) in &t.fields {
            if ty.text.contains("JoinHandle")
                || ty.text.contains("Receiver<")
                || ty.text.contains("TcpListener")
            {
                set.insert(t.name.clone());
            }
            // `Arc<T>` anywhere marks T shared + long-lived.
            for inner in angle_idents_after(&ty.text, "Arc<") {
                if ws.type_named(&inner).is_some() {
                    set.insert(inner);
                }
            }
        }
    }
    // Structs moved into `thread::spawn` closures are worker state.
    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        for_each_expr_in_block(body, &mut |e| {
            let Expr::Call { callee, args, .. } = e else {
                return;
            };
            let Expr::Path { segs, .. } = &**callee else {
                return;
            };
            if segs.last().map(String::as_str) != Some("spawn") {
                return;
            }
            for a in args {
                let Expr::Closure { body, .. } = a else {
                    continue;
                };
                for_each_expr(body, &mut |inner| {
                    if let Expr::Path { segs, .. } = inner {
                        if segs.len() == 1 {
                            if let Some(text) = env.get(&segs[0]) {
                                if let Some(head) = peel_head(text) {
                                    if ws.type_named(&head).is_some() {
                                        set.insert(head);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }
    set
}

/// Identifiers appearing right after each occurrence of `marker` in `text`.
fn angle_idents_after(text: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(marker) {
        let after = &rest[pos + marker.len()..];
        let ident: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            out.push(ident);
        }
        rest = after;
    }
    out
}

/// `(owner type, field name)` when `e` is a field access whose base type is
/// known (through `self`, params, or field chains).
fn field_of(ws: &Workspace, env: &BTreeMap<String, String>, e: &Expr) -> Option<(String, String)> {
    if let Expr::Field { base, name, .. } = e {
        let base_text = infer_type_text(ws, env, base)?;
        let head = peel_head(&base_text)?;
        if ws.field_type(&head, name).is_some() {
            return Some((head, name.clone()));
        }
    }
    None
}

/// Is `Type.field` a growable collection (following one type-alias hop)?
fn is_collection_field(ws: &Workspace, ty: &str, field: &str) -> bool {
    let Some(t) = ws.field_type(ty, field) else {
        return false;
    };
    let mut head = t.head_name().to_string();
    if let Some(info) = ws.type_named(&head) {
        if let Some(alias) = &info.alias_head {
            head = alias.clone();
        }
    }
    COLLECTIONS.contains(&head.as_str())
}

/// `self` + parameter types only — enough to type `self.field` chains, which
/// is where long-lived state lives.
fn param_env(fi: &FnInfo) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    if let Some(ty) = &fi.self_ty {
        env.insert("self".to_string(), ty.clone());
    }
    for (name, ty) in &fi.item.params {
        if !name.is_empty() && !ty.text.is_empty() {
            env.insert(name.clone(), ty.text.clone());
        }
    }
    env
}

// ---------------------------------------------------------------------------
// RH024 — allocation in `rhlint:hot` functions
// ---------------------------------------------------------------------------

/// Run the hot-path rule: functions tagged `// rhlint:hot` (comment within
/// three lines above the signature, or in the doc comment) must not allocate
/// on any path, closures included.
pub fn check_hot_paths(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for fi in ws.fns() {
        if fi.cfg_test {
            continue;
        }
        let file = &ws.files()[fi.file];
        if !hot_tagged(fi, &file.masked.raw_lines) {
            continue;
        }
        let Some(body) = &fi.item.body else { continue };
        let env = param_env(fi);
        for_each_expr_in_block(body, &mut |e| {
            if let Some((what, line)) = alloc_of(ws, &env, e) {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "allocation `{what}` in `rhlint:hot` fn `{}` — preallocate outside the hot path or reuse a buffer",
                        fi.name
                    ),
                });
            }
        });
    }
    out
}

fn hot_tagged(fi: &FnInfo, raw_lines: &[String]) -> bool {
    // Scan the contiguous comment/attribute block directly above the
    // signature (doc comments included).
    let mut idx = (fi.line as usize).saturating_sub(1);
    while idx > 0 {
        idx -= 1;
        let Some(raw) = raw_lines.get(idx) else { break };
        let t = raw.trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.is_empty() {
            // The tag must lead the comment (`// rhlint:hot` / `/// rhlint:hot`),
            // so prose that merely *mentions* the tag does not mark a fn hot.
            if t.trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start()
                .starts_with("rhlint:hot")
            {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Heap-allocating expression forms.
fn alloc_of(ws: &Workspace, env: &BTreeMap<String, String>, e: &Expr) -> Option<(String, usize)> {
    match e {
        Expr::MacroCall { path, line, .. } => {
            let last = path.last().map(String::as_str)?;
            if matches!(last, "vec" | "format") {
                return Some((format!("{last}!"), *line as usize));
            }
            None
        }
        Expr::Call { callee, line, .. } => {
            let Expr::Path { segs, .. } = &**callee else {
                return None;
            };
            let last = segs.last().map(String::as_str).unwrap_or("");
            let penult = segs
                .len()
                .checked_sub(2)
                .map(|i| segs[i].as_str())
                .unwrap_or("");
            let hit = matches!(
                (penult, last),
                ("Box", "new")
                    | ("String", "from")
                    | ("String", "with_capacity")
                    | ("Vec", "with_capacity")
                    | ("Vec", "from")
            );
            if hit {
                return Some((format!("{penult}::{last}"), *line as usize));
            }
            None
        }
        Expr::MethodCall {
            recv, method, line, ..
        } => {
            if matches!(
                method.as_str(),
                "to_vec" | "to_string" | "to_owned" | "collect"
            ) {
                return Some((format!(".{method}()"), *line as usize));
            }
            if method == "clone" {
                let head = infer_type_text(ws, env, recv).and_then(|t| peel_head(&t));
                if let Some(h) = head {
                    if COLLECTIONS.contains(&h.as_str()) || h == "String" {
                        return Some((format!("{h}::clone"), *line as usize));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Whole-body expression walkers (closures included)
// ---------------------------------------------------------------------------

fn for_each_expr_in_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    for_each_expr(e, f);
                }
            }
            Stmt::Expr { expr, .. } => for_each_expr(expr, f),
            Stmt::Item(_) => {}
        }
    }
}

fn for_each_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            for_each_expr(callee, f);
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            for_each_expr(recv, f);
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::Field { base, .. } => for_each_expr(base, f),
        Expr::Index { base, index, .. } => {
            for_each_expr(base, f);
            for_each_expr(index, f);
        }
        Expr::Cast { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Closure { body: expr, .. } => for_each_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                for_each_expr(v, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                for_each_expr(a, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            for_each_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    for_each_expr(g, f);
                }
                for_each_expr(&arm.body, f);
            }
        }
        Expr::If {
            cond, then, else_, ..
        } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(then, f);
            if let Some(e2) = else_ {
                for_each_expr(e2, f);
            }
        }
        Expr::Loop { body, .. } => for_each_expr_in_block(body, f),
        Expr::While { cond, body, .. } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            for_each_expr(iter, f);
            for_each_expr_in_block(body, f);
        }
        Expr::Block { block, .. } => for_each_expr_in_block(block, f),
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for a in elems {
                for_each_expr(a, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(l) = lo {
                for_each_expr(l, f);
            }
            if let Some(h) = hi {
                for_each_expr(h, f);
            }
        }
        Expr::Return { expr, .. } => {
            if let Some(e2) = expr {
                for_each_expr(e2, f);
            }
        }
        Expr::Path { .. }
        | Expr::Lit { .. }
        | Expr::Break { .. }
        | Expr::Continue { .. }
        | Expr::Opaque { .. } => {}
    }
}
