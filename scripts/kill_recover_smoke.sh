#!/usr/bin/env bash
# Kill-and-recover smoke: start a durable rockserve, load it, SIGKILL it
# (no drain, no final fsync barrier), restart on the same state dir, and
# require that the second boot actually replayed WAL records before
# accepting traffic. recovery.log is the uploadable artifact: both servers'
# stdout plus the durability counters and the verdict.
# Expects ./target/release/{rockserve,serve_loadgen} to exist
# (scripts/ci.sh builds them first).
set -euo pipefail

cd "$(dirname "$0")/.."

STATE_DIR="$(mktemp -d)"
trap 'rm -rf "$STATE_DIR"' EXIT
rm -f recovery.log

wait_for_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- || true
      return 0
    fi
    sleep 0.2
  done
  echo "server on port $1 never came up" >> recovery.log
  return 1
}

./target/release/rockserve --addr 127.0.0.1:7171 --seed 77 \
  --state-dir "$STATE_DIR" >> recovery.log 2>&1 &
SERVE_PID=$!
wait_for_port 7171
./target/release/serve_loadgen --quick --seed 77 \
  --addr 127.0.0.1:7171 --out "$STATE_DIR/phase_a.json"

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

./target/release/rockserve --addr 127.0.0.1:7172 --seed 77 \
  --state-dir "$STATE_DIR" >> recovery.log 2>&1 &
SERVE_PID=$!
wait_for_port 7172
./target/release/serve_loadgen --quick --seed 78 \
  --addr 127.0.0.1:7172 --out "$STATE_DIR/phase_b.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

grep -o '"durability": {[^}]*}' "$STATE_DIR/phase_b.json" >> recovery.log
REPLAYED="$(grep -o '"recovery_replayed": [0-9]*' "$STATE_DIR/phase_b.json" \
  | grep -o '[0-9]*$' || echo 0)"
if [ "${REPLAYED:-0}" -gt 0 ] && grep -q "rockserve recovered:" recovery.log; then
  echo "kill-and-recover: OK (${REPLAYED} record(s) replayed after SIGKILL)" \
    | tee -a recovery.log
else
  echo "kill-and-recover: FAILED (recovery_replayed=${REPLAYED:-0})" \
    | tee -a recovery.log
  exit 1
fi
