#![forbid(unsafe_code)]

//! A discrete Apache Spark cluster simulator.
//!
//! The Rockhopper paper tunes real Spark on Microsoft Fabric; no Spark exists in this
//! environment, so this crate rebuilds the *mechanisms* through which the paper's seven
//! tuned configurations influence query runtime:
//!
//! - **Physical planning** ([`physical`]): joins flip between broadcast-hash and
//!   sort-merge at `spark.sql.autoBroadcastJoinThreshold`; exchanges are inserted at
//!   shuffle boundaries and the plan is cut into stages.
//! - **Task parallelism** ([`scheduler`]): scan stages get
//!   `ceil(input_bytes / maxPartitionBytes)` tasks, shuffle stages get
//!   `spark.sql.shuffle.partitions` tasks, and tasks run in waves over
//!   `executor.instances × cores` slots with per-task overhead and a skewed last wave.
//! - **Memory pressure** ([`memory`]): each task's working set competes for
//!   `executor.memory` (plus off-heap when enabled); overflow spills to disk with a
//!   realistic penalty. This creates the cliff that makes too-few partitions slow.
//! - **Noise** ([`noise`]): the paper's Eq (8) — Gaussian fluctuation plus 2×
//!   performance spikes — applied to the deterministic "true" runtime.
//!
//! The result is a response surface that is convex-ish per knob with query-dependent
//! optima (paper Figure 1), which is all an optimizer can observe of real Spark.
//!
//! ```
//! use sparksim::config::SparkConf;
//! use sparksim::noise::NoiseSpec;
//! use sparksim::plan::PlanNode;
//! use sparksim::simulator::Simulator;
//!
//! let plan = PlanNode::scan("lineitem", 6_000_000.0, 100.0)
//!     .filter(0.1)
//!     .hash_aggregate(0.01);
//! let sim = Simulator::default_pool(NoiseSpec::none());
//! let run = sim.execute(&plan, &SparkConf::default(), 42);
//! assert!(run.metrics.elapsed_ms > 0.0);
//! ```

pub mod app;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod event;
pub mod fault;
pub mod memory;
pub mod metrics;
pub mod noise;
pub mod physical;
pub mod plan;
pub mod scenario;
pub mod scheduler;
pub mod simulator;

pub use cluster::ClusterSpec;
pub use config::SparkConf;
pub use fault::{FailureReason, FaultSpec, RunOutcome};
pub use metrics::QueryMetrics;
pub use noise::NoiseSpec;
pub use plan::PlanNode;
pub use scenario::ScaleShift;
pub use simulator::{QueryRun, Simulator};

/// Errors from configuration validation and planning.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value was outside its legal range.
    InvalidConf {
        /// The offending knob.
        knob: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The plan was structurally invalid (e.g. a join without two children).
    InvalidPlan(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConf {
                knob,
                value,
                constraint,
            } => write!(f, "invalid {knob} = {value}: {constraint}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
