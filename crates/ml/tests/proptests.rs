//! Property-based tests for the ML substrate's numerical invariants.

use proptest::prelude::*;

use ml::linalg::{solve_spd, Matrix};
use ml::scaler::StandardScaler;
use ml::stats;
use ml::{KernelRidge, KnnRegressor, Regressor, Ridge};

/// Build a random SPD matrix A = LᵀL + εI from a seed vector.
fn spd_from(vals: &[f64], n: usize) -> Matrix {
    let mut l = Matrix::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        for j in 0..=i {
            l[(i, j)] = vals[k % vals.len()] % 3.0;
            k += 1;
        }
    }
    let mut a = l.matmul(&l.transpose());
    a.add_diagonal(1.0);
    a
}

proptest! {
    #[test]
    fn cholesky_solve_satisfies_the_system(
        vals in prop::collection::vec(-5.0..5.0f64, 10),
        b in prop::collection::vec(-10.0..10.0f64, 3),
    ) {
        let a = spd_from(&vals, 3);
        let x = solve_spd(&a, &b).expect("SPD by construction");
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-6, "residual {} vs {}", ai, bi);
        }
    }

    #[test]
    fn matmul_is_associative_enough(
        vals in prop::collection::vec(-2.0..2.0f64, 12),
    ) {
        let a = Matrix::from_rows(&[vals[0..2].to_vec(), vals[2..4].to_vec()]);
        let b = Matrix::from_rows(&[vals[4..6].to_vec(), vals[6..8].to_vec()]);
        let c = Matrix::from_rows(&[vals[8..10].to_vec(), vals[10..12].to_vec()]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scaler_roundtrips_any_rows(
        rows in prop::collection::vec(prop::collection::vec(-1e6..1e6f64, 3), 2..30),
    ) {
        let sc = StandardScaler::fit(&rows);
        for r in &rows {
            let back = sc.inverse_row(&sc.transform_row(r));
            for (a, b) in r.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn ridge_predictions_are_finite(
        xs in prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 2), 4..40),
        noise in prop::collection::vec(-1.0..1.0f64, 40),
    ) {
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] - 2.0 * r[1] + noise[i % noise.len()])
            .collect();
        let mut m = Ridge::new(0.1);
        m.fit(&xs, &y).expect("jittered normal equations always solve");
        for r in &xs {
            prop_assert!(m.predict(r).is_finite());
        }
    }

    #[test]
    fn krr_stays_within_target_hull_at_training_points(
        ys in prop::collection::vec(1.0..1000.0f64, 5..20),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let mut m = KernelRidge::rbf(1.0, 0.5);
        m.fit(&xs, &ys).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1.0);
        for x in &xs {
            let p = m.predict(x);
            prop_assert!(p > lo - span && p < hi + span, "{p} outside [{lo}, {hi}]±span");
        }
    }

    #[test]
    fn knn_prediction_is_within_neighbour_hull(
        ys in prop::collection::vec(-100.0..100.0f64, 3..20),
        q in -50.0..50.0f64,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let mut m = KnnRegressor::new(3);
        m.fit(&xs, &ys).unwrap();
        let p = m.predict(&[q]);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    #[test]
    fn percentile_is_monotone_in_q(
        xs in prop::collection::vec(-1e3..1e3f64, 1..50),
        q1 in 0.0..100.0f64,
        q2 in 0.0..100.0f64,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo_v = stats::percentile(&xs, lo_q).unwrap();
        let hi_v = stats::percentile(&xs, hi_q).unwrap();
        prop_assert!(lo_v <= hi_v + 1e-12);
    }

    #[test]
    fn band_brackets_every_sample_loosely(
        xs in prop::collection::vec(-1e3..1e3f64, 2..100),
    ) {
        let b = stats::Band::from_samples(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.p5 >= lo - 1e-12 && b.p95 <= hi + 1e-12);
        prop_assert!(b.p5 <= b.p50 && b.p50 <= b.p95);
    }
}
