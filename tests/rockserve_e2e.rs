//! End-to-end audit of the rockserve serving layer (tier 1):
//!
//! 1. **Parity + coalescing** — 64 concurrent identical `Suggest` requests
//!    return bit-identical points to the in-process `AutotuneBackend` path at
//!    the same seed, share ONE backend evaluation (batch size 64 in the
//!    metrics), and the server drains with no OS-thread leak.
//! 2. **Admission control** — overload injection (zero-capacity gates) yields
//!    explicit `Overloaded` replies, never hangs.
//! 3. **Protocol rejection** — wrong-version, garbage, oversized, and
//!    truncated frames each get a typed `Error` reply with the right code.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use optimizers::tuner::TuningContext;
use pipeline::{AutotuneBackend, Storage};
use rockserve::proto::{self, codes, Request, Response, MAX_PAYLOAD_BYTES};
use rockserve::{ServeClient, ServeConfig, Server};

const SEED: u64 = 0xE2E;

fn ctx() -> TuningContext {
    TuningContext {
        embedding: vec![0.25, 0.75],
        expected_data_size: 2.0,
        iteration: 0,
    }
}

fn spawn_server(cfg: ServeConfig) -> Server {
    let backend = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    Server::spawn(backend, "127.0.0.1:0", cfg).expect("server binds an ephemeral port")
}

/// Threads in this process right now (Linux); `None` elsewhere.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

#[test]
fn concurrent_suggests_match_the_in_process_path_and_share_one_evaluation() {
    let threads_before = os_thread_count();

    // The ground truth: what the backend itself answers at this seed.
    let mut direct = AutotuneBackend::new(Arc::new(Storage::new()), None, SEED);
    let expected = direct.suggest("tenant", 42, &ctx());
    assert!(!expected.is_empty());

    let server = spawn_server(ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // 64 concurrent clients, all asking the identical question.
    let points: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..64)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("client connects");
                    match client.suggest("tenant", 42, &ctx()) {
                        Ok(Response::Suggestion {
                            point,
                            fallback,
                            provenance,
                        }) => {
                            assert!(fallback.is_none(), "degraded fallback: {fallback:?}");
                            assert_eq!(
                                rockindex::Provenance::from_wire(provenance.as_deref()),
                                rockindex::Provenance::Explored,
                                "no retrieval corpus is attached, so nothing can transfer"
                            );
                            point
                        }
                        other => panic!("expected a suggestion, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client lane panicked"))
            .collect()
    });
    assert_eq!(points.len(), 64);
    for point in &points {
        assert_eq!(
            point, &expected,
            "served suggestion differs from the in-process backend at the same seed"
        );
    }

    // The metrics frame proves they shared one backend evaluation.
    let mut control = ServeClient::connect(addr).expect("control connects");
    match control.call(&Request::Health) {
        Ok(Response::Healthy {
            draining,
            protocol_version,
        }) => {
            assert!(!draining);
            assert_eq!(protocol_version, rockserve::PROTOCOL_VERSION);
        }
        other => panic!("expected healthy, got {other:?}"),
    }
    match control.metrics() {
        Ok(Response::MetricsReport { text, serving, .. }) => {
            assert_eq!(serving.suggests, 64);
            assert_eq!(serving.backend_evals, 1, "coalescing failed: {serving:?}");
            assert_eq!(serving.coalesced_hits, 63);
            assert_eq!(serving.batch_max, 64);
            assert!(serving.protocol_errors == 0 && serving.overloaded == 0);
            assert!(serving.p50_us <= serving.p95_us && serving.p95_us <= serving.p99_us);
            assert!(text.contains("rockserve_batch_max 64"), "{text}");
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    // Drain over the wire; the handle returns the backend, and the OS agrees
    // every serving thread joined.
    match control.call(&Request::Shutdown) {
        Ok(Response::ShuttingDown) => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    let backends = server.join();
    assert_eq!(backends.len(), 1, "default config is a single shard");
    let backend = backends
        .into_iter()
        .next()
        .flatten()
        .expect("backend survives the drain");
    assert_eq!(
        backend.tuner_count(),
        1,
        "exactly one (user, signature) tuner"
    );
    if let (Some(before), Some(after)) = (threads_before, os_thread_count()) {
        assert!(
            after <= before,
            "thread leak: {before} OS threads before the server, {after} after the drain"
        );
    }
}

#[test]
fn zero_inflight_capacity_sheds_suggests_with_overloaded_not_hangs() {
    let server = spawn_server(ServeConfig {
        workers: 2,
        max_inflight_suggests: 0,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.local_addr()).expect("client connects");
    match client.suggest("tenant", 7, &ctx()) {
        Ok(Response::Overloaded { inflight, capacity }) => {
            assert_eq!((inflight, capacity), (0, 0));
        }
        other => panic!("expected an overloaded reply, got {other:?}"),
    }
    // Health still answers: the shed is per-request, not per-connection.
    assert!(matches!(
        client.health(),
        Ok(Response::Healthy {
            draining: false,
            ..
        })
    ));
    assert!(server.shutdown().iter().all(Option::is_some));
}

#[test]
fn zero_pending_capacity_sheds_at_the_accept_gate() {
    let server = spawn_server(ServeConfig {
        workers: 2,
        max_pending_conns: 0,
        ..ServeConfig::default()
    });
    // The acceptor answers Overloaded and closes without any request sent.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let payload = proto::read_frame(&mut stream)
        .expect("shed frame reads")
        .expect("shed frame present");
    match proto::decode_response(&payload).expect("shed frame decodes") {
        Response::Overloaded { capacity, .. } => assert_eq!(capacity, 0),
        other => panic!("expected overloaded at the accept gate, got {other:?}"),
    }
    assert!(server.shutdown().iter().all(Option::is_some));
}

/// Open a raw connection, run `write` against it, and return the decoded
/// error reply the server must answer with before closing.
fn wire_error_reply(
    addr: std::net::SocketAddr,
    write: impl FnOnce(&mut TcpStream),
) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    write(&mut stream);
    let payload = proto::read_frame(&mut stream)
        .expect("error reply reads")
        .expect("error reply present");
    match proto::decode_response(&payload).expect("error reply decodes") {
        Response::Error { code, message } => (code, message),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn bad_frames_get_typed_error_replies_not_hangs_or_panics() {
    let server = spawn_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // A frame speaking a foreign protocol version.
    let (code, message) = wire_error_reply(addr, |s| {
        proto::write_frame_versioned(s, 7, b"{}").expect("writes");
    });
    assert_eq!(code, codes::VERSION_MISMATCH);
    assert!(message.contains("v7"), "{message}");

    // A well-framed payload that is not a request.
    let (code, _) = wire_error_reply(addr, |s| {
        proto::write_frame(s, &[0x00, 0xFF, 0x13]).expect("writes");
    });
    assert_eq!(code, codes::MALFORMED_FRAME);

    // A length prefix past the bound (no payload follows — the header alone
    // must be rejected before any allocation).
    let (code, _) = wire_error_reply(addr, |s| {
        s.write_all(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes())
            .expect("writes");
        s.write_all(&rockserve::PROTOCOL_VERSION.to_le_bytes())
            .expect("writes");
    });
    assert_eq!(code, codes::OVERSIZED_FRAME);

    // A connection that dies three bytes into the header.
    let (code, _) = wire_error_reply(addr, |s| {
        s.write_all(&[1, 0, 0]).expect("writes");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
    });
    assert_eq!(code, codes::TRUNCATED_FRAME);

    // Four protocol errors counted; the server is still fully serviceable.
    let mut client = ServeClient::connect(addr).expect("client connects");
    match client.metrics() {
        Ok(Response::MetricsReport { serving, .. }) => {
            assert_eq!(serving.protocol_errors, 4, "{serving:?}");
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    assert!(matches!(
        client.suggest("tenant", 1, &ctx()),
        Ok(Response::Suggestion { .. })
    ));
    assert!(server.shutdown().iter().all(Option::is_some));
}
