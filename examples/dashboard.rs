//! The monitoring dashboard (§6.3): tune two queries — one healthy, one
//! pathologically noisy — and render the posterior-analysis view with configuration
//! changes, performance trends and root-cause attribution.
//!
//! ```sh
//! cargo run --release --example dashboard
//! ```

use rockhopper_repro::pipeline::monitor::{Dashboard, RootCause};
use rockhopper_repro::prelude::*;
use rockhopper_repro::rockhopper::RockhopperTuner;

fn main() {
    let mut dashboard = Dashboard::new();

    let queries = [
        ("healthy", 3usize, NoiseSpec::low()),
        ("noisy", 13usize, NoiseSpec::high()),
    ];
    for (label, q, noise) in queries {
        let mut env = QueryEnv::tpcds(q, 2.0, noise, 7);
        let sig = env.signature();
        let space = env.space().clone();
        let mut tuner = RockhopperTuner::builder(space.clone())
            .seed(q as u64)
            .build();
        for run in 0..25 {
            let ctx = env.context();
            let point = tuner.suggest(&ctx);
            let conf = space.to_conf(&point);
            let plan = env.plan.clone();
            let sim_run = env.sim.execute(&plan, &conf, run);
            let events = env.sim.events_for_run(
                &format!("{label}-run{run}"),
                label,
                sig,
                &plan,
                &conf,
                ctx.embedding,
                &sim_run,
            );
            dashboard.ingest(&events);
            let outcome = env.run(&point);
            tuner.observe(&point, &outcome);
        }
    }

    println!("{}", dashboard.render());

    println!(
        "signatures needing attention: {:?}\n",
        dashboard.regressing_signatures()
    );

    // Root-cause analysis of the largest iteration-to-iteration swings.
    for sig in dashboard.signatures() {
        let m = dashboard.monitor(sig).expect("tracked");
        let mut swings: Vec<(u32, f64)> = m
            .records
            .windows(2)
            .map(|w| {
                (
                    w[1].iteration,
                    (w[1].elapsed_ms / w[0].elapsed_ms.max(1e-9) - 1.0).abs(),
                )
            })
            .collect();
        swings.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("query {sig:016x} — top performance swings:");
        for (iter, swing) in swings.into_iter().take(3) {
            let cause = m.rca(iter).expect("valid iteration");
            let cause_text = match cause {
                RootCause::DataSizeChange { ratio } => {
                    format!("input size changed ({ratio:.2}x)")
                }
                RootCause::PlanChange {
                    broadcast_delta,
                    task_ratio,
                } => format!(
                    "physical plan changed (broadcast joins {broadcast_delta:+}, tasks {task_ratio:.2}x)"
                ),
                RootCause::ConfigChange { knobs } => format!(
                    "configuration change: {}",
                    knobs
                        .iter()
                        .map(|(k, a, b)| format!("{} {a:.3e} -> {b:.3e}", k.spark_name()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                RootCause::LikelyNoiseOrExternal => "likely noise or external cause".to_string(),
            };
            println!(
                "  iter {iter:>2}: {:>5.1}% swing — {cause_text}",
                swing * 100.0
            );
        }
        println!();
    }
}
