//! A std-only Rust lexer: the token stream the parser and the semantic passes
//! consume. Comments and whitespace are dropped (doc comments survive as
//! [`TokKind::Doc`] tokens so the config-space pass can read `///` text);
//! string/char literals are carried with their inner text so rules can match
//! declared Spark property names without re-scanning raw source.

/// Token kinds. `Punct` text is the operator itself; multi-character operators
/// are fused except those beginning with `>` (kept single so the parser can
/// close nested generics like `Vec<Vec<f64>>` token by token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Int,
    Float,
    /// String literal; `text` holds the *inner* (undelimited) bytes verbatim.
    Str,
    /// Char or byte literal; `text` holds the inner bytes.
    Char,
    /// Doc comment (`///` or `//!`); `text` holds the comment body.
    Doc,
    Punct,
}

/// One token with its 1-based line and byte offset in the original source.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub pos: u32,
}

impl Tok {
    pub fn is(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Operators fused into one token. Longest match wins; none start with `>`.
const FUSED: [&str; 21] = [
    "..=", "...", "<<=", "::", "->", "=>", "..", "==", "!=", "<=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<",
];

/// Lex `text` into tokens. Never fails: unrecognized bytes become single-char
/// `Punct` tokens, so downstream passes degrade instead of aborting.
pub fn lex(text: &str) -> Vec<Tok> {
    Lexer {
        src: text.as_bytes(),
        chars: text.char_indices().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    chars: Vec<(usize, char)>,
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars
            .get(self.i)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, pos: usize) {
        self.out.push(Tok {
            kind,
            text,
            line,
            pos: pos as u32,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let pos = self.pos();
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, pos),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(0, line, pos),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.raw_or_byte_string(line, pos),
                '\'' => self.char_or_lifetime(line, pos),
                c if c.is_ascii_digit() => self.number(line, pos),
                c if c == '_' || c.is_alphabetic() => self.ident(line, pos),
                _ => self.punct(line, pos),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, pos: usize) {
        // `///` and `//!` are doc comments; plain `//` (and `////`) is dropped.
        let is_doc =
            (self.peek(2) == Some('/') && self.peek(3) != Some('/')) || self.peek(2) == Some('!');
        let mut body = String::new();
        // Skip the `///` / `//!` / `//` marker.
        for _ in 0..(if is_doc { 3 } else { 2 }) {
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        if is_doc {
            self.push(TokKind::Doc, body, line, pos);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Does the `r`/`b` at the cursor begin `r"`, `r#"`, `br"`, or `b"`?
    fn starts_raw_or_byte_string(&self) -> bool {
        let mut j = 0;
        if self.peek(0) == Some('b') {
            j += 1;
        }
        if self.peek(j) == Some('r') {
            j += 1;
            while self.peek(j) == Some('#') {
                j += 1;
            }
            return self.peek(j) == Some('"');
        }
        self.peek(0) == Some('b') && self.peek(j) == Some('"')
    }

    fn raw_or_byte_string(&mut self, line: u32, pos: usize) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('r') {
            self.bump();
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
            let mut body = String::new();
            while let Some(c) = self.peek(0) {
                if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                body.push(c);
                self.bump();
            }
            self.push(TokKind::Str, body, line, pos);
        } else {
            // plain byte string b"..."
            self.string_literal(0, line, pos);
        }
    }

    /// Cooked string starting at the current `"` (or after a consumed `b`).
    fn string_literal(&mut self, _skip: usize, line: u32, pos: usize) {
        self.bump(); // opening quote
        let mut body = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep escapes verbatim; rules only match plain names.
                    body.push(c);
                    if let Some(e) = self.bump() {
                        body.push(e);
                    }
                }
                '"' => break,
                _ => body.push(c),
            }
        }
        self.push(TokKind::Str, body, line, pos);
    }

    fn char_or_lifetime(&mut self, line: u32, pos: usize) {
        // 'x' or '\n' is a char literal; 'ident (no closing quote) a lifetime.
        let c1 = self.peek(1);
        let is_char = match c1 {
            Some('\\') => true,
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => false,
        };
        if is_char {
            self.bump(); // '
            let mut body = String::new();
            while let Some(c) = self.bump() {
                if c == '\\' {
                    body.push(c);
                    if let Some(e) = self.bump() {
                        body.push(e);
                    }
                    continue;
                }
                if c == '\'' {
                    break;
                }
                body.push(c);
            }
            self.push(TokKind::Char, body, line, pos);
        } else {
            self.bump(); // '
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line, pos);
        }
    }

    fn number(&mut self, line: u32, pos: usize) {
        let mut text = String::new();
        let mut float = false;
        let radix_prefix =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b'));
        if radix_prefix {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fractional part only when followed by a digit (`0.5` yes,
            // `0..5` and `1.max(2)` no).
            if self.peek(0) == Some('.')
                && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false)
            {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if self
                    .peek(digit_at)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    float = true;
                    text.push(self.bump().unwrap_or('e'));
                    if sign {
                        text.push(self.bump().unwrap_or('+'));
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`): alphanumeric tail.
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            text,
            line,
            pos,
        );
    }

    fn ident(&mut self, line: u32, pos: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, pos);
    }

    fn punct(&mut self, line: u32, pos: usize) {
        for fused in FUSED {
            if fused
                .chars()
                .enumerate()
                .all(|(k, fc)| self.peek(k) == Some(fc))
            {
                for _ in 0..fused.chars().count() {
                    self.bump();
                }
                self.push(TokKind::Punct, fused.to_string(), line, pos);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let toks = kinds("use std::time::Instant;");
        assert_eq!(toks[0], (TokKind::Ident, "use".into()));
        assert_eq!(toks[1], (TokKind::Ident, "std".into()));
        assert_eq!(toks[2], (TokKind::Punct, "::".into()));
        assert_eq!(toks.last().map(|t| t.1.clone()), Some(";".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 0.5 1e9 2048 1_000 0xff 3f64 1.max(2) 0..5");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[1].0, TokKind::Float);
        assert_eq!(toks[2].0, TokKind::Float);
        assert_eq!(toks[3].0, TokKind::Int);
        assert_eq!(toks[4].0, TokKind::Int);
        assert_eq!(toks[5].0, TokKind::Int);
        assert_eq!(toks[6], (TokKind::Float, "3f64".into()));
        // `1.max(2)` lexes as Int(1) Punct(.) Ident(max) ...
        assert_eq!(toks[7], (TokKind::Int, "1".into()));
        assert_eq!(toks[8], (TokKind::Punct, ".".into()));
        assert_eq!(toks[9], (TokKind::Ident, "max".into()));
        // `0..5` is Int Range Int.
        let range = &toks[13..16];
        assert_eq!(range[0].0, TokKind::Int);
        assert_eq!(range[1], (TokKind::Punct, "..".into()));
        assert_eq!(range[2].0, TokKind::Int);
    }

    #[test]
    fn strings_and_raw_strings_keep_inner_text() {
        let toks = kinds(r###"let s = "spark.sql.x"; let r = r#"raw "inner""#;"###);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1 == "spark.sql.x"));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1 == "raw \"inner\""));
    }

    #[test]
    fn comments_dropped_docs_kept() {
        let toks = kinds("// plain\n/// doc line\nfn f() {} /* block /* nested */ */");
        assert_eq!(toks[0], (TokKind::Doc, " doc line".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert!(!toks.iter().any(|t| t.1.contains("plain")));
        assert!(!toks.iter().any(|t| t.1.contains("nested")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.0 == TokKind::Lifetime && t.1 == "'a"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "x"));
    }

    #[test]
    fn gt_is_never_fused() {
        let toks = kinds("Vec<Vec<f64>> x >= y");
        let texts: Vec<&str> = toks.iter().map(|t| t.1.as_str()).collect();
        assert!(texts.contains(&">"));
        assert!(!texts.contains(&">>"));
        assert!(!texts.contains(&">="));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }
}
