//! Per-feature standardization (zero mean, unit variance). Kernel machines and GPs are
//! scale-sensitive, and the tuned Spark knobs span several orders of magnitude
//! (`shuffle.partitions` in the hundreds vs `maxPartitionBytes` in the hundreds of
//! millions), so every kernel estimator in this crate standardizes internally.

use serde::{Deserialize, Serialize};

/// Fitted standardization parameters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    /// Standard deviations, with zero-variance features clamped to 1 so constant
    /// columns pass through unchanged instead of producing NaN.
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit the scaler on feature rows.
    ///
    /// # Panics
    /// Panics if `x` is empty (callers validate the training-set shape first).
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler on an empty set");
        let dim = x.first().map(Vec::len).unwrap_or(0);
        let n = x.len() as f64;
        let mut means = vec![0.0; dim];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Transform one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transform a batch of rows.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Invert the transform for one row.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| v * s + m)
            .collect()
    }

    /// Feature dimensionality the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

/// Standardization for the *target* vector, used by GP/KRR so the prior mean is 0.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TargetScaler {
    mean: f64,
    std: f64,
}

impl TargetScaler {
    /// Fit on targets; zero variance clamps std to 1.
    pub fn fit(y: &[f64]) -> Self {
        let mean = crate::stats::mean(y);
        let std = {
            let s = crate::stats::std_dev(y);
            if s < 1e-12 {
                1.0
            } else {
                s
            }
        };
        TargetScaler { mean, std }
    }

    /// Standardize a target value.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Undo the standardization.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Undo the standardization of a *standard deviation* (scale only, no shift).
    pub fn inverse_scale(&self, s: f64) -> f64 {
        s * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        for j in 0..2 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            assert!(crate::stats::mean(&col).abs() < 1e-12);
            assert!((crate::stats::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_passes_through() {
        let x = vec![vec![7.0], vec![7.0]];
        let sc = StandardScaler::fit(&x);
        assert_eq!(sc.transform_row(&[7.0]), vec![0.0]);
        assert!(sc.transform_row(&[8.0])[0].is_finite());
    }

    #[test]
    fn inverse_roundtrips() {
        let x = vec![vec![1.0, -5.0], vec![2.0, 10.0], vec![9.0, 0.0]];
        let sc = StandardScaler::fit(&x);
        let row = vec![4.2, 3.3];
        let back = sc.inverse_row(&sc.transform_row(&row));
        assert!((back[0] - 4.2).abs() < 1e-12);
        assert!((back[1] - 3.3).abs() < 1e-12);
    }

    #[test]
    fn target_scaler_roundtrips() {
        let y = vec![10.0, 20.0, 30.0];
        let ts = TargetScaler::fit(&y);
        assert!((ts.inverse(ts.transform(17.0)) - 17.0).abs() < 1e-12);
        assert!(ts.transform(20.0).abs() < 1e-12);
    }
}
