//! Fixture optimizers crate.

pub mod space;

use space::{app_level, query_level};

fn dims() -> usize {
    query_level().len() + app_level().len()
}

use util::fresh_seed as entropy;

/// Deterministic entry point that reaches ambient RNG through one level of
/// aliased indirection — invisible to a token scanner over this file.
fn reseed() -> u64 {
    entropy()
}
