//! Data-size schedules for dynamic workloads (§6.1).
//!
//! "We simulate two types of dynamic workloads … workloads with data sizes increasing
//! linearly over time; workloads with periodic changes in data size, where the input
//! data size follows f(t) = t mod K". A seeded random walk rounds out the set for the
//! customer-notebook generator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a recurrent workload's input data size evolves across iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSchedule {
    /// Fixed size every run.
    Constant {
        /// The size (a multiplier applied to the base workload).
        size: f64,
    },
    /// `size(t) = start + slope · t`.
    LinearIncreasing {
        /// Size at iteration 0.
        start: f64,
        /// Growth per iteration.
        slope: f64,
    },
    /// The paper's periodic schedule: `size(t) = base + amplitude · (t mod k) / k`.
    Periodic {
        /// Minimum size.
        base: f64,
        /// Peak-to-trough swing.
        amplitude: f64,
        /// Period length in iterations.
        k: u32,
    },
    /// Multiplicative random walk, clamped to `[lo, hi]` — models organically
    /// drifting production inputs.
    RandomWalk {
        /// Starting size.
        start: f64,
        /// Per-step multiplicative volatility (e.g. 0.1 for ±10%).
        volatility: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
        /// Seed for the walk (the whole path is a pure function of seed + t).
        seed: u64,
    },
}

impl DataSchedule {
    /// Data size at iteration `t` (always > 0).
    pub fn size_at(&self, t: u32) -> f64 {
        match *self {
            DataSchedule::Constant { size } => size.max(1e-9),
            DataSchedule::LinearIncreasing { start, slope } => (start + slope * t as f64).max(1e-9),
            DataSchedule::Periodic { base, amplitude, k } => {
                let k = k.max(1);
                base + amplitude * (t % k) as f64 / k as f64
            }
            DataSchedule::RandomWalk {
                start,
                volatility,
                lo,
                hi,
                seed,
            } => {
                // Replay the walk deterministically up to t. Walks are short (tuning
                // horizons are hundreds of iterations), so O(t) replay is fine and
                // keeps the schedule a pure function.
                let mut rng = StdRng::seed_from_u64(seed);
                let mut size = start;
                for _ in 0..t {
                    let step = ml_free_normal(&mut rng) * volatility;
                    size = (size * (1.0 + step)).clamp(lo, hi);
                }
                size.max(1e-9)
            }
        }
    }

    /// Convenience: the sizes for iterations `0..n`.
    pub fn sizes(&self, n: u32) -> Vec<f64> {
        (0..n).map(|t| self.size_at(t)).collect()
    }
}

/// Box–Muller deviate (kept local so `workloads` does not depend on `ml`).
fn ml_free_normal(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = DataSchedule::Constant { size: 2.5 };
        assert!(s.sizes(10).iter().all(|&x| x == 2.5));
    }

    #[test]
    fn linear_grows_by_slope() {
        let s = DataSchedule::LinearIncreasing {
            start: 1.0,
            slope: 0.5,
        };
        assert_eq!(s.size_at(0), 1.0);
        assert_eq!(s.size_at(4), 3.0);
    }

    #[test]
    fn periodic_wraps_at_k() {
        let s = DataSchedule::Periodic {
            base: 1.0,
            amplitude: 2.0,
            k: 4,
        };
        assert_eq!(s.size_at(0), s.size_at(4));
        assert_eq!(s.size_at(3), 1.0 + 2.0 * 0.75);
        assert!(s.size_at(3) > s.size_at(1));
    }

    #[test]
    fn random_walk_is_deterministic_and_clamped() {
        let s = DataSchedule::RandomWalk {
            start: 1.0,
            volatility: 0.5,
            lo: 0.5,
            hi: 2.0,
            seed: 7,
        };
        let a = s.sizes(50);
        let b = s.sizes(50);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.5..=2.0).contains(&x)));
        // It should actually move.
        assert!(a.iter().any(|&x| (x - 1.0).abs() > 0.05));
    }

    #[test]
    fn sizes_never_non_positive() {
        let s = DataSchedule::LinearIncreasing {
            start: 1.0,
            slope: -1.0,
        };
        assert!(s.size_at(100) > 0.0);
    }

    #[test]
    fn periodic_k_zero_is_safe() {
        let s = DataSchedule::Periodic {
            base: 1.0,
            amplitude: 1.0,
            k: 0,
        };
        assert_eq!(s.size_at(5), 1.0);
    }
}
