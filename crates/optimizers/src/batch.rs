//! Deterministic batched candidate evaluation.
//!
//! Every acquisition loop in this workspace has the same shape: draw a
//! candidate set *serially* from the tuner's seeded RNG (cheap), score each
//! candidate against a fitted model (expensive — a GP posterior is O(n²) per
//! point), then take an arg-extremum. The helpers here parallelize only the
//! middle step, under the `rockpool` contract: scores are computed per stable
//! candidate index and reduced in index order, so the selected point is
//! bit-identical to the serial loop for every `RH_THREADS` value.

use rockpool::Pool;

/// Score every candidate with `score`, fanned out over `pool`, returned in
/// candidate order. Equivalent to `candidates.iter().map(score).collect()`.
// rhlint:allow(dead-pub): explicit-pool variant for harnesses that pin a width
pub fn score_candidates_with<F>(pool: &Pool, candidates: &[Vec<f64>], score: F) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    pool.map(candidates, |_, c| score(c))
}

/// [`score_candidates_with`] on the ambient [`Pool::from_env`] pool
/// (`RH_THREADS`, defaulting to the machine's parallelism).
pub fn score_candidates<F>(candidates: &[Vec<f64>], score: F) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    score_candidates_with(&Pool::from_env(), candidates, score)
}

/// Index of the largest finite score, first index winning ties — exactly the
/// `score > best` running-maximum loop the serial suggest used. `None` when
/// `scores` is empty or nothing beats `f64::NEG_INFINITY` (all NaN).
pub fn argmax_first(scores: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &s) in scores.iter().enumerate() {
        let beat = match best {
            Some((_, b)) => s > b,
            None => s > f64::NEG_INFINITY,
        };
        if beat {
            best = Some((i, s));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_come_back_in_candidate_order() {
        let cands: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        for threads in [1, 2, 8] {
            let scores = score_candidates_with(&Pool::new(threads), &cands, |c| c[0] * 2.0);
            for (i, s) in scores.iter().enumerate() {
                assert_eq!(*s, i as f64 * 2.0);
            }
        }
    }

    #[test]
    fn argmax_first_matches_the_serial_running_max() {
        // The serial loop: `if ei > best_ei { keep }` — first max wins ties.
        let serial = |scores: &[f64]| {
            let mut best = f64::NEG_INFINITY;
            let mut idx = None;
            for (i, &s) in scores.iter().enumerate() {
                if s > best {
                    best = s;
                    idx = Some(i);
                }
            }
            idx
        };
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0, 3.0, 3.0, 2.0],
            vec![f64::NAN, 1.0, f64::NAN],
            vec![f64::NAN, f64::NAN],
            vec![],
            vec![f64::NEG_INFINITY],
            vec![-1.0, -1.0],
        ];
        for scores in &cases {
            assert_eq!(argmax_first(scores), serial(scores), "{scores:?}");
        }
    }
}
