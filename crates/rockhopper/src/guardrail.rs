//! The guardrail (§4.3, "Additional guardrail"): a per-query monitor that disables
//! autotuning on sustained regression.
//!
//! "Starting at iteration 30, the model predicts the execution time for the next
//! iteration. If this predicted value exceeds the execution time of the previous
//! iteration by more than a predefined threshold, autotuning is deactivated for the
//! query." The predictor is a simple regression on *(iteration number, input
//! cardinality)*, so genuine data growth is not mistaken for regression.

use ml::{Regressor, Ridge};
use optimizers::tuner::History;
use serde::{Deserialize, Serialize};

/// The guardrail's verdict for the next iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardrailDecision {
    /// Keep tuning.
    Continue,
    /// Autotuning is disabled; serve the default configuration.
    Disabled,
}

/// Sustained-regression detector.
///
/// ```
/// use optimizers::tuner::History;
/// use rockhopper::{Guardrail, GuardrailDecision};
///
/// let mut guardrail = Guardrail::new(5, 0.1, 2);
/// let mut history = History::new();
/// // Times regress hard every run: after the minimum iterations, two consecutive
/// // violations disable autotuning permanently.
/// let mut fired = false;
/// for i in 0..20 {
///     history.push(vec![0.0], 1.0, 100.0 * (i + 1) as f64);
///     if guardrail.check(&history, 1.0) == GuardrailDecision::Disabled {
///         fired = true;
///         break;
///     }
/// }
/// assert!(fired && guardrail.is_disabled());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Guardrail {
    /// Iterations every query is guaranteed before the guardrail may fire
    /// ("ensuring that every query undergoes at least 30 iterations").
    pub min_iterations: usize,
    /// Relative threshold: fire when the predicted next time exceeds the
    /// windowed median of recent observations by more than this factor
    /// (e.g. 0.3 = 30% worse).
    pub threshold: f64,
    /// Consecutive violations required before disabling ("continuous performance
    /// regression … over several consecutive iterations").
    pub patience: usize,
    /// Consecutive *failed* (censored) runs that disable tuning outright. A
    /// config that keeps killing runs must not enjoy the 30-iteration
    /// guarantee — safety trumps exploration.
    pub failure_patience: usize,
    violations: usize,
    consecutive_failures: usize,
    disabled: bool,
}

impl Default for Guardrail {
    fn default() -> Self {
        Guardrail {
            min_iterations: 30,
            threshold: 0.3,
            patience: 3,
            failure_patience: 5,
            violations: 0,
            consecutive_failures: 0,
            disabled: false,
        }
    }
}

impl Guardrail {
    /// A guardrail with custom parameters.
    pub fn new(min_iterations: usize, threshold: f64, patience: usize) -> Guardrail {
        Guardrail {
            min_iterations,
            threshold,
            patience: patience.max(1),
            ..Guardrail::default()
        }
    }

    /// Override how many consecutive failed runs disable tuning.
    pub fn with_failure_patience(mut self, failure_patience: usize) -> Guardrail {
        self.failure_patience = failure_patience.max(1);
        self
    }

    /// Whether autotuning has been permanently disabled for this query.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Record a failed or censored run. Unlike the regression check, failures
    /// may disable tuning *before* `min_iterations`: the guarantee protects
    /// slow-but-working configurations, not killers.
    pub fn record_failure(&mut self) -> GuardrailDecision {
        if self.disabled {
            return GuardrailDecision::Disabled;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.failure_patience {
            self.disabled = true;
            return GuardrailDecision::Disabled;
        }
        GuardrailDecision::Continue
    }

    /// Record a successful (measured) run: the failure streak resets.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Evaluate after each observation. `next_data_size` is the expected input
    /// cardinality of the upcoming run.
    ///
    /// The regression model `elapsed ~ iteration + ln(input cardinality)`
    /// predicts the next run. The prediction is compared against a **windowed
    /// median** of the recent observations — each adjusted to the upcoming
    /// run's data size through the model's `ln(p)` term — rather than the
    /// single previous observation: one Eq. 8 spike in the reference would
    /// otherwise mask a real regression (spiked reference looks fine to beat)
    /// or fake one (comparing a normal prediction against one lucky fast run).
    /// A sustained excess beyond `threshold` disables autotuning.
    pub fn check(&mut self, history: &History, next_data_size: f64) -> GuardrailDecision {
        if self.disabled {
            return GuardrailDecision::Disabled;
        }
        if history.len() < self.min_iterations {
            return GuardrailDecision::Continue;
        }
        let Some(model) = self.fit_trend(history) else {
            return GuardrailDecision::Continue;
        };
        let ln_p = next_data_size.max(1e-9).ln();
        let t_next = history.len() as f64;
        let predicted_next = model.predict(&[t_next, ln_p]);
        let Some(reference) = self.reference_median(history, &model, ln_p) else {
            return GuardrailDecision::Continue;
        };
        let regressing = reference > 1e-9 && predicted_next > reference * (1.0 + self.threshold);
        if regressing {
            self.violations += 1;
            if self.violations >= self.patience {
                self.disabled = true;
                return GuardrailDecision::Disabled;
            }
        } else {
            self.violations = 0;
        }
        GuardrailDecision::Continue
    }

    /// Median of the recent measured observations, each translated to the
    /// upcoming run's data-size basis via the model's `ln(p)` coefficient
    /// (`adj_i = r_i + Ĥ(t_i, p_next) − Ĥ(t_i, p_i)`), so a periodic workload's
    /// size swings don't distort the reference. Censored penalties are
    /// excluded — they are bounds, not achieved times.
    fn reference_median(&self, history: &History, model: &Ridge, ln_p_next: f64) -> Option<f64> {
        let window = (self.min_iterations / 2).clamp(3, 10);
        let n = history.len();
        let adjusted: Vec<f64> = history
            .all
            .iter()
            .enumerate()
            .skip(n.saturating_sub(window))
            .filter(|(_, o)| !o.is_censored())
            .map(|(i, o)| {
                let t = i as f64;
                let ln_p_i = o.data_size.max(1e-9).ln();
                o.elapsed_ms + model.predict(&[t, ln_p_next]) - model.predict(&[t, ln_p_i])
            })
            .collect();
        ml::stats::median(&adjusted)
    }

    /// Fit the linear trend model `elapsed ~ iteration + ln(input cardinality)`.
    ///
    /// Targets are clipped at 2.5× their median first: performance spikes are ≥2×
    /// events by the paper's own noise model (Eq 8), and a least-squares trend line
    /// must not let one straggler masquerade as a regression.
    fn fit_trend(&self, history: &History) -> Option<Ridge> {
        let x: Vec<Vec<f64>> = history
            .all
            .iter()
            .enumerate()
            .map(|(i, o)| vec![i as f64, o.data_size.max(1e-9).ln()])
            .collect();
        let raw: Vec<f64> = history.all.iter().map(|o| o.elapsed_ms).collect();
        let cap = 2.5 * ml::stats::median(&raw)?;
        let y: Vec<f64> = raw.into_iter().map(|v| v.min(cap)).collect();
        let mut m = Ridge::new(1.0);
        m.fit(&x, &y).ok()?;
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with_trend(n: usize, slope: f64, data_size: impl Fn(usize) -> f64) -> History {
        let mut h = History::new();
        for i in 0..n {
            h.push(vec![0.0], data_size(i), 100.0 + slope * i as f64);
        }
        h
    }

    #[test]
    fn never_fires_before_min_iterations() {
        let mut g = Guardrail::default();
        let h = history_with_trend(29, 50.0, |_| 1.0); // violently regressing
        assert_eq!(g.check(&h, 1.0), GuardrailDecision::Continue);
        assert!(!g.is_disabled());
    }

    #[test]
    fn disables_on_sustained_regression() {
        let mut g = Guardrail::new(30, 0.1, 2);
        // Times grow 20% of base per iteration — strong upward trend.
        let mut h = history_with_trend(30, 20.0, |_| 1.0);
        let mut fired = false;
        for i in 30..40 {
            h.push(vec![0.0], 1.0, 100.0 + 20.0 * i as f64);
            if g.check(&h, 1.0) == GuardrailDecision::Disabled {
                fired = true;
                break;
            }
        }
        assert!(fired, "guardrail never fired on a regressing query");
        // And it latches.
        assert_eq!(g.check(&h, 1.0), GuardrailDecision::Disabled);
    }

    #[test]
    fn tolerates_improving_performance() {
        let mut g = Guardrail::default();
        let mut h = history_with_trend(30, -1.0, |_| 1.0); // improving
        for i in 30..60 {
            h.push(vec![0.0], 1.0, (100.0 - i as f64).max(10.0));
            assert_eq!(g.check(&h, 1.0), GuardrailDecision::Continue, "iter {i}");
        }
    }

    #[test]
    fn data_growth_is_not_mistaken_for_regression() {
        // Times vary a lot, but purely because input cardinality varies (a periodic
        // workload); the ln(p) feature absorbs it and the iteration trend is flat,
        // so the guardrail must not fire even when the next run is huge.
        let mut g = Guardrail::new(30, 0.3, 2);
        let mut h = History::new();
        for i in 0..45u32 {
            let p = 1.0 + (i % 10) as f64;
            h.push(vec![0.0], p, 100.0 * (1.0 + p.ln()));
        }
        for _ in 0..5 {
            assert_eq!(g.check(&h, 10.0), GuardrailDecision::Continue);
        }
        assert!(!g.is_disabled());
    }

    #[test]
    fn isolated_spike_does_not_disable() {
        let mut g = Guardrail::new(30, 0.3, 3);
        let mut h = history_with_trend(35, 0.0, |_| 1.0);
        h.push(vec![0.0], 1.0, 500.0); // one spike
        let d1 = g.check(&h, 1.0);
        assert_eq!(d1, GuardrailDecision::Continue);
        // Back to normal: violation counter resets.
        for _ in 0..5 {
            h.push(vec![0.0], 1.0, 100.0);
            assert_eq!(g.check(&h, 1.0), GuardrailDecision::Continue);
        }
        assert!(!g.is_disabled());
    }

    #[test]
    fn spike_in_reference_cannot_mask_sustained_regression() {
        // Times climb 20 ms per iteration — a real, ongoing regression — and a
        // 4× spike lands right where a "previous observation" reference would
        // look: against the spike the prediction would seem like a huge
        // improvement and the regression would pass unnoticed. The windowed
        // median treats the spike as the outlier it is and still fires.
        let mut g = Guardrail::new(30, 0.1, 2);
        let mut h = history_with_trend(30, 20.0, |_| 1.0);
        h.push(vec![0.0], 1.0, 3000.0); // the masking spike
        let mut fired = false;
        for i in 31..45 {
            h.push(vec![0.0], 1.0, 100.0 + 20.0 * i as f64);
            if g.check(&h, 1.0) == GuardrailDecision::Disabled {
                fired = true;
                break;
            }
        }
        assert!(fired, "spiked reference masked a sustained regression");
    }

    #[test]
    fn failure_streak_disables_before_min_iterations() {
        // 3 observations — far below min_iterations — but every run is dying:
        // the failure patience must not wait for the 30-iteration guarantee.
        let mut g = Guardrail::default().with_failure_patience(3);
        assert_eq!(g.record_failure(), GuardrailDecision::Continue);
        assert_eq!(g.record_failure(), GuardrailDecision::Continue);
        assert_eq!(g.record_failure(), GuardrailDecision::Disabled);
        assert!(g.is_disabled());
        // And it latches.
        assert_eq!(g.record_failure(), GuardrailDecision::Disabled);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut g = Guardrail::default().with_failure_patience(3);
        for _ in 0..10 {
            assert_eq!(g.record_failure(), GuardrailDecision::Continue);
            assert_eq!(g.record_failure(), GuardrailDecision::Continue);
            g.record_success();
        }
        assert!(!g.is_disabled());
    }

    #[test]
    fn censored_observations_are_excluded_from_the_reference() {
        // Steady 100 ms runs plus recent censored penalties at 10×: if the
        // penalties leaked into the reference median, the reference would
        // inflate and real regressions would hide behind it. The guardrail
        // must keep a ~100 ms reference and stay quiet for a 100 ms workload.
        let mut g = Guardrail::new(30, 0.3, 2);
        let mut h = History::new();
        for _ in 0..32 {
            h.push(vec![0.0], 1.0, 100.0);
        }
        for _ in 0..3 {
            h.all.push(optimizers::tuner::Observation {
                point: vec![0.0],
                data_size: 1.0,
                elapsed_ms: 1000.0,
                kind: optimizers::tuner::ObservationKind::Censored,
            });
        }
        h.push(vec![0.0], 1.0, 100.0);
        assert_eq!(g.check(&h, 1.0), GuardrailDecision::Continue);
        assert!(!g.is_disabled());
    }
}
