#![forbid(unsafe_code)]

//! Workloads for the Rockhopper reproduction.
//!
//! The paper evaluates on (a) a synthetic convex function with injected noise (§6.1),
//! (b) TPC-DS and TPC-H benchmark queries (§6.2, §6.3), and (c) private customer
//! notebooks (§6.3). This crate provides all three:
//!
//! - [`synthetic`]: the paper's three-knob convex function with Eq (8) noise,
//! - [`tables`], [`tpch`], [`tpcds`]: schema statistics and plan templates for all 22
//!   TPC-H queries and 24 TPC-DS-style queries, parameterized by scale factor,
//! - [`dynamic`]: data-size schedules (constant, linear, periodic `t mod K`, random
//!   walk) driving the dynamic-workload experiments,
//! - [`notebook`]: a seeded generator of "customer" applications — mixed query DAGs,
//!   drifting input sizes and per-signature noise — standing in for the paper's
//!   private production traces,
//! - [`generator`]: random plan synthesis used by the notebook generator.

pub mod dynamic;
pub mod generator;
pub mod notebook;
pub mod synthetic;
pub mod tables;
pub mod tpcds;
pub mod tpch;

pub use dynamic::DataSchedule;
pub use notebook::{Notebook, NotebookQuery};
pub use synthetic::SyntheticFunction;
