//! The flighting pipeline (§4.2): the offline experiment platform that "executes
//! open-source benchmarks and collects data points to train the surrogate model".
//!
//! A [`FlightPlan`] mirrors the paper's configuration file: benchmark database,
//! query list, scaling factor, number of runs, pool, and the configuration
//! generation strategy ("currently set to Random"). Running a plan executes every
//! (query × sampled config) pair on the simulator, writes Spark-style event logs to
//! storage, and returns the ETL'd training rows.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use embedding::WorkloadEmbedder;
use optimizers::sampling::{sample, SamplingStrategy};
use optimizers::space::ConfigSpace;
use sparksim::cluster::ClusterSpec;
use sparksim::noise::NoiseSpec;
use sparksim::simulator::Simulator;

use crate::etl::{extract_rows, TrainingRow};
use crate::storage::{paths, Storage};

/// Which benchmark database to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Benchmark {
    /// The 22 TPC-H queries.
    TpcH,
    /// The 24 TPC-DS-style templates.
    TpcDs,
}

impl Benchmark {
    /// Build the plan for query `n` at scale factor `sf`.
    pub fn query(self, n: usize, sf: f64) -> sparksim::plan::PlanNode {
        match self {
            Benchmark::TpcH => workloads::tpch::query(n, sf),
            Benchmark::TpcDs => workloads::tpcds::query(n, sf),
        }
    }

    /// Number of queries in the benchmark.
    pub fn query_count(self) -> usize {
        match self {
            Benchmark::TpcH => workloads::tpch::QUERY_COUNT,
            Benchmark::TpcDs => workloads::tpcds::QUERY_COUNT,
        }
    }
}

/// Which pool to fly on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolId {
    /// 8 × 4-core executors.
    Small,
    /// 16 × 8-core executors.
    Medium,
    /// 64 × 16-core executors.
    Large,
}

impl PoolId {
    fn spec(self) -> ClusterSpec {
        match self {
            PoolId::Small => ClusterSpec::small(),
            PoolId::Medium => ClusterSpec::medium(),
            PoolId::Large => ClusterSpec::large(),
        }
    }
}

/// The flighting pipeline's configuration file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightPlan {
    /// Benchmark database.
    pub benchmark: Benchmark,
    /// Query numbers to run (1-based); empty means the full benchmark.
    pub queries: Vec<usize>,
    /// Scaling factor.
    pub scale_factor: f64,
    /// Configurations sampled per query.
    pub runs_per_query: usize,
    /// Pool to run on.
    pub pool: PoolId,
    /// Sampling strategy for configuration generation.
    pub strategy: Strategy,
    /// Noise level of the (simulated) flighting cluster.
    pub noise: NoiseSpec,
    /// Seed for sampling and noise.
    pub seed: u64,
}

/// Serializable mirror of [`SamplingStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniform random (the paper's current setting).
    Random,
    /// Full factorial grid with the given levels per dimension.
    Grid(usize),
    /// Latin hypercube.
    LatinHypercube,
}

impl From<Strategy> for SamplingStrategy {
    fn from(s: Strategy) -> SamplingStrategy {
        match s {
            Strategy::Random => SamplingStrategy::Random,
            Strategy::Grid(k) => SamplingStrategy::Grid(k),
            Strategy::LatinHypercube => SamplingStrategy::LatinHypercube,
        }
    }
}

impl FlightPlan {
    /// A sensible default sweep: full TPC-DS, 30 random configs per query.
    // rhlint:allow(dead-pub): default flighting plan for TPC-DS harnesses
    pub fn tpcds_default(sf: f64, seed: u64) -> FlightPlan {
        FlightPlan {
            benchmark: Benchmark::TpcDs,
            queries: Vec::new(),
            scale_factor: sf,
            runs_per_query: 30,
            pool: PoolId::Medium,
            strategy: Strategy::Random,
            noise: NoiseSpec::low(),
            seed,
        }
    }

    fn query_list(&self) -> Vec<usize> {
        if self.queries.is_empty() {
            (1..=self.benchmark.query_count()).collect()
        } else {
            self.queries.clone()
        }
    }
}

/// Execute a flight plan with the default (virtual-operator) embedder. Event logs
/// are written into `storage` under `events/flight-<seed>-q<N>/`; the ETL'd training
/// rows are returned.
pub fn run_flight(plan: &FlightPlan, space: &ConfigSpace, storage: &Storage) -> Vec<TrainingRow> {
    run_flight_with_embedder(plan, space, storage, &WorkloadEmbedder::virtual_ops())
}

/// As [`run_flight`], with an explicit embedder (the §6.2 embedding ablation flies
/// the same plan under plain and virtual-operator embeddings).
pub fn run_flight_with_embedder(
    plan: &FlightPlan,
    space: &ConfigSpace,
    storage: &Storage,
    embedder: &WorkloadEmbedder,
) -> Vec<TrainingRow> {
    let sim = Simulator {
        cluster: plan.pool.spec(),
        cost: Default::default(),
        noise: plan.noise,
    };
    let token = storage.issue_token("events/", true, u64::MAX);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut rows = Vec::new();

    for qn in plan.query_list() {
        let query = plan.benchmark.query(qn, plan.scale_factor);
        let signature = embedding::query_signature(&query);
        let emb = embedder.embed(&query);
        let configs = sample(
            space,
            plan.strategy.into(),
            plan.runs_per_query,
            plan.seed ^ (qn as u64) << 8,
        );
        let app_id = format!("flight-{}-q{qn}", plan.seed);
        let mut events = Vec::new();
        for point in &configs {
            let conf = space.to_conf(point);
            let run = sim.execute_with_rng(&query, &conf, &mut rng);
            events.extend(sim.events_for_run(
                &app_id,
                &format!("flight-artifact-{qn}"),
                signature,
                &query,
                &conf,
                emb.clone(),
                &run,
            ));
        }
        // The flight token issued above covers "events/", so this put succeeds;
        // a failure would only drop the persisted copy, not the returned rows.
        let _ = storage.put(
            &token,
            &paths::events(&app_id),
            sparksim::event::to_jsonl(&events).into_bytes(),
        );
        rows.extend(extract_rows(&events));
        storage.tick();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> FlightPlan {
        FlightPlan {
            benchmark: Benchmark::TpcH,
            queries: vec![1, 6],
            scale_factor: 0.1,
            runs_per_query: 5,
            pool: PoolId::Small,
            strategy: Strategy::Random,
            noise: NoiseSpec::none(),
            seed: 7,
        }
    }

    #[test]
    fn flight_produces_rows_per_query_times_runs() {
        let storage = Storage::new();
        let space = ConfigSpace::query_level();
        let rows = run_flight(&tiny_plan(), &space, &storage);
        assert_eq!(rows.len(), 10);
        let sigs: std::collections::HashSet<u64> = rows.iter().map(|r| r.signature).collect();
        assert_eq!(sigs.len(), 2, "one signature per query");
    }

    #[test]
    fn flight_writes_event_logs() {
        let storage = Storage::new();
        let space = ConfigSpace::query_level();
        run_flight(&tiny_plan(), &space, &storage);
        let token = storage.issue_token("events/", false, u64::MAX);
        let files = storage.list(&token, "events/").unwrap();
        assert_eq!(files.len(), 2);
        // Logs are parseable and ETL back to the same rows.
        let doc = storage.get(&token, &files[0]).unwrap();
        let rows = crate::etl::extract_rows_from_jsonl(&String::from_utf8(doc).unwrap());
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn flight_is_deterministic() {
        let space = ConfigSpace::query_level();
        let a = run_flight(&tiny_plan(), &space, &Storage::new());
        let b = run_flight(&tiny_plan(), &space, &Storage::new());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_query_list_means_full_benchmark() {
        let mut plan = tiny_plan();
        plan.queries.clear();
        assert_eq!(plan.query_list().len(), 22);
    }

    #[test]
    fn varied_configs_produce_varied_times() {
        let storage = Storage::new();
        let space = ConfigSpace::query_level();
        let mut plan = tiny_plan();
        plan.queries = vec![3];
        plan.runs_per_query = 10;
        plan.scale_factor = 5.0;
        let rows = run_flight(&plan, &space, &storage);
        let times: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.elapsed_ms.to_bits()).collect();
        assert!(times.len() >= 8, "config should matter: {times:?}");
    }
}
