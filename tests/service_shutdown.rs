//! Pool-era shutdown audit for `pipeline::service`: the backend worker thread
//! must *join* — never detach — however the service handle goes away, even
//! with a queue full of in-flight work. A detached worker would outlive the
//! test (or the process's teardown), so the checks below pin down both the
//! observable channel state and the OS thread count.

use std::sync::Arc;
use std::time::Duration;

use optimizers::tuner::TuningContext;
use pipeline::{AutotuneBackend, AutotuneService, Storage, SuggestFallback};

fn ctx() -> TuningContext {
    TuningContext {
        embedding: vec![0.5],
        expected_data_size: 1.0,
        iteration: 0,
    }
}

/// Threads in this process right now (Linux); `None` elsewhere.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

#[test]
fn shutdown_under_load_drains_and_joins() {
    let (service, client) =
        AutotuneService::spawn(AutotuneBackend::new(Arc::new(Storage::new()), None, 11));
    // Pile work into the queue faster than the backend can serve it: a
    // zero-timeout suggest enqueues the request and returns immediately
    // (usually `TimedOut`), but the backend still processes it and creates
    // the tuner. The shutdown message lands behind all 40, so a joining
    // shutdown must drain everything first.
    for sig in 0..40u64 {
        let _ = client.suggest("load", sig, &ctx(), Duration::from_millis(0));
        client.update_app_cache("load", &format!("artifact-{sig}"), vec![sig], 1.0);
    }
    let backend = service.shutdown().expect("backend thread joins cleanly");
    assert_eq!(backend.tuner_count(), 40, "queued work was dropped");
    // The worker is gone: the channel reports disconnected, not a timeout.
    assert_eq!(
        client.suggest("load", 0, &ctx(), Duration::from_secs(5)),
        Err(SuggestFallback::BackendDown)
    );
}

#[test]
fn dropping_the_service_joins_instead_of_detaching() {
    let before = os_thread_count();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let (service, client) =
                AutotuneService::spawn(AutotuneBackend::new(Arc::new(Storage::new()), None, i));
            // Load the queue, then drop the handle without calling shutdown():
            // the Drop impl must send Shutdown and join, not leak the worker.
            for sig in 0..10u64 {
                let _ = client.suggest("drop", sig, &ctx(), Duration::from_millis(0));
                client.ingest("drop", &format!("app-{sig}"), Vec::new());
            }
            drop(service);
            client
        })
        .collect();
    // Every backend thread has exited: its receiver is dropped, so clients see
    // a disconnected channel immediately (a detached-but-alive worker would
    // have answered, and a wedged one would time out instead).
    for client in &clients {
        assert_eq!(
            client.suggest("drop", 0, &ctx(), Duration::from_secs(5)),
            Err(SuggestFallback::BackendDown)
        );
    }
    // And the OS agrees nothing leaked (Linux-only observability; the channel
    // check above already proves the join on other platforms).
    if let (Some(before), Some(after)) = (before, os_thread_count()) {
        assert!(
            after <= before,
            "thread leak: {before} OS threads before, {after} after"
        );
    }
}
