//! Uniform random search — the weakest baseline and the flighting pipeline's default
//! configuration generator ("currently set to 'Random'", §4.2).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::space::ConfigSpace;
use crate::tuner::{History, Outcome, Tuner, TuningContext};

/// Random search over the space's normalized cube.
#[derive(Debug)]
pub struct RandomSearch {
    space: ConfigSpace,
    rng: StdRng,
    /// Recorded history (exposed so experiments can report best-so-far).
    pub history: History,
}

impl RandomSearch {
    /// Create a seeded random searcher.
    pub fn new(space: ConfigSpace, seed: u64) -> RandomSearch {
        RandomSearch {
            space,
            rng: StdRng::seed_from_u64(seed),
            history: History::new(),
        }
    }
}

impl Tuner for RandomSearch {
    fn suggest(&mut self, _ctx: &TuningContext) -> Vec<f64> {
        self.space.random_point(&mut self.rng)
    }

    fn observe(&mut self, point: &[f64], outcome: &Outcome) {
        self.history
            .push(point.to_vec(), outcome.data_size, outcome.elapsed_ms);
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggestions_are_in_bounds_and_vary() {
        let space = ConfigSpace::query_level();
        let mut t = RandomSearch::new(space.clone(), 4);
        let ctx = TuningContext {
            embedding: vec![],
            expected_data_size: 1.0,
            iteration: 0,
        };
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..20 {
            let p = t.suggest(&ctx);
            for (v, d) in p.iter().zip(&space.dims) {
                assert!(*v >= d.lo && *v <= d.hi);
            }
            distinct.insert(p.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert!(distinct.len() > 10);
    }

    #[test]
    fn observe_appends_history() {
        let mut t = RandomSearch::new(ConfigSpace::query_level(), 4);
        t.observe(
            &[1.0, 2.0, 3.0],
            &Outcome {
                elapsed_ms: 10.0,
                data_size: 1.0,
                kind: crate::tuner::ObservationKind::Measured,
            },
        );
        assert_eq!(t.history.len(), 1);
        assert_eq!(t.name(), "random");
    }
}
