//! `cargo run -p rhlint -- check [root] [--format text|json|sarif]`
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/engine errors
//! (unreadable workspace, bad flags) — CI can distinguish "found problems"
//! from "could not run". JSON and SARIF output are byte-stable across runs:
//! sorted diagnostics, no timing data. The text summary reports wall-time,
//! which is why timing never appears in the machine-readable formats.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };

    match command.as_str() {
        "rules" => {
            if !rest.is_empty() {
                return usage();
            }
            for rule in rhlint::Rule::ALL {
                println!(
                    "{}  {:<20} [{}] {}",
                    rule.code(),
                    rule.id(),
                    rule.family(),
                    rule.doc()
                );
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut root = None;
            let mut format = Format::Text;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("text") => format = Format::Text,
                        Some("json") => format = Format::Json,
                        Some("sarif") => format = Format::Sarif,
                        _ => return usage(),
                    },
                    _ if root.is_none() && !arg.starts_with('-') => {
                        root = Some(PathBuf::from(arg));
                    }
                    _ => return usage(),
                }
            }
            run(root.unwrap_or_else(find_workspace_root), format)
        }
        _ => usage(),
    }
}

fn run(root: PathBuf, format: Format) -> ExitCode {
    let started = Instant::now();
    match rhlint::run_check(&root) {
        Ok(report) => {
            match format {
                Format::Json => print!("{}", rhlint::render_json(&report.diagnostics)),
                Format::Sarif => print!("{}", rhlint::render_sarif(&report.diagnostics)),
                Format::Text => {
                    print!("{}", rhlint::render_report(&report.diagnostics));
                    println!(
                        "rhlint: scanned {} files in {:.0} ms",
                        report.files_scanned,
                        started.elapsed().as_secs_f64() * 1e3
                    );
                }
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: rhlint check [workspace-root] [--format text|json|sarif] | rhlint rules");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first dir containing a
/// `Cargo.toml` with a `[workspace]` table (cargo sets cwd to the invoking
/// directory, so `cargo run -p rhlint` from anywhere in the tree works).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
