//! rockindex — zero-execution retrieval for cold-start serving (DESIGN.md §12).
//!
//! A std-only retrieval subsystem in the spirit of zero-execution
//! retrieval-augmented configuration tuning (arXiv:2503.03826): instead of
//! paying full online exploration for a signature the fleet has never seen,
//! the backend looks the workload's embedding up in a **corpus** of already
//! tuned signatures and serves the nearest neighbor's best-observed config
//! with zero runs, then hands off to the normal CL/BO loop once real
//! observations arrive (Rover-style safe transfer, arXiv:2302.04046).
//!
//! Three cooperating pieces:
//!
//! * [`corpus`] — the persisted corpus: one [`corpus::CorpusEntry`] per warm
//!   signature (embedding, best-observed config, observation count, cost
//!   summary), harvested from backend state and durably logged through its
//!   own rockdur WAL/snapshot lineage so it survives restarts and rebuilds
//!   bit-identically.
//! * [`knn`] — a deterministic exact-scan k-NN index over L2-normalized
//!   corpus embeddings. Ties break seed-free: descending cosine similarity
//!   (`f64::total_cmp`), then ascending signature. No RNG, no wall clock,
//!   no hash-ordered iteration — the same corpus and query always rank the
//!   same neighbors, on any shard, at any thread count.
//! * [`drift`] — a concept-drift detector: when a signature's live embedding
//!   moves (mid-stream data-scale shift), the cached neighbor set is invalid
//!   and the caller must re-rank against the index.
//!
//! [`Provenance`] tags every served suggestion as `transferred` (corpus hit,
//! zero-execution) or `explored` (normal tuner draw) on the wire protocol
//! and in the serving metrics.

pub mod corpus;
pub mod drift;
pub mod knn;
pub mod provenance;

pub use corpus::{Corpus, CorpusEntry, CorpusRecovery, MAX_CORPUS_ENTRIES};
pub use drift::{DriftDetector, DriftSignal};
pub use knn::{KnnIndex, Neighbor, TransferPolicy};
pub use provenance::Provenance;
