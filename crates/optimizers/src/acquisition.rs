//! Acquisition functions for model-guided search (minimization convention: lower
//! predicted time is better).

use ml::gp::Posterior;

/// Standard-normal PDF.
pub(crate) fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard-normal CDF via the Abramowitz–Stegun erf approximation (max abs error
/// ≈ 1.5e-7 — far below the noise floor of anything scored here).
pub(crate) fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected Improvement below the incumbent best (for minimization):
/// `EI = (best − μ)·Φ(z) + σ·φ(z)` with `z = (best − μ)/σ`.
// rhlint:hot — scored once per candidate per proposal round; keep alloc-free
pub fn expected_improvement(post: &Posterior, best: f64) -> f64 {
    if post.std < 1e-12 {
        return (best - post.mean).max(0.0);
    }
    let z = (best - post.mean) / post.std;
    (best - post.mean) * norm_cdf(z) + post.std * norm_pdf(z)
}

/// Lower confidence bound score (to be *minimized*): `μ − κ·σ`.
// rhlint:hot — scored once per candidate per proposal round; keep alloc-free
// rhlint:allow(dead-pub): LCB acquisition kept alongside EI for ablations
pub fn lcb(post: &Posterior, kappa: f64) -> f64 {
    post.mean - kappa * post.std
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_matches_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999999);
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((norm_pdf(1.3) - norm_pdf(-1.3)).abs() < 1e-12);
        assert!(norm_pdf(0.0) > norm_pdf(0.5));
        assert!((norm_pdf(0.0) - 0.3989422804).abs() < 1e-9);
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_uncertainty() {
        let best = 10.0;
        let a = expected_improvement(
            &Posterior {
                mean: 8.0,
                std: 1.0,
            },
            best,
        );
        let b = expected_improvement(
            &Posterior {
                mean: 9.5,
                std: 1.0,
            },
            best,
        );
        assert!(a > b);
    }

    #[test]
    fn ei_values_uncertainty_when_means_are_bad() {
        // Both means are above the incumbent; only uncertainty can improve.
        let best = 10.0;
        let certain = expected_improvement(
            &Posterior {
                mean: 12.0,
                std: 0.01,
            },
            best,
        );
        let uncertain = expected_improvement(
            &Posterior {
                mean: 12.0,
                std: 3.0,
            },
            best,
        );
        assert!(uncertain > certain);
    }

    #[test]
    fn ei_is_nonnegative() {
        for mean in [-5.0, 0.0, 5.0, 50.0] {
            for std in [0.0, 0.1, 2.0] {
                let ei = expected_improvement(&Posterior { mean, std }, 1.0);
                assert!(ei >= 0.0, "mean {mean} std {std} -> {ei}");
            }
        }
    }

    #[test]
    fn zero_std_ei_is_plain_improvement() {
        let ei = expected_improvement(
            &Posterior {
                mean: 3.0,
                std: 0.0,
            },
            10.0,
        );
        assert_eq!(ei, 7.0);
    }

    #[test]
    fn lcb_rewards_uncertainty() {
        let a = lcb(
            &Posterior {
                mean: 5.0,
                std: 2.0,
            },
            1.0,
        );
        let b = lcb(
            &Posterior {
                mean: 5.0,
                std: 0.0,
            },
            1.0,
        );
        assert!(a < b);
    }
}
