//! The CLI's exit-code contract, which CI scripts key off:
//! `0` = clean, `1` = violations found, `2` = could not run (bad usage or
//! unreadable workspace). A gate that conflates 1 and 2 would wave through
//! runs where the linter never actually looked at the code.

use std::path::Path;
use std::process::Command;

fn rhlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rhlint"))
}

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn clean_workspace_exits_zero() {
    let out = rhlint()
        .args(["check"])
        .arg(fixture_root("clean"))
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violations_exit_one() {
    let out = rhlint()
        .args(["check"])
        .arg(fixture_root("lock_order"))
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RH020"), "{text}");
}

#[test]
fn unreadable_workspace_exits_two() {
    let out = rhlint()
        .args(["check", "/nonexistent/rhlint-no-such-root"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.is_empty(), "engine errors are reported on stderr");
}

#[test]
fn bad_usage_exits_two() {
    let out = rhlint()
        .args(["check", "--format", "yaml"])
        .output()
        .expect("spawn rhlint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sarif_format_is_accepted_and_stable() {
    let run = || {
        let out = rhlint()
            .args(["check"])
            .arg(fixture_root("lock_order"))
            .args(["--format", "sarif"])
            .output()
            .expect("spawn rhlint");
        assert_eq!(out.status.code(), Some(1));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "SARIF output must be byte-stable across runs");
    assert!(a.contains("\"$schema\""), "{a}");
}
