//! Bench regression gates (tier 1): run the quick parallel-scaling sweep,
//! round-trip it through the `BENCH_parallel.json` schema, and enforce the
//! sanity floor on the 8-thread tuner batch; then run the quick serving
//! load-generation bench twice and enforce the `BENCH_serve.json` contract
//! (stable schema, seeded-fleet fingerprint determinism, clean drain, zero
//! protocol errors).
//!
//! The floor is core-aware and deliberately loose (a *sanity* floor, not a
//! performance target): on a machine with real parallelism the 8-wide batch
//! must not be slower than serial, while on the 1–3 core containers this
//! suite also runs in, scoped-spawn overhead legitimately eats the win and
//! only a catastrophic regression (e.g. an accidental global lock serializing
//! the pool *and* adding contention) is flagged. Determinism, by contrast, is
//! a hard requirement at any core count.

use bench::{BenchScale, THREAD_SWEEP};

/// Minimum acceptable `serial_ms / 8-thread_ms` for the tuner batch.
fn tuner_batch_floor(host_threads: usize) -> f64 {
    if host_threads >= 4 {
        1.0
    } else {
        // Too few cores for the fan-out to pay for its spawns; just catch
        // pathological slowdowns.
        0.25
    }
}

#[test]
fn bench_parallel_json_passes_the_sanity_floor() {
    let report = bench::run_parallel_bench(BenchScale::Quick);

    // The JSON document round-trips through the declared schema.
    let json = report.to_json();
    let doc = serde_json::value_from_str(&json).expect("BENCH_parallel.json parses");
    match doc.get_field("schema") {
        serde::Value::Str(s) => assert_eq!(s, bench::SCHEMA),
        other => panic!("schema field missing or mistyped: {other:?}"),
    }
    let host_threads = match doc.get_field("host_threads") {
        serde::Value::UInt(n) => *n as usize,
        serde::Value::Int(n) => *n as usize,
        other => panic!("host_threads missing: {other:?}"),
    };

    // Every workload reports a serial time, the full width sweep, and — the
    // hard requirement — bit-identical results at every width.
    for name in ["tuner_batch", "app_cache_build", "experiment_fanout"] {
        let w = doc.get_field("workloads").get_field(name);
        assert!(
            matches!(w.get_field("serial_ms"), serde::Value::Float(f) if *f >= 0.0),
            "{name}: serial_ms missing"
        );
        for t in THREAD_SWEEP {
            let ms = w.get_field("parallel_ms").get_field(&t.to_string());
            assert!(
                matches!(ms, serde::Value::Float(f) if *f >= 0.0),
                "{name}: missing {t}-thread timing"
            );
        }
        assert!(
            matches!(w.get_field("deterministic"), serde::Value::Bool(true)),
            "{name}: results changed with the thread count — determinism contract broken"
        );
    }

    // The sanity floor itself, read back from the in-memory report (same data
    // as the JSON, without re-parsing floats from text).
    let tuner = report.workload("tuner_batch").expect("tuner_batch present");
    let speedup = tuner.speedup(8).expect("8-thread timing present");
    let floor = tuner_batch_floor(host_threads);
    assert!(
        speedup >= floor,
        "8-thread tuner batch regressed: speedup {speedup:.2}x < floor {floor:.2}x \
         (serial {:.1}ms, host_threads {host_threads})",
        tuner.serial_ms
    );
}

#[test]
fn bench_serve_json_is_deterministic_and_clean() {
    use bench::serve::{run_serve_bench, ServeBenchConfig, SERVE_SCHEMA};

    let cfg = ServeBenchConfig::quick(0xB5);
    let first = run_serve_bench(&cfg).expect("first serve bench run");
    let second = run_serve_bench(&cfg).expect("second serve bench run");

    // The seeded fleet folds every served suggestion into one fingerprint;
    // it must not move across runs (fresh server, fresh port, same seed).
    assert_eq!(
        first.suggest_fingerprint, second.suggest_fingerprint,
        "served suggestions changed between identically-seeded runs"
    );

    // Hard serving invariants, independent of host speed.
    for (label, run) in [("first", &first), ("second", &second)] {
        assert_eq!(run.protocol_errors, 0, "{label} run spoke bad frames");
        assert!(run.clean_drain, "{label} run did not drain cleanly");
        assert!(
            run.p50_us <= run.p95_us && run.p95_us <= run.p99_us,
            "{label} run: latency percentiles not monotone"
        );
        assert!(
            run.backend_evals + run.coalesced_hits == run.sent.0,
            "{label} run: every suggest is either an evaluation or a coalesced hit"
        );
    }

    // The JSON document round-trips through the declared schema.
    let json = first.to_json();
    let doc = serde_json::value_from_str(&json).expect("BENCH_serve.json parses");
    match doc.get_field("schema") {
        serde::Value::Str(s) => assert_eq!(s, SERVE_SCHEMA),
        other => panic!("schema field missing or mistyped: {other:?}"),
    }
    match doc.get_field("suggest_fingerprint") {
        serde::Value::Str(s) => {
            assert_eq!(s.len(), 16, "fingerprint renders as 16 hex digits");
            assert_eq!(*s, format!("{:016x}", first.suggest_fingerprint));
        }
        other => panic!("suggest_fingerprint missing or mistyped: {other:?}"),
    }
    assert!(
        matches!(doc.get_field("clean_drain"), serde::Value::Bool(true)),
        "clean_drain missing from the JSON document"
    );
    match doc.get_field("latency_us").get_field("p95") {
        serde::Value::UInt(_) | serde::Value::Int(_) => {}
        other => panic!("latency_us.p95 missing: {other:?}"),
    }
}

#[test]
fn bench_serve_multi_shard_fingerprint_is_deterministic() {
    use bench::serve::{run_serve_bench, ServeBenchConfig};

    let base = ServeBenchConfig::quick(0xB6);
    let unsharded = run_serve_bench(&base).expect("unsharded run");

    let mut cfg = base;
    cfg.shards = 4;
    let first = run_serve_bench(&cfg).expect("first 4-shard run");
    let second = run_serve_bench(&cfg).expect("second 4-shard run");

    assert_eq!(
        first.suggest_fingerprint, second.suggest_fingerprint,
        "4-shard served suggestions changed between identically-seeded runs"
    );
    assert_eq!(
        first.suggest_fingerprint, unsharded.suggest_fingerprint,
        "sharding moved the served-suggestion fingerprint"
    );
    for (label, run) in [("first", &first), ("second", &second)] {
        assert_eq!(
            run.protocol_errors, 0,
            "{label} 4-shard run spoke bad frames"
        );
        assert!(run.clean_drain, "{label} 4-shard run did not drain cleanly");
        assert_eq!(run.per_shard.len(), 4, "{label} run lost per-shard metrics");
    }
}

#[test]
fn bench_serve_zipf_mode_stays_within_the_memory_bound() {
    use bench::serve::{run_serve_bench_durable, ServeBenchConfig, SERVE_SCHEMA};

    let cfg = ServeBenchConfig::zipf(0x21F5);
    assert!(
        cfg.zipf_signatures >= 100_000,
        "the zipf preset must cover a production-sized signature space"
    );
    let bound = (cfg.shards * cfg.shard_capacity) as u64;

    let dir = std::env::temp_dir().join(format!("rockhopper-zipf-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir creates");
    let report = run_serve_bench_durable(&cfg, &dir).expect("zipf bench runs");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.protocol_errors, 0, "zipf run spoke bad frames");
    assert!(report.clean_drain, "zipf run did not drain cleanly");
    // The memory bound held: what remained resident at drain fits the LRUs,
    // and the hot-head/cold-tail churn actually exercised eviction.
    assert!(
        report.resident_tuners <= bound,
        "{} resident tuners exceed the {}×{} LRU bound",
        report.resident_tuners,
        cfg.shards,
        cfg.shard_capacity
    );
    assert!(
        report.tuner_evictions > 0,
        "a zipfian load over {} signatures through {} bounded slots must \
         evict: {report:?}",
        cfg.zipf_signatures,
        bound
    );
    // Durability did the forgetting for us: evicted tuners checkpoint to
    // rockdur sidecars, and re-touched hot-head signatures restore from them
    // (bit-exactness of the restore is gated in tests/sharding.rs).
    assert!(
        report.wal_records_written > 0,
        "zipf mode must run durable: {report:?}"
    );
    assert!(
        report.evicted_restored > 0,
        "the zipf head re-touches evicted signatures, so sidecar restores \
         must be counted: {report:?}"
    );

    // The v3 schema carries the sharding block, and per-shard counters
    // partition the totals.
    let doc = serde_json::value_from_str(&report.to_json()).expect("BENCH_serve.json parses");
    match doc.get_field("schema") {
        serde::Value::Str(s) => assert_eq!(s, SERVE_SCHEMA),
        other => panic!("schema field missing or mistyped: {other:?}"),
    }
    let sharding = doc.get_field("sharding");
    match sharding.get_field("shards") {
        serde::Value::UInt(n) => assert_eq!(*n as usize, cfg.shards),
        serde::Value::Int(n) => assert_eq!(*n as usize, cfg.shards),
        other => panic!("sharding.shards missing: {other:?}"),
    }
    match sharding.get_field("per_shard") {
        serde::Value::Array(items) => assert_eq!(items.len(), cfg.shards),
        other => panic!("sharding.per_shard missing: {other:?}"),
    }
    match doc.get_field("zipf").get_field("signatures") {
        serde::Value::UInt(n) => assert_eq!(*n, cfg.zipf_signatures),
        serde::Value::Int(n) => assert_eq!(u64::try_from(*n).unwrap_or(0), cfg.zipf_signatures),
        other => panic!("zipf.signatures missing: {other:?}"),
    }
}

#[test]
fn bench_serve_cold_start_transfers_deterministically_across_shards_and_restarts() {
    use bench::serve::{run_serve_bench_coldstart, ServeBenchConfig, SERVE_SCHEMA};

    let dir = std::env::temp_dir().join(format!("rockhopper-cold-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("corpus dir creates");

    // First run pre-warms the corpus from scratch; the second run over the
    // SAME directory is the kill-and-recover leg — the server process is
    // gone, the corpus lineage (WAL + snapshot) is all that survives, and
    // the recovered index must serve bit-identical transfers.
    let cfg = ServeBenchConfig::cold_start(0xC01D);
    let first = run_serve_bench_coldstart(&cfg, &dir).expect("first cold-start run");
    let recovered = run_serve_bench_coldstart(&cfg, &dir).expect("recovered cold-start run");

    // Retrieval actually fired: the pre-warmed families cover every cold
    // embedding, so cold evaluations hit the index and suggestions go out
    // tagged `transferred`.
    for (label, run) in [("first", &first), ("recovered", &recovered)] {
        assert!(
            run.cold_hits > 0,
            "{label} run never hit the index: {run:?}"
        );
        assert!(
            run.transfer_served > 0,
            "{label} run served no transferred suggestions: {run:?}"
        );
        assert_eq!(run.protocol_errors, 0, "{label} run spoke bad frames");
        assert!(run.clean_drain, "{label} run did not drain cleanly");
    }
    assert_eq!(
        first.suggest_fingerprint, recovered.suggest_fingerprint,
        "corpus kill-and-recover moved the served-suggestion fingerprint"
    );

    // A compaction between restarts (WAL folded into the snapshot) must not
    // change what the index serves either.
    {
        let (mut corpus, recovery) = pipeline::Corpus::open(&dir).expect("corpus reopens");
        assert_eq!(
            recovery.quarantined, 0,
            "corpus lineage quarantined records"
        );
        assert!(!corpus.is_empty(), "recovered corpus lost its entries");
        corpus.compact().expect("corpus compacts");
    }
    let compacted = run_serve_bench_coldstart(&cfg, &dir).expect("post-compaction run");
    assert_eq!(
        first.suggest_fingerprint, compacted.suggest_fingerprint,
        "corpus compaction moved the served-suggestion fingerprint"
    );

    // Transferred answers are pure functions of (index, embedding), so the
    // shard count must not be observable in what gets served.
    for shards in [1usize, 8] {
        let mut sharded = cfg;
        sharded.shards = shards;
        let run = run_serve_bench_coldstart(&sharded, &dir).expect("sharded cold-start run");
        assert_eq!(
            run.suggest_fingerprint, first.suggest_fingerprint,
            "{shards}-shard cold-start run moved the fingerprint"
        );
        assert!(run.cold_hits > 0, "{shards}-shard run never hit the index");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // The v4 schema carries the retrieval block with live counters.
    let doc = serde_json::value_from_str(&first.to_json()).expect("BENCH_serve.json parses");
    match doc.get_field("schema") {
        serde::Value::Str(s) => assert_eq!(s, SERVE_SCHEMA),
        other => panic!("schema field missing or mistyped: {other:?}"),
    }
    let retrieval = doc.get_field("retrieval");
    match retrieval.get_field("corpus_entries") {
        serde::Value::UInt(n) => assert_eq!(*n, first.corpus_entries),
        serde::Value::Int(n) => assert_eq!(u64::try_from(*n).unwrap_or(0), first.corpus_entries),
        other => panic!("retrieval.corpus_entries missing: {other:?}"),
    }
    match retrieval.get_field("cold_hits") {
        serde::Value::UInt(n) => assert_eq!(*n, first.cold_hits),
        serde::Value::Int(n) => assert_eq!(u64::try_from(*n).unwrap_or(0), first.cold_hits),
        other => panic!("retrieval.cold_hits missing: {other:?}"),
    }
    match retrieval.get_field("transfer_served") {
        serde::Value::UInt(n) => assert_eq!(*n, first.transfer_served),
        serde::Value::Int(n) => assert_eq!(u64::try_from(*n).unwrap_or(0), first.transfer_served),
        other => panic!("retrieval.transfer_served missing: {other:?}"),
    }
}
