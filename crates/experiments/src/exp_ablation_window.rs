//! **Ablation: window size N** (§4.3): "the number of observations N should be
//! sufficiently large (e.g. 10 or 20) to mitigate the influence of significant
//! noise." Tiny windows degrade CL to a FLOW2-like two-observation comparison.

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::centroid::CentroidConfig;
use rockhopper::RockhopperTuner;

use crate::harness::{write_csv, Scale, Summary};

/// Window sizes swept.
pub const WINDOWS: [usize; 5] = [2, 5, 10, 20, 40];

/// Final median normed performance of CL with window `n` under high noise.
pub fn final_perf(window: usize, runs: usize, iters: usize) -> f64 {
    let finals: Vec<f64> = (0..runs as u64)
        .map(|seed| {
            let mut env = SyntheticEnv::high_noise_constant(seed);
            let mut tuner = RockhopperTuner::builder(env.space().clone())
                .config(CentroidConfig {
                    window,
                    ..CentroidConfig::default()
                })
                .guardrail(None)
                .seed(seed)
                .build();
            let mut last = Vec::new();
            for t in 0..iters {
                let p = tuner.suggest(&env.context());
                if t + 10 >= iters {
                    last.push(env.normed_performance(&p));
                }
                let o = env.run(&p);
                tuner.observe(&p, &o);
            }
            ml::stats::mean(&last)
        })
        .collect();
    ml::stats::median(&finals).expect("at least one run")
}

/// Run the ablation.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(40, 4);
    let iters = scale.pick(250, 30);
    let mut summary = Summary::new("exp_ablation_window");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &w in &WINDOWS {
        let perf = final_perf(w, runs, iters);
        summary.row(
            &format!("N = {w:<2} final median normed perf"),
            format!("{perf:.3}"),
        );
        rows.push(vec![w as f64, perf]);
        results.push((w, perf));
    }
    let best = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    summary.row("best window", best.0);
    summary.row(
        "paper expectation",
        "N in the 10–20 range beats tiny windows",
    );
    summary.files.push(write_csv(
        "exp_ablation_window",
        "window,final_median_perf",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_windows_help_under_noise() {
        let tiny = final_perf(2, 6, 120);
        let big = final_perf(20, 6, 120);
        assert!(
            big <= tiny * 1.2,
            "N=20 ({big:.3}) should not lose badly to N=2 ({tiny:.3})"
        );
    }
}
