//! **Ablation: FIND_BEST v1/v2/v3** (§4.3). With run-to-run data-size variation,
//! the raw minimum favours small-data flukes, the `r/p` normalization over-corrects,
//! and the model-based version (Eq 5) controls for data size properly.

use optimizers::env::{Environment, SyntheticEnv};
use optimizers::tuner::Tuner;
use rockhopper::centroid::CentroidConfig;
use rockhopper::find_best::FindBestMode;
use rockhopper::RockhopperTuner;
use sparksim::noise::NoiseSpec;
use workloads::dynamic::DataSchedule;

use crate::harness::{write_csv, Scale, Summary};

/// The three FIND_BEST refinements.
pub const MODES: [(FindBestMode, &str); 3] = [
    (FindBestMode::Raw, "v1-raw"),
    (FindBestMode::Normalized, "v2-normalized"),
    (FindBestMode::ModelBased, "v3-model"),
];

/// Final median normed performance of CL with the given FIND_BEST mode on a
/// varying-data-size, high-noise workload.
pub fn final_perf(mode: FindBestMode, runs: usize, iters: usize) -> f64 {
    let finals: Vec<f64> = (0..runs as u64)
        .map(|seed| {
            let schedule = DataSchedule::RandomWalk {
                start: 1.0,
                volatility: 0.25,
                lo: 0.2,
                hi: 5.0,
                seed: seed ^ 0xF1,
            };
            let mut env = SyntheticEnv::new(NoiseSpec::high(), schedule, seed);
            // Sub-linear data scaling (r/p falls as p grows) — the regime the paper
            // says breaks v2's normalization and motivates the model-based v3.
            env.f = env.f.clone().with_data_exponent(0.6);
            let mut tuner = RockhopperTuner::builder(env.space().clone())
                .config(CentroidConfig {
                    find_best: mode,
                    ..CentroidConfig::default()
                })
                .guardrail(None)
                .seed(seed)
                .build();
            let mut last = Vec::new();
            for t in 0..iters {
                let p = tuner.suggest(&env.context());
                if t + 10 >= iters {
                    last.push(env.normed_performance(&p));
                }
                let o = env.run(&p);
                tuner.observe(&p, &o);
            }
            ml::stats::mean(&last)
        })
        .collect();
    ml::stats::median(&finals).expect("at least one run")
}

/// Direct measurement of FIND_BEST selection quality, isolated from the rest of the
/// algorithm: over many synthetic windows with varying data sizes (sub-linear
/// scaling) and noisy observations, how good — in *true* performance at a fixed
/// reference size — is the observation each mode picks? Returns the mean true
/// normed performance of the chosen configurations (lower is better).
pub fn selection_quality(
    mode: FindBestMode,
    windows: usize,
    window_len: usize,
    noise: NoiseSpec,
) -> f64 {
    use optimizers::space::ConfigSpace;
    use optimizers::tuner::Observation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rockhopper::find_best::find_best;
    use workloads::synthetic::SyntheticFunction;

    // Strongly non-proportional data scaling (r ∝ p^0.3): fixed overheads dominate
    // small inputs, so v2's r/p normalization systematically favours large-p runs.
    let f = SyntheticFunction::paper_default().with_data_exponent(0.3);
    let space = ConfigSpace::query_level();
    let mut total = 0.0;
    for w in 0..windows {
        let mut rng = StdRng::seed_from_u64(w as u64 ^ 0xFB);
        // A realistic tuning-trajectory window: configuration quality improves over
        // the window (the tuner is working) while the input data size varies
        // *independently* run to run. v1's small-p bias and v2's large-p bias now
        // pick by data-size luck instead of configuration quality; v3 controls for
        // p and can rank by the config effect.
        let window: Vec<Observation> = (0..window_len)
            .map(|i| {
                let frac = i as f64 / (window_len - 1).max(1) as f64;
                // Config walks from a bad corner toward the optimum, with jitter.
                let x: Vec<f64> = (0..3)
                    .map(|d| {
                        let start = 0.95;
                        let target = f.optimum[d];
                        let jitter: f64 = rng.random_range(-0.08..0.08);
                        (start + frac * (target - start) + jitter).clamp(0.0, 1.0)
                    })
                    .collect();
                let point = space.denormalize(&x);
                let p: f64 = rng.random_range(0.3..3.0);
                let r = f.observe(&[point[0], point[1], point[2]], p, &noise, &mut rng);
                Observation {
                    point,
                    data_size: p,
                    elapsed_ms: r,
                    kind: optimizers::tuner::ObservationKind::Measured,
                }
            })
            .collect();
        let idx = find_best(&space, &window, mode, 1.0).expect("non-empty window");
        let c = &window[idx].point;
        total += f.normed_performance(&[c[0], c[1], c[2]], 1.0);
    }
    total / windows as f64
}

/// Run the ablation.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(40, 4);
    let iters = scale.pick(250, 30);
    let sel_windows = scale.pick(500, 30);
    let mut summary = Summary::new("exp_ablation_findbest");
    let mut rows = Vec::new();
    for (i, (mode, name)) in MODES.iter().enumerate() {
        let perf = final_perf(*mode, runs, iters);
        let q_prod = selection_quality(
            *mode,
            sel_windows,
            20,
            NoiseSpec {
                fluctuation: 0.3,
                spike: 0.3,
            },
        );
        let q_extreme = selection_quality(*mode, sel_windows, 20, NoiseSpec::high());
        summary.row(
            &format!("{name} final median normed perf"),
            format!("{perf:.3}"),
        );
        summary.row(
            &format!("{name} c* quality (moderate / extreme noise)"),
            format!("{q_prod:.3} / {q_extreme:.3}"),
        );
        rows.push(vec![i as f64, perf, q_prod, q_extreme]);
    }
    summary.row(
        "paper expectation",
        "v3 (model-based) selects the best c* under varying data sizes; end-to-end CL \
         is robust to the choice because gradient learning dominates (§4.3 \"learning \
         from failures\")",
    );
    summary.files.push(write_csv(
        "exp_ablation_findbest",
        "mode_idx,final_median_perf,selection_quality_moderate,selection_quality_extreme",
        &rows,
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_produce_finite_results() {
        for (mode, _) in MODES {
            let p = final_perf(mode, 3, 25);
            assert!(p.is_finite() && p >= 1.0, "{mode:?}: {p}");
        }
    }
}
