//! **Figure 2**: vanilla Bayesian Optimization and FLOW2 fail to converge on the
//! noisy synthetic function — median plus P5–P95 band of *true* performance across
//! replicated runs.

use optimizers::bo::BayesOpt;
use optimizers::env::{Environment, SyntheticEnv};
use optimizers::flow2::Flow2;
use optimizers::tuner::Tuner;

use crate::harness::{band_rows, replicate, write_csv, Scale, Summary};

/// Drive one tuner on a fresh high-noise synthetic environment, tracing the true
/// normalized performance of each *executed* configuration.
fn trace<T: Tuner>(
    mut make: impl FnMut(&SyntheticEnv, u64) -> T,
    seed: u64,
    iters: usize,
) -> Vec<f64> {
    let mut env = SyntheticEnv::high_noise_constant(seed);
    let mut tuner = make(&env, seed);
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let p = tuner.suggest(&env.context());
        out.push(env.normed_performance(&p));
        let o = env.run(&p);
        tuner.observe(&p, &o);
    }
    out
}

/// Run both baselines and summarize their (non-)convergence.
pub fn run(scale: Scale) -> Summary {
    let runs = scale.pick(200, 8);
    let iters = scale.pick(300, 40);

    let bo_bands = replicate(runs, |seed| {
        trace(|env, s| BayesOpt::new(env.space().clone(), s), seed, iters)
    });
    let flow2_bands = replicate(runs, |seed| {
        trace(|env, s| Flow2::new(env.space().clone(), s), seed, iters)
    });

    let mut summary = Summary::new("fig02_noisy_baselines");
    let tail = |bands: &[ml::stats::Band]| {
        let last = &bands[bands.len().saturating_sub(10)..];
        let p50 = ml::stats::mean(&last.iter().map(|b| b.p50).collect::<Vec<_>>());
        let p95 = ml::stats::mean(&last.iter().map(|b| b.p95).collect::<Vec<_>>());
        (p50, p95)
    };
    let (bo50, bo95) = tail(&bo_bands);
    let (f50, f95) = tail(&flow2_bands);
    summary.row("BO final median normed perf", format!("{bo50:.3}"));
    summary.row("BO final P95 normed perf", format!("{bo95:.3}"));
    summary.row("FLOW2 final median normed perf", format!("{f50:.3}"));
    summary.row("FLOW2 final P95 normed perf", format!("{f95:.3}"));
    summary.row(
        "paper expectation",
        "both stay well above 1.0 with wide bands (poor convergence)",
    );
    summary.files.push(write_csv(
        "fig02a_bayesopt",
        "iteration,p5,p50,p95",
        &band_rows(&bo_bands),
    ));
    summary.files.push(write_csv(
        "fig02b_flow2",
        "iteration,p5,p50,p95",
        &band_rows(&flow2_bands),
    ));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_bands() {
        std::env::set_var("ROCKHOPPER_RESULTS", "/tmp/rockhopper-test-results");
        let s = run(Scale::Quick);
        assert_eq!(s.files.len(), 2);
        assert!(s.rows.iter().any(|(k, _)| k.starts_with("BO final")));
        std::env::remove_var("ROCKHOPPER_RESULTS");
    }
}
