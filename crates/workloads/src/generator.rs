//! Seeded random plan synthesis — the building block of the customer-notebook
//! generator. Produces star-join/aggregation plans with randomized table sizes,
//! selectivities and depths so that no two generated query signatures share a shape.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparksim::plan::PlanNode;

/// Parameters bounding the random plans.
#[derive(Debug, Clone, Copy)]
pub struct PlanGenConfig {
    /// Fact-table rows are drawn log-uniformly from this range.
    pub fact_rows: (f64, f64),
    /// Dimension-table rows are drawn log-uniformly from this range.
    pub dim_rows: (f64, f64),
    /// Number of dimension joins, inclusive range.
    pub joins: (usize, usize),
    /// Probability of a trailing sort.
    pub sort_prob: f64,
}

impl Default for PlanGenConfig {
    fn default() -> Self {
        PlanGenConfig {
            fact_rows: (1e5, 5e8),
            dim_rows: (1e2, 5e6),
            joins: (0, 5),
            sort_prob: 0.5,
        }
    }
}

/// Draw log-uniformly from `(lo, hi)`.
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.random_range(lo.ln()..hi.ln())).exp()
}

/// Generate a random plan. The same `seed` always yields the same plan.
pub fn random_plan(config: &PlanGenConfig, seed: u64) -> PlanNode {
    let mut rng = StdRng::seed_from_u64(seed);
    let fact_rows = log_uniform(&mut rng, config.fact_rows.0, config.fact_rows.1);
    let fact_width = rng.random_range(40.0..400.0);
    let mut plan = PlanNode::scan(&format!("fact_{seed}"), fact_rows, fact_width);

    if rng.random_range(0.0..1.0) < 0.7 {
        plan = plan.filter(rng.random_range(0.01..0.9f64));
    }

    let n_joins = rng.random_range(config.joins.0..=config.joins.1);
    for j in 0..n_joins {
        let dim_rows = log_uniform(&mut rng, config.dim_rows.0, config.dim_rows.1);
        let dim_width = rng.random_range(30.0..300.0);
        let mut dim = PlanNode::scan(&format!("dim_{seed}_{j}"), dim_rows, dim_width);
        if rng.random_range(0.0..1.0) < 0.4 {
            dim = dim.filter(rng.random_range(0.05..0.8f64));
        }
        let fanout = rng.random_range(0.05..1.0f64);
        plan = plan.fk_join(dim, fanout);
    }

    // Group ratio spans "almost distinct" to "global aggregate".
    let group_ratio = 10f64.powf(rng.random_range(-7.0..-0.5));
    plan = plan.hash_aggregate(group_ratio);

    if rng.random_range(0.0..1.0) < config.sort_prob {
        plan = plan.sort();
    }
    if rng.random_range(0.0..1.0) < 0.3 {
        plan = plan.limit(rng.random_range(10.0..1000.0f64));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::config::SparkConf;
    use sparksim::noise::NoiseSpec;
    use sparksim::simulator::Simulator;

    #[test]
    fn deterministic_per_seed() {
        let cfg = PlanGenConfig::default();
        assert_eq!(random_plan(&cfg, 5), random_plan(&cfg, 5));
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let cfg = PlanGenConfig::default();
        let distinct: std::collections::HashSet<usize> =
            (0..20).map(|s| random_plan(&cfg, s).node_count()).collect();
        assert!(distinct.len() >= 3, "plans too uniform");
    }

    #[test]
    fn generated_plans_all_simulate() {
        let cfg = PlanGenConfig::default();
        let sim = Simulator::default_pool(NoiseSpec::none());
        let conf = SparkConf::default();
        for seed in 0..50 {
            let p = random_plan(&cfg, seed);
            let t = sim.true_time_ms(&p, &conf);
            assert!(t > 0.0 && t.is_finite(), "seed {seed}");
        }
    }

    #[test]
    fn join_bounds_are_respected() {
        let cfg = PlanGenConfig {
            joins: (2, 2),
            ..PlanGenConfig::default()
        };
        for seed in 0..10 {
            let p = random_plan(&cfg, seed);
            let joins = p
                .iter_nodes()
                .iter()
                .filter(|n| n.op.type_name() == "Join")
                .count();
            assert_eq!(joins, 2, "seed {seed}");
        }
    }
}
