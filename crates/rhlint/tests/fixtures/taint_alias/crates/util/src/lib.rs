//! Helper crate OUTSIDE the determinism scope: the lexical pass never scans
//! it, and the alias hides the banned token from any token-level matcher.

use rand::thread_rng as trng;

/// Returns a "fresh" seed from the thread-local generator.
pub fn fresh_seed() -> u64 {
    let mut rng = trng();
    rng.next_u64()
}
